//! Soundness of the don't-care engines on random networks: every windowed
//! classification must be a subset of the exact (BDD) one, and the exact one
//! must agree with brute force.

use als_dontcare::{
    compute_dont_cares, compute_exact_dont_cares, DontCareConfig, DontCareMethod,
    IncrementalClassifier, SolverReuse,
};
use als_logic::{Cover, Cube};
use als_network::{Network, NodeId};
use proptest::prelude::*;

const NUM_PIS: usize = 4;

fn build_network(recipe: &[(u8, u8, u8)]) -> Network {
    let mut net = Network::new("random");
    let mut signals: Vec<NodeId> = (0..NUM_PIS).map(|i| net.add_pi(format!("x{i}"))).collect();
    for (idx, &(sel_a, sel_b, kind)) in recipe.iter().enumerate() {
        let a = signals[sel_a as usize % signals.len()];
        let mut b = signals[sel_b as usize % signals.len()];
        if a == b {
            b = signals[(sel_b as usize + 1) % signals.len()];
        }
        if a == b {
            continue;
        }
        let cover = match kind % 4 {
            0 => Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
            1 => Cover::from_cubes(
                2,
                [
                    Cube::from_literals(&[(0, true)]).unwrap(),
                    Cube::from_literals(&[(1, true)]).unwrap(),
                ],
            ),
            2 => Cover::from_cubes(
                2,
                [
                    Cube::from_literals(&[(0, true), (1, false)]).unwrap(),
                    Cube::from_literals(&[(0, false), (1, true)]).unwrap(),
                ],
            ),
            _ => Cover::from_cubes(2, [Cube::from_literals(&[(0, false), (1, false)]).unwrap()]),
        };
        let id = net.add_node(format!("g{idx}"), vec![a, b], cover);
        signals.push(id);
    }
    let driver = *signals.last().expect("non-empty");
    net.add_po("y", driver);
    net
}

/// Brute-force SDC/ODC classification of `pivot` by exhaustive PI sweep.
fn brute_force(net: &Network, pivot: NodeId) -> (Vec<bool>, Vec<bool>) {
    let fanins = net.node(pivot).fanins().to_vec();
    let k = fanins.len();
    let mut reachable = vec![false; 1 << k];
    let mut observable = vec![false; 1 << k];
    for m in 0..(1u64 << NUM_PIS) {
        let pis: Vec<bool> = (0..NUM_PIS).map(|i| m >> i & 1 == 1).collect();
        let mut vals = std::collections::HashMap::new();
        for (i, &pi) in net.pis().iter().enumerate() {
            vals.insert(pi, pis[i]);
        }
        for id in net.topo_order() {
            let node = net.node(id);
            if node.is_pi() {
                continue;
            }
            let mut a = 0u64;
            for (i, &f) in node.fanins().iter().enumerate() {
                if vals[&f] {
                    a |= 1 << i;
                }
            }
            vals.insert(id, node.expr().eval(a));
        }
        let pattern = fanins
            .iter()
            .enumerate()
            .fold(0usize, |acc, (i, f)| acc | (usize::from(vals[f]) << i));
        reachable[pattern] = true;
        // Flip the pivot and re-propagate.
        let mut fvals = vals.clone();
        fvals.insert(pivot, !vals[&pivot]);
        for id in net.topo_order() {
            let node = net.node(id);
            if node.is_pi() || id == pivot {
                continue;
            }
            let mut a = 0u64;
            for (i, &f) in node.fanins().iter().enumerate() {
                if fvals[&f] {
                    a |= 1 << i;
                }
            }
            fvals.insert(id, node.expr().eval(a));
        }
        if net.pos().iter().any(|(_, d)| vals[d] != fvals[d]) {
            observable[pattern] = true;
        }
    }
    let sdc: Vec<bool> = reachable.iter().map(|&r| !r).collect();
    let odc: Vec<bool> = reachable
        .iter()
        .zip(&observable)
        .map(|(&r, &o)| r && !o)
        .collect();
    (sdc, odc)
}

fn arb_recipe() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exact_engine_matches_brute_force(recipe in arb_recipe(), pick in any::<u8>()) {
        let net = build_network(&recipe);
        let internals: Vec<NodeId> = net.internal_ids().collect();
        prop_assume!(!internals.is_empty());
        let pivot = internals[pick as usize % internals.len()];
        let exact = compute_exact_dont_cares(&net, pivot, 1 << 18).unwrap();
        let (sdc, odc) = brute_force(&net, pivot);
        for v in 0..sdc.len() {
            prop_assert_eq!(exact.is_sdc(v), sdc[v], "sdc at {:b}", v);
            prop_assert_eq!(exact.is_odc(v), odc[v], "odc at {:b}", v);
        }
    }

    /// The tentpole differential: sweeping every internal node as a pivot,
    /// the one-solver incremental path, the fresh-solver oracle and the
    /// exhaustive window enumeration must produce *identical* SDC/ODC
    /// classifications — not merely mutually sound ones.
    #[test]
    fn incremental_fresh_and_enumeration_classify_identically(recipe in arb_recipe()) {
        let net = build_network(&recipe);
        let internals: Vec<NodeId> = net.internal_ids().collect();
        prop_assume!(!internals.is_empty());
        let sat_cfg = DontCareConfig { method: DontCareMethod::Sat, ..DontCareConfig::default() };
        let enum_cfg = DontCareConfig {
            method: DontCareMethod::Enumerate,
            ..DontCareConfig::default()
        };
        let mut incremental = IncrementalClassifier::new(SolverReuse::Incremental);
        let mut fresh = IncrementalClassifier::new(SolverReuse::Fresh);
        for &pivot in &internals {
            let a = incremental.compute(&net, pivot, &sat_cfg);
            let b = fresh.compute(&net, pivot, &sat_cfg);
            let c = compute_dont_cares(&net, pivot, &enum_cfg);
            let k = a.num_fanins();
            prop_assert_eq!(k, b.num_fanins());
            prop_assert_eq!(k, c.num_fanins());
            for v in 0..(1usize << k) {
                prop_assert_eq!(a.is_sdc(v), b.is_sdc(v), "incremental vs fresh sdc at {:b}", v);
                prop_assert_eq!(a.is_odc(v), b.is_odc(v), "incremental vs fresh odc at {:b}", v);
                prop_assert_eq!(a.is_sdc(v), c.is_sdc(v), "sat vs enumeration sdc at {:b}", v);
                prop_assert_eq!(a.is_odc(v), c.is_odc(v), "sat vs enumeration odc at {:b}", v);
            }
        }
        // The sweep must have amortized: never more solver instances than
        // queries, and the fresh oracle burns at least as many instances.
        let inc_stats = incremental.stats();
        let fresh_stats = fresh.stats();
        prop_assert_eq!(inc_stats.sat_queries, fresh_stats.sat_queries);
        prop_assert!(inc_stats.solver_instances <= inc_stats.sat_queries.max(1));
        prop_assert!(inc_stats.solver_instances <= fresh_stats.solver_instances);
    }

    #[test]
    fn windowed_engines_are_sound(recipe in arb_recipe(), pick in any::<u8>()) {
        let net = build_network(&recipe);
        let internals: Vec<NodeId> = net.internal_ids().collect();
        prop_assume!(!internals.is_empty());
        let pivot = internals[pick as usize % internals.len()];
        let (sdc, odc) = brute_force(&net, pivot);
        for method in [DontCareMethod::Enumerate, DontCareMethod::Sat] {
            let cfg = DontCareConfig { method, ..DontCareConfig::default() };
            let w = compute_dont_cares(&net, pivot, &cfg);
            for v in 0..sdc.len() {
                if w.is_sdc(v) {
                    prop_assert!(sdc[v], "{:?} claims false SDC at {:b}", method, v);
                }
                if w.is_odc(v) {
                    // A windowed ODC must at least be a true don't-care
                    // (brute-force ODC or SDC).
                    prop_assert!(odc[v] || sdc[v], "{:?} claims false ODC at {:b}", method, v);
                }
            }
        }
    }
}
