//! Tseitin CNF encoding of network nodes for the SAT-based don't-care method.

use als_network::{Network, NodeId};
use als_sat::{Group, Lit, Solver, Var};
use std::collections::HashMap;

/// Encodes the local function of `node` into `solver`, constraining
/// `out_var ↔ f(fanin vars)`. `vars` maps each network signal to its SAT
/// variable; all fanins must already be present.
///
/// The encoding is the standard cube-level Tseitin construction: one
/// auxiliary variable per cube, `aux ↔ AND(literals)`, and
/// `out ↔ OR(aux)`.
///
/// # Panics
///
/// Panics if a fanin of `node` has no entry in `vars`.
// Internal call graph only ever passes the std hasher; generalizing the
// signature buys nothing.
#[allow(clippy::implicit_hasher)]
pub fn encode_node_cnf(
    solver: &mut Solver,
    net: &Network,
    node: NodeId,
    vars: &HashMap<NodeId, Var>,
    out_var: Var,
) {
    encode_node_cnf_impl(solver, None, net, node, vars, out_var);
}

/// Like [`encode_node_cnf`] but every emitted clause belongs to the
/// retractable `group`: the constraints bind only in queries that assume
/// [`Group::lit`](als_sat::Group::lit) and disappear when the group is
/// retracted. Auxiliary variables are still global (variables are cheap;
/// clauses are what retraction reclaims).
///
/// # Panics
///
/// Panics if a fanin of `node` has no entry in `vars`.
#[allow(clippy::implicit_hasher)] // see encode_node_cnf
pub fn encode_node_cnf_in(
    solver: &mut Solver,
    group: Group,
    net: &Network,
    node: NodeId,
    vars: &HashMap<NodeId, Var>,
    out_var: Var,
) {
    encode_node_cnf_impl(solver, Some(group), net, node, vars, out_var);
}

fn encode_node_cnf_impl(
    solver: &mut Solver,
    group: Option<Group>,
    net: &Network,
    node: NodeId,
    vars: &HashMap<NodeId, Var>,
    out_var: Var,
) {
    let emit = |solver: &mut Solver, clause: &[Lit]| match group {
        Some(g) => solver.add_clause_in(g, clause),
        None => solver.add_clause(clause),
    };
    let n = net.node(node);
    let cover = n.cover();
    let out = Lit::pos(out_var);

    if cover.is_empty() {
        // Constant 0.
        emit(solver, &[!out]);
        return;
    }
    if cover.has_universe_cube() {
        emit(solver, &[out]);
        return;
    }

    let mut cube_lits: Vec<Lit> = Vec::with_capacity(cover.len());
    for cube in cover.cubes() {
        let lits: Vec<Lit> = cube
            .literals()
            .map(|(v, phase)| {
                let fanin = n.fanins()[v];
                let var = *vars.get(&fanin).expect("fanin encoded before node"); // lint:allow(panic): internal invariant; the message states it
                Lit::with_sign(var, phase)
            })
            .collect();
        let aux = if lits.len() == 1 {
            lits[0]
        } else {
            let a = Lit::pos(solver.new_var());
            // a → every literal
            for &l in &lits {
                emit(solver, &[!a, l]);
            }
            // all literals → a
            let mut clause: Vec<Lit> = lits.iter().map(|&l| !l).collect();
            clause.push(a);
            emit(solver, &clause);
            a
        };
        cube_lits.push(aux);
    }

    // out ↔ OR(cube_lits)
    for &c in &cube_lits {
        emit(solver, &[!c, out]);
    }
    let mut clause = cube_lits;
    clause.push(!out);
    emit(solver, &clause);
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};
    use als_network::Network;
    use als_sat::SatResult;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    /// Encodes a single node and exhaustively checks the CNF against the
    /// cover semantics using assumptions.
    fn check_encoding(cover: &Cover) {
        let mut net = Network::new("enc");
        let nv = cover.num_vars();
        let pis: Vec<NodeId> = (0..nv).map(|i| net.add_pi(format!("x{i}"))).collect();
        let y = net.add_node("y", pis.clone(), cover.clone());
        net.add_po("y", y);

        let mut solver = Solver::new();
        let mut vars = HashMap::new();
        for &pi in &pis {
            vars.insert(pi, solver.new_var());
        }
        let out = solver.new_var();
        encode_node_cnf(&mut solver, &net, y, &vars, out);

        for m in 0..(1u64 << nv) {
            let expect = cover.eval(m);
            let mut assumptions: Vec<Lit> = (0..nv)
                .map(|i| Lit::with_sign(vars[&pis[i]], m >> i & 1 == 1))
                .collect();
            assumptions.push(Lit::with_sign(out, expect));
            assert_eq!(
                solver.solve_with_assumptions(&assumptions),
                SatResult::Sat,
                "cover {cover} must allow out={expect} at {m:b}"
            );
            assumptions.pop();
            assumptions.push(Lit::with_sign(out, !expect));
            assert_eq!(
                solver.solve_with_assumptions(&assumptions),
                SatResult::Unsat,
                "cover {cover} must forbid out={} at {m:b}",
                !expect
            );
        }
    }

    #[test]
    fn encodes_and() {
        check_encoding(&Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]));
    }

    #[test]
    fn encodes_xor() {
        check_encoding(&Cover::from_cubes(
            2,
            [
                cube(&[(0, true), (1, false)]),
                cube(&[(0, false), (1, true)]),
            ],
        ));
    }

    #[test]
    fn encodes_constants() {
        check_encoding(&Cover::constant_zero(2));
        check_encoding(&Cover::constant_one(2));
    }

    #[test]
    fn encodes_single_literal_cubes() {
        check_encoding(&Cover::from_cubes(
            3,
            [cube(&[(0, false)]), cube(&[(1, true), (2, true)])],
        ));
    }
}
