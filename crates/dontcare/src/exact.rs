//! Exact (global, non-windowed) SDC/ODC computation via BDDs.
//!
//! The paper's estimate uses *windowed* don't-cares — a sound subset. This
//! module computes the **complete** sets for networks whose BDDs stay small,
//! which lets us (a) quantify how much the 2×2 window loses (the
//! `ablation` bench) and (b) drive the single-selection estimate with exact
//! don't-cares as an upper-bound-tightening option.

use crate::compute::DontCares;
use als_bdd::{network_bdds, structural_pi_order, Bdd, BddError, BddManager};
use als_network::{Network, NodeId, NodeKind};
use std::collections::HashMap;

/// Computes the exact SDC and ODC sets of `pivot`'s local input patterns by
/// global BDD analysis:
///
/// * pattern `v` is an **SDC** iff no PI assignment drives the fanins to
///   `v`;
/// * pattern `v` is an **ODC** iff it is reachable but no PI assignment
///   producing `v` propagates a flipped pivot value to any PO.
///
/// # Errors
///
/// Returns [`BddError::NodeLimit`] when the network's BDDs exceed
/// `node_limit` (multiplier-like structures); fall back to the windowed
/// engines in that case.
///
/// # Panics
///
/// Panics if `pivot` is not a live internal node, or has more than 16
/// fanins.
pub fn compute_exact_dont_cares(
    net: &Network,
    pivot: NodeId,
    node_limit: usize,
) -> Result<DontCares, BddError> {
    assert!(net.is_live(pivot), "pivot must be live");
    let k = net.node(pivot).fanins().len();
    assert!(k <= 16, "local-pattern enumeration limited to 16 fanins");

    let mut mgr = BddManager::new(net.num_pis(), node_limit);
    let order = structural_pi_order(net);

    // Golden PO functions and, along the way, every internal node's global
    // function (we rebuild them here rather than reuse network_bdds so we
    // can also capture the fanin functions).
    let mut of_node: HashMap<NodeId, Bdd> = HashMap::new();
    for (i, &pi) in net.pis().iter().enumerate() {
        of_node.insert(pi, mgr.var(order[i])?);
    }
    for id in net.topo_order() {
        let node = net.node(id);
        if node.kind() != NodeKind::Internal {
            continue;
        }
        let mut acc = mgr.zero();
        for cube in node.cover().cubes() {
            let mut term = mgr.one();
            for (var, phase) in cube.literals() {
                let fanin = of_node[&node.fanins()[var]];
                let lit = if phase { fanin } else { mgr.not(fanin)? };
                term = mgr.and(term, lit)?;
            }
            acc = mgr.or(acc, term)?;
        }
        of_node.insert(id, acc);
    }

    // Flipped copy: pivot inverted, downstream nodes recomputed.
    let flipped_net = {
        let mut copy = net.clone();
        let expr = copy.node(pivot).expr().clone();
        let inverted = invert_expr(&expr);
        copy.replace_expr(pivot, inverted);
        copy
    };
    let flipped_pos = network_bdds(&flipped_net, &mut mgr, &order)?;

    // Miter over the POs.
    let golden_pos: Vec<Bdd> = net.pos().iter().map(|(_, d)| of_node[d]).collect();
    let mut miter = mgr.zero();
    for (g, a) in golden_pos.iter().zip(&flipped_pos) {
        let d = mgr.xor(*g, *a)?;
        miter = mgr.or(miter, d)?;
    }

    // Classify each local pattern.
    let fanin_bdds: Vec<Bdd> = net
        .node(pivot)
        .fanins()
        .iter()
        .map(|f| of_node[f])
        .collect();
    let mut sdc = vec![false; 1 << k];
    let mut odc = vec![false; 1 << k];
    for v in 0..(1usize << k) {
        let mut cond = mgr.one();
        for (i, &fb) in fanin_bdds.iter().enumerate() {
            let lit = if v >> i & 1 == 1 { fb } else { mgr.not(fb)? };
            cond = mgr.and(cond, lit)?;
        }
        if cond == mgr.zero() {
            sdc[v] = true;
            continue;
        }
        let observable = mgr.and(cond, miter)?;
        if observable == mgr.zero() {
            odc[v] = true;
        }
    }
    Ok(DontCares::from_classification(k, sdc, odc))
}

/// Negates a factored expression by De Morgan.
fn invert_expr(expr: &als_logic::Expr) -> als_logic::Expr {
    use als_logic::Expr;
    match expr {
        Expr::Const(b) => Expr::Const(!b),
        Expr::Lit { var, phase } => Expr::lit(*var, !phase),
        Expr::And(children) => Expr::or(children.iter().map(invert_expr).collect()),
        Expr::Or(children) => Expr::and(children.iter().map(invert_expr).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compute_dont_cares, DontCareConfig, DontCareMethod};
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    /// The paper's Fig. 1 network.
    fn fig1() -> (Network, NodeId, NodeId) {
        let mut net = Network::new("fig1");
        let i0 = net.add_pi("i0");
        let i1 = net.add_pi("i1");
        let i2 = net.add_pi("i2");
        let i3 = net.add_pi("i3");
        let n1 = net.add_node(
            "n1",
            vec![i1, i2],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let n2 = net.add_node(
            "n2",
            vec![n1, i3],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let f = net.add_node(
            "f",
            vec![i0, n2, n1],
            Cover::from_cubes(
                3,
                [
                    cube(&[(0, true), (1, true)]),
                    cube(&[(0, false), (2, true)]),
                ],
            ),
        );
        net.add_po("f", f);
        (net, n1, n2)
    }

    #[test]
    fn windowed_is_a_subset_of_exact() {
        let (net, n1, n2) = fig1();
        for node in [n1, n2] {
            let exact = compute_exact_dont_cares(&net, node, 1 << 20).unwrap();
            for method in [DontCareMethod::Enumerate, DontCareMethod::Sat] {
                let cfg = DontCareConfig {
                    method,
                    ..DontCareConfig::default()
                };
                let windowed = compute_dont_cares(&net, node, &cfg);
                for v in 0..(1 << exact.num_fanins()) {
                    if windowed.is_sdc(v) {
                        assert!(exact.is_sdc(v), "{node:?} {v:b}: windowed SDC not exact");
                    }
                    if windowed.is_odc(v) {
                        assert!(
                            exact.is_dont_care(v),
                            "{node:?} {v:b}: windowed ODC not exact DC"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exact_finds_the_fig1_partial_odc() {
        // The window around n2 sees the masking at f directly, but *exact*
        // analysis additionally knows the PI-level reachability: for n2's
        // fanins (n1, i3), pattern (1,1) occurs for PI patterns 0111 and
        // 1111 and only the latter propagates — so it is NOT an ODC (some
        // assignment propagates). Pattern (1,0) → n2=0 already... exact
        // must agree with brute force; check against it.
        let (net, _n1, n2) = fig1();
        let exact = compute_exact_dont_cares(&net, n2, 1 << 20).unwrap();
        // Brute force over the 16 PI patterns.
        let fanins = net.node(n2).fanins().to_vec();
        for v in 0..4usize {
            let mut reachable = false;
            let mut observable = false;
            for m in 0..16u64 {
                let pis: Vec<bool> = (0..4).map(|i| m >> i & 1 == 1).collect();
                // Evaluate fanin values.
                let mut vals = std::collections::HashMap::new();
                for (i, &pi) in net.pis().iter().enumerate() {
                    vals.insert(pi, pis[i]);
                }
                for id in net.topo_order() {
                    let node = net.node(id);
                    if node.is_pi() {
                        continue;
                    }
                    let mut a = 0u64;
                    for (i, &f) in node.fanins().iter().enumerate() {
                        if vals[&f] {
                            a |= 1 << i;
                        }
                    }
                    vals.insert(id, node.expr().eval(a));
                }
                let pattern = fanins
                    .iter()
                    .enumerate()
                    .fold(0usize, |acc, (i, f)| acc | (usize::from(vals[f]) << i));
                if pattern != v {
                    continue;
                }
                reachable = true;
                // Flip n2 and re-evaluate the PO.
                let mut fvals = vals.clone();
                fvals.insert(n2, !vals[&n2]);
                for id in net.topo_order() {
                    let node = net.node(id);
                    if node.is_pi() || id == n2 {
                        continue;
                    }
                    let mut a = 0u64;
                    for (i, &f) in node.fanins().iter().enumerate() {
                        if fvals[&f] {
                            a |= 1 << i;
                        }
                    }
                    fvals.insert(id, node.expr().eval(a));
                }
                let po = net.pos()[0].1;
                if vals[&po] != fvals[&po] {
                    observable = true;
                }
            }
            assert_eq!(exact.is_sdc(v), !reachable, "pattern {v:02b} sdc");
            assert_eq!(
                exact.is_odc(v),
                reachable && !observable,
                "pattern {v:02b} odc"
            );
        }
    }

    #[test]
    fn exact_on_masked_node() {
        // y = n OR a with n = a·b: a=1 patterns are exact ODCs of n.
        let mut net = Network::new("odc");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let n = net.add_node(
            "n",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let y = net.add_node(
            "y",
            vec![n, a],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
        );
        net.add_po("y", y);
        let exact = compute_exact_dont_cares(&net, n, 1 << 20).unwrap();
        assert!(exact.is_odc(0b01)); // a=1, b=0
        assert!(exact.is_odc(0b11)); // a=1, b=1
        assert!(!exact.is_dont_care(0b00));
        assert!(!exact.is_dont_care(0b10));
    }
}
