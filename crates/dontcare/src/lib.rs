//! Windowed satisfiability / observability don't-care (SDC/ODC) computation.
//!
//! The DAC'16 paper estimates the *real* error rate of an ASE by discarding
//! erroneous local input patterns (ELIPs) that are SDCs or ODCs of the node
//! (§3.3), computing them with MVSIS `mfs` using a 2×2 window and SAT. This
//! crate reproduces that service:
//!
//! * [`Window`] — extracts a `levels_in × levels_out` window around a node;
//! * [`compute_dont_cares`] — classifies every local input pattern of the
//!   node as SDC, ODC or care, by exhaustive in-window enumeration or by SAT
//!   queries on a window miter (both sound: they yield *subsets* of the true
//!   don't-care sets, exactly as the paper requires for its upper bound);
//! * [`IncrementalClassifier`] — the same classification with one
//!   persistent solver amortized across an entire sweep of windows: each
//!   window miter lives in a retractable clause group, so per-node solver
//!   construction disappears from the hot path while the answers stay
//!   identical to the stateless oracle.
//!
//! # Example
//!
//! ```
//! use als_network::Network;
//! use als_logic::{Cover, Cube};
//! use als_dontcare::{compute_dont_cares, DontCareConfig};
//!
//! // y = (a AND b) OR a: the pattern (ab=1, a=0) can never occur — an SDC.
//! let mut net = Network::new("sdc");
//! let a = net.add_pi("a");
//! let b = net.add_pi("b");
//! let g = net.add_node("g", vec![a, b],
//!     Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)])?]));
//! let y = net.add_node("y", vec![g, a],
//!     Cover::from_cubes(2, [
//!         Cube::from_literals(&[(0, true)])?,
//!         Cube::from_literals(&[(1, true)])?,
//!     ]));
//! net.add_po("y", y);
//!
//! let dc = compute_dont_cares(&net, y, &DontCareConfig::default());
//! // Local pattern 0b01 means g=1, a=0 — unreachable.
//! assert!(dc.is_sdc(0b01));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

mod compute;
mod encode;
mod exact;
mod window;

pub use compute::{
    compute_dont_cares, DontCareConfig, DontCareMethod, DontCares, IncrementalClassifier,
    SolverReuse, SolverStats,
};
pub use encode::{encode_node_cnf, encode_node_cnf_in};
pub use exact::compute_exact_dont_cares;
pub use window::{undirected_ball, window_influence, Window};
