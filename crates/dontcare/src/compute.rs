use crate::encode::{encode_node_cnf, encode_node_cnf_in};
use crate::window::Window;
use als_network::{Network, NodeId};
use als_sat::{Group, Lit, SatResult, Solver, Var};
use std::collections::{HashMap, HashSet};

/// Which engine classifies the pivot's local input patterns.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DontCareMethod {
    /// Exhaustively enumerate window-leaf assignments (exact within the
    /// window; requires few leaves).
    Enumerate,
    /// Per-pattern SAT queries on a duplicated-window miter — the paper's
    /// configuration ("SAT-based computation method", §3.3).
    #[default]
    Sat,
}

/// How the SAT engine amortizes solver state across window sweeps (ignored
/// by [`DontCareMethod::Enumerate`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SolverReuse {
    /// One persistent solver serves many windows through an
    /// [`IncrementalClassifier`]: each window's miter lives in a retractable
    /// clause group, and phases / activities / surviving learnt clauses
    /// carry across windows.
    #[default]
    Incremental,
    /// A fresh solver per window — the byte-identity oracle the incremental
    /// path is validated against.
    Fresh,
}

/// Configuration for [`compute_dont_cares`].
#[derive(Clone, Copy, Debug)]
pub struct DontCareConfig {
    /// Levels of transitive fanin in the window (paper: 2).
    pub levels_in: usize,
    /// Levels of transitive fanout in the window (paper: 2).
    pub levels_out: usize,
    /// The engine to use.
    pub method: DontCareMethod,
    /// Solver-reuse policy for the SAT engine (honoured by callers that keep
    /// an [`IncrementalClassifier`] alive across nodes; the stateless
    /// [`compute_dont_cares`] entry point is always effectively fresh).
    pub reuse: SolverReuse,
    /// Enumeration gives up (returning empty don't-care sets, which is
    /// sound) when the window has more than this many leaves.
    pub max_enumerated_leaves: usize,
    /// Pattern classification is skipped for nodes with more fanins than
    /// this (returning empty sets).
    pub max_fanins: usize,
}

impl Default for DontCareConfig {
    fn default() -> Self {
        DontCareConfig {
            levels_in: 2,
            levels_out: 2,
            method: DontCareMethod::default(),
            reuse: SolverReuse::default(),
            max_enumerated_leaves: 14,
            max_fanins: 10,
        }
    }
}

/// Counters describing the SAT work done by don't-care classification.
///
/// `solver_instances` counts solvers actually *constructed and used* for
/// queries; with [`SolverReuse::Incremental`] it stays far below
/// `sat_queries` (one instance serves many windows × patterns), which is
/// exactly the reuse ratio the benchmark gate watches.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SolverStats {
    /// Individual `solve_with_assumptions` calls issued.
    pub sat_queries: u64,
    /// Solver instances that served at least one query.
    pub solver_instances: u64,
    /// Clauses physically swept by group retraction.
    pub clauses_retracted: u64,
}

impl SolverStats {
    /// Accumulates `other` into `self` (all counters are sums).
    pub fn merge(&mut self, other: &SolverStats) {
        self.sat_queries += other.sat_queries;
        self.solver_instances += other.solver_instances;
        self.clauses_retracted += other.clauses_retracted;
    }

    /// Whether no SAT work was recorded at all.
    pub fn is_empty(&self) -> bool {
        self.sat_queries == 0 && self.solver_instances == 0 && self.clauses_retracted == 0
    }
}

/// The classification of every local input pattern of a node.
///
/// Both sets are *sound subsets* of the true don't-cares: a pattern marked
/// SDC genuinely never occurs, and a pattern marked ODC genuinely never
/// propagates to an output — but some true don't-cares may stay unmarked
/// (window effects), exactly as in the paper's `mfs`-based estimate.
#[derive(Clone, Debug)]
pub struct DontCares {
    num_fanins: usize,
    sdc: Vec<bool>,
    odc: Vec<bool>,
}

impl DontCares {
    /// Builds a classification from explicit SDC/ODC bitmaps (used by the
    /// exact BDD engine; both vectors must have `2^num_fanins` entries).
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths disagree with `num_fanins`.
    pub fn from_classification(num_fanins: usize, sdc: Vec<bool>, odc: Vec<bool>) -> Self {
        assert_eq!(sdc.len(), 1 << num_fanins, "sdc length mismatch");
        assert_eq!(odc.len(), 1 << num_fanins, "odc length mismatch");
        DontCares {
            num_fanins,
            sdc,
            odc,
        }
    }

    /// A trivial result marking nothing as don't-care (always sound).
    pub fn none(num_fanins: usize) -> Self {
        DontCares {
            num_fanins,
            sdc: vec![false; 1 << num_fanins],
            odc: vec![false; 1 << num_fanins],
        }
    }

    /// Number of fanins of the node this classification belongs to.
    pub fn num_fanins(&self) -> usize {
        self.num_fanins
    }

    /// Whether local pattern `v` is a satisfiability don't-care (cannot
    /// occur).
    ///
    /// # Panics
    ///
    /// Panics if `v >= 2^num_fanins`.
    pub fn is_sdc(&self, v: usize) -> bool {
        self.sdc[v]
    }

    /// Whether local pattern `v` is an observability don't-care (occurs but
    /// never propagates a flipped node value to any observed output).
    ///
    /// # Panics
    ///
    /// Panics if `v >= 2^num_fanins`.
    pub fn is_odc(&self, v: usize) -> bool {
        self.odc[v]
    }

    /// Whether pattern `v` is don't-care of either kind — the patterns the
    /// paper drops from the real-error-rate estimate.
    pub fn is_dont_care(&self, v: usize) -> bool {
        self.sdc[v] || self.odc[v]
    }

    /// Count of patterns marked SDC.
    pub fn sdc_count(&self) -> usize {
        self.sdc.iter().filter(|&&b| b).count()
    }

    /// Count of patterns marked ODC.
    pub fn odc_count(&self) -> usize {
        self.odc.iter().filter(|&&b| b).count()
    }
}

/// Classifies every local input pattern of `pivot` as SDC / ODC / care,
/// using the windowing scheme and engine from `config`.
///
/// Oversized windows or nodes degrade gracefully to "no don't-cares found"
/// (which keeps the downstream error-rate estimate a valid upper bound).
///
/// # Panics
///
/// Panics if `pivot` is not a live internal node.
pub fn compute_dont_cares(net: &Network, pivot: NodeId, config: &DontCareConfig) -> DontCares {
    let k = net.node(pivot).fanins().len();
    if k > config.max_fanins {
        return DontCares::none(k);
    }
    let window = Window::build(net, pivot, config.levels_in, config.levels_out);
    match config.method {
        DontCareMethod::Enumerate => {
            if window.leaves().len() > config.max_enumerated_leaves {
                return DontCares::none(k);
            }
            enumerate(net, &window, k)
        }
        DontCareMethod::Sat => sat_classify(net, &window, k),
    }
}

/// Exhaustive in-window classification, evaluated bit-parallel: 64 leaf
/// assignments per machine word, exactly like the main simulator.
fn enumerate(net: &Network, window: &Window, k: usize) -> DontCares {
    let n_leaves = window.leaves().len();
    let num_assignments = 1usize << n_leaves;
    let words = num_assignments.div_ceil(64);
    let tail = if n_leaves >= 6 {
        u64::MAX
    } else {
        (1u64 << num_assignments) - 1
    };

    // Slot layout: leaves first, then internals in window topo order.
    let mut slot: HashMap<NodeId, usize> = HashMap::new();
    for (i, &l) in window.leaves().iter().enumerate() {
        slot.insert(l, i);
    }
    for (i, &n) in window.internals().iter().enumerate() {
        slot.insert(n, n_leaves + i);
    }
    let total = n_leaves + window.internals().len();

    // Exhaustive leaf stimulus (same scheme as TruthTable variables).
    let mut values: Vec<Vec<u64>> = vec![vec![0u64; words]; total];
    for (i, v) in values.iter_mut().enumerate().take(n_leaves) {
        if i < 6 {
            const VAR_WORDS: [u64; 6] = [
                0xAAAA_AAAA_AAAA_AAAA,
                0xCCCC_CCCC_CCCC_CCCC,
                0xF0F0_F0F0_F0F0_F0F0,
                0xFF00_FF00_FF00_FF00,
                0xFFFF_0000_FFFF_0000,
                0xFFFF_FFFF_0000_0000,
            ];
            for w in v.iter_mut() {
                *w = VAR_WORDS[i];
            }
        } else {
            let block = 1usize << (i - 6);
            for (wi, w) in v.iter_mut().enumerate() {
                if (wi / block) % 2 == 1 {
                    *w = u64::MAX;
                }
            }
        }
    }

    let eval_node = |node: &als_network::Node,
                     values: &[Vec<u64>],
                     input_slot: &dyn Fn(NodeId) -> usize|
     -> Vec<u64> {
        let mut acc = vec![0u64; words];
        for cube in node.cover().cubes() {
            let mut term = vec![u64::MAX; words];
            for (var, phase) in cube.literals() {
                let fw = &values[input_slot(node.fanins()[var])];
                for (t, f) in term.iter_mut().zip(fw) {
                    *t &= if phase { *f } else { !*f };
                }
            }
            for (a, t) in acc.iter_mut().zip(&term) {
                *a |= t;
            }
        }
        acc
    };

    // Normal evaluation.
    for &n in window.internals() {
        let node = net.node(n);
        let out = eval_node(node, &values, &|f| slot[&f]);
        values[slot[&n]] = out;
    }

    // Flipped copy: pivot inverted, downstream window nodes re-evaluated.
    let pivot_slot = slot[&window.pivot()];
    let mut fslot: HashMap<NodeId, usize> = slot.clone();
    let mut fvalues = values.clone();
    fvalues.push(values[pivot_slot].iter().map(|w| !w).collect());
    fslot.insert(window.pivot(), fvalues.len() - 1);
    for &n in window.internals() {
        if n == window.pivot() {
            continue;
        }
        let node = net.node(n);
        let depends = node.fanins().iter().any(|f| fslot[f] != slot[f]);
        if depends {
            let out = eval_node(node, &fvalues, &|f| fslot[&f]);
            fvalues.push(out);
            fslot.insert(n, fvalues.len() - 1);
        }
    }

    // Per-assignment observability: any root differs between the copies.
    let mut obs_mask = vec![0u64; words];
    for &r in window.roots() {
        if fslot[&r] == slot[&r] {
            continue;
        }
        let a = &values[slot[&r]];
        let b = &fvalues[fslot[&r]];
        for ((o, x), y) in obs_mask.iter_mut().zip(a).zip(b) {
            *o |= x ^ y;
        }
    }

    // Gather per-pattern seen/observable flags.
    let fanin_slots: Vec<usize> = net
        .node(window.pivot())
        .fanins()
        .iter()
        .map(|f| slot[f])
        .collect();
    let mut seen = vec![false; 1 << k];
    let mut observable = vec![false; 1 << k];
    for wi in 0..words {
        let valid = if wi + 1 == words { tail } else { u64::MAX };
        let cols: Vec<u64> = fanin_slots.iter().map(|&s| values[s][wi]).collect();
        let obs = obs_mask[wi];
        let mut bits = valid;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize; // lint:allow(as-cast): u32 bit index fits usize
            bits &= bits - 1;
            let mut v = 0usize;
            for (i, c) in cols.iter().enumerate() {
                if c >> b & 1 == 1 {
                    v |= 1 << i;
                }
            }
            seen[v] = true;
            if obs >> b & 1 == 1 {
                observable[v] = true;
            }
        }
    }

    let sdc: Vec<bool> = seen.iter().map(|&s| !s).collect();
    let odc: Vec<bool> = seen
        .iter()
        .zip(&observable)
        .map(|(&s, &o)| s && !o)
        .collect();
    DontCares {
        num_fanins: k,
        sdc,
        odc,
    }
}

/// SAT variables anchoring queries against an encoded window miter: the
/// pivot's fanin variables (assumed to select a local pattern) and the
/// `any_diff` selector (assumed to require an observable difference).
struct WindowMiter {
    pivot_fanins: Vec<Var>,
    any_diff: Var,
}

/// Encodes the duplicated-window miter for `window` into `solver`. With a
/// `group`, every clause carries the group's activation literal so the whole
/// miter can later be retracted; variables are global either way.
fn encode_window_miter(
    solver: &mut Solver,
    group: Option<Group>,
    net: &Network,
    window: &Window,
) -> WindowMiter {
    let emit = |solver: &mut Solver, clause: &[Lit]| match group {
        Some(g) => solver.add_clause_in(g, clause),
        None => solver.add_clause(clause),
    };
    let encode = |solver: &mut Solver, n: NodeId, vars: &HashMap<NodeId, Var>, v: Var| match group {
        Some(g) => encode_node_cnf_in(solver, g, net, n, vars, v),
        None => encode_node_cnf(solver, net, n, vars, v),
    };

    // Original copy.
    let mut vars: HashMap<NodeId, Var> = HashMap::new();
    for &l in window.leaves() {
        vars.insert(l, solver.new_var());
    }
    for &n in window.internals() {
        let v = solver.new_var();
        encode(solver, n, &vars, v);
        vars.insert(n, v);
    }

    // Flipped copy: shares the leaves and the pivot's fanin side, but the
    // pivot output is the negation of the original pivot; TFO-side nodes are
    // re-encoded against the flipped values.
    let mut fvars: HashMap<NodeId, Var> = vars.clone();
    let pivot_flip = solver.new_var();
    emit(
        solver,
        &[Lit::pos(vars[&window.pivot()]), Lit::pos(pivot_flip)],
    );
    emit(
        solver,
        &[Lit::neg(vars[&window.pivot()]), Lit::neg(pivot_flip)],
    );
    fvars.insert(window.pivot(), pivot_flip);
    // Re-encode every internal node downstream of the pivot (in window topo
    // order, anything whose fanin cone inside the window reaches the pivot).
    let mut touched: HashSet<NodeId> = HashSet::new();
    touched.insert(window.pivot());
    for &n in window.internals() {
        if n == window.pivot() {
            continue;
        }
        if net.node(n).fanins().iter().any(|f| touched.contains(f)) {
            touched.insert(n);
            let v = solver.new_var();
            encode(solver, n, &fvars, v);
            fvars.insert(n, v);
        }
    }

    // Miter: some root differs between the copies.
    let mut diff_lits: Vec<Lit> = Vec::new();
    for &r in window.roots() {
        if fvars[&r] == vars[&r] {
            continue; // root unaffected by the flip
        }
        let d = solver.new_var();
        // d → (r ⊕ r')
        emit(
            solver,
            &[Lit::neg(d), Lit::pos(vars[&r]), Lit::pos(fvars[&r])],
        );
        emit(
            solver,
            &[Lit::neg(d), Lit::neg(vars[&r]), Lit::neg(fvars[&r])],
        );
        diff_lits.push(Lit::pos(d));
    }
    let any_diff = solver.new_var();
    {
        // any_diff → OR(diff)
        let mut clause: Vec<Lit> = diff_lits.clone();
        clause.push(Lit::neg(any_diff));
        emit(solver, &clause);
    }

    let pivot_fanins: Vec<Var> = net
        .node(window.pivot())
        .fanins()
        .iter()
        .map(|f| vars[f])
        .collect();
    WindowMiter {
        pivot_fanins,
        any_diff,
    }
}

/// Classifies every local pattern of the pivot against an encoded miter.
/// This single body serves both the fresh-solver path (`activation: None`)
/// and the incremental path (`activation: Some(group_lit)`), so the two are
/// identical by construction — the SDC/ODC answers are semantic properties
/// of the miter, independent of solver state carried over from earlier
/// windows.
fn classify_with_miter(
    solver: &mut Solver,
    miter: &WindowMiter,
    activation: Option<Lit>,
    k: usize,
    stats: &mut SolverStats,
) -> DontCares {
    let mut sdc = vec![false; 1 << k];
    let mut odc = vec![false; 1 << k];
    // One assumption buffer reused across all 2^k patterns (and both query
    // kinds), instead of fresh allocations per query.
    let mut assumptions: Vec<Lit> = Vec::with_capacity(usize::from(activation.is_some()) + k + 1);
    for v in 0..(1usize << k) {
        assumptions.clear();
        assumptions.extend(activation);
        for (i, &fv) in miter.pivot_fanins.iter().enumerate() {
            assumptions.push(Lit::with_sign(fv, v >> i & 1 == 1));
        }
        // Reachable in the window?
        stats.sat_queries += 1;
        if solver.solve_with_assumptions(&assumptions) == SatResult::Unsat {
            sdc[v] = true;
            continue;
        }
        // Observable? exists leaf assignment producing v with a differing root.
        assumptions.push(Lit::pos(miter.any_diff));
        stats.sat_queries += 1;
        if solver.solve_with_assumptions(&assumptions) == SatResult::Unsat {
            odc[v] = true;
        }
    }
    DontCares {
        num_fanins: k,
        sdc,
        odc,
    }
}

/// SAT-based classification on a duplicated-window miter (fresh solver).
fn sat_classify(net: &Network, window: &Window, k: usize) -> DontCares {
    let mut stats = SolverStats::default();
    let mut solver = Solver::new();
    let miter = encode_window_miter(&mut solver, None, net, window);
    classify_with_miter(&mut solver, &miter, None, k, &mut stats)
}

/// Recycle the persistent solver once it holds this many variables:
/// retraction reclaims clauses but variables are never freed, so a very long
/// sweep would otherwise degrade the (linear-scan) decision heuristic.
const SOLVER_VAR_BUDGET: usize = 20_000;

/// A stateful don't-care classifier that amortizes one SAT solver across an
/// entire sweep of windows.
///
/// Each [`compute`](IncrementalClassifier::compute) call encodes the
/// window's miter into a retractable clause group, answers the same
/// pattern-classification queries as [`compute_dont_cares`] under the
/// group's activation literal, and retracts the group before returning —
/// so solver construction, arena growth, and heuristic warm-up are paid once
/// per sweep instead of once per node. Classification results are identical
/// to the stateless path by construction (the query body is shared and the
/// answers are semantic).
///
/// With [`SolverReuse::Fresh`] the classifier degenerates to one solver per
/// window, which is the oracle the differential tests compare against.
#[derive(Debug)]
pub struct IncrementalClassifier {
    reuse: SolverReuse,
    solver: Solver,
    used: bool,
    stats: SolverStats,
}

impl IncrementalClassifier {
    /// Creates a classifier with the given reuse policy.
    pub fn new(reuse: SolverReuse) -> Self {
        IncrementalClassifier {
            reuse,
            solver: Solver::new(),
            used: false,
            stats: SolverStats::default(),
        }
    }

    /// Classifies every local input pattern of `pivot`, exactly like
    /// [`compute_dont_cares`] but reusing this classifier's solver according
    /// to its [`SolverReuse`] policy. `config.reuse` is ignored here — the
    /// policy was fixed at construction.
    ///
    /// # Panics
    ///
    /// Panics if `pivot` is not a live internal node.
    pub fn compute(&mut self, net: &Network, pivot: NodeId, config: &DontCareConfig) -> DontCares {
        let k = net.node(pivot).fanins().len();
        if k > config.max_fanins {
            return DontCares::none(k);
        }
        let window = Window::build(net, pivot, config.levels_in, config.levels_out);
        match config.method {
            DontCareMethod::Enumerate => {
                if window.leaves().len() > config.max_enumerated_leaves {
                    return DontCares::none(k);
                }
                enumerate(net, &window, k)
            }
            DontCareMethod::Sat => match self.reuse {
                SolverReuse::Fresh => {
                    self.solver = Solver::new();
                    self.stats.solver_instances += 1;
                    let miter = encode_window_miter(&mut self.solver, None, net, &window);
                    classify_with_miter(&mut self.solver, &miter, None, k, &mut self.stats)
                }
                SolverReuse::Incremental => {
                    if !self.solver.is_ok() || self.solver.num_vars() > SOLVER_VAR_BUDGET {
                        self.solver = Solver::new();
                        self.used = false;
                    }
                    if !self.used {
                        self.used = true;
                        self.stats.solver_instances += 1;
                    }
                    let g = self.solver.new_group();
                    let miter = encode_window_miter(&mut self.solver, Some(g), net, &window);
                    let dc = classify_with_miter(
                        &mut self.solver,
                        &miter,
                        Some(g.lit()),
                        k,
                        &mut self.stats,
                    );
                    let swept = self.solver.retract(g);
                    self.stats.clauses_retracted += swept as u64; // lint:allow(as-cast): usize widens losslessly to u64
                    dc
                }
            },
        }
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Returns the accumulated counters and resets them to zero (the solver
    /// itself stays warm).
    pub fn take_stats(&mut self) -> SolverStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    /// Fig. 1 of the paper: n1 = i1·i2, n2 = n1·i3, f = i0·n2 + i0'·n1.
    /// The local pattern (n1=0, i3=1) combined with ... more importantly
    /// errors at n2 only propagate when i0 = 1.
    fn fig1() -> (Network, NodeId, NodeId) {
        let mut net = Network::new("fig1");
        let i0 = net.add_pi("i0");
        let i1 = net.add_pi("i1");
        let i2 = net.add_pi("i2");
        let i3 = net.add_pi("i3");
        let n1 = net.add_node(
            "n1",
            vec![i1, i2],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let n2 = net.add_node(
            "n2",
            vec![n1, i3],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let f = net.add_node(
            "f",
            vec![i0, n2, n1],
            Cover::from_cubes(
                3,
                [
                    cube(&[(0, true), (1, true)]),
                    cube(&[(0, false), (2, true)]),
                ],
            ),
        );
        net.add_po("f", f);
        (net, n1, n2)
    }

    #[test]
    fn sdc_detected_by_both_methods() {
        // y = g OR a with g = a AND b: pattern (g=1, a=0) is an SDC.
        let mut net = Network::new("sdc");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let g = net.add_node(
            "g",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let y = net.add_node(
            "y",
            vec![g, a],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
        );
        net.add_po("y", y);
        for method in [DontCareMethod::Enumerate, DontCareMethod::Sat] {
            let cfg = DontCareConfig {
                method,
                ..DontCareConfig::default()
            };
            let dc = compute_dont_cares(&net, y, &cfg);
            assert!(dc.is_sdc(0b01), "{method:?} must find the SDC");
            assert!(!dc.is_sdc(0b00));
            assert!(!dc.is_sdc(0b11));
        }
    }

    #[test]
    fn odc_on_blocked_path() {
        // f = i0·n2 + i0'·n1. With a window around n2 covering f, flipping
        // n2 is unobservable whenever i0 = 0 — but per *pattern* of n2's
        // fanins (n1, i3) observability is: flipping n2 matters iff i0=1.
        // Every fanin pattern of n2 can occur with i0=1, so no full-pattern
        // ODC exists; this pins the conservative behaviour.
        let (net, _n1, n2) = fig1();
        for method in [DontCareMethod::Enumerate, DontCareMethod::Sat] {
            let cfg = DontCareConfig {
                method,
                ..DontCareConfig::default()
            };
            let dc = compute_dont_cares(&net, n2, &cfg);
            for v in 0..4 {
                assert!(!dc.is_dont_care(v), "{method:?} pattern {v:b}");
            }
        }
    }

    #[test]
    fn odc_detected_when_output_masks_node() {
        // y = n OR a, n = a AND b. When a=1, n is unobservable.
        // n's fanin patterns with a=1: (a=1,b=0) → pattern 0b01, (a=1,b=1) →
        // 0b11. Patterns with a=0 make n=0 and y=a=0; flipping n to 1 gives
        // y=1 — observable. So ODC = patterns {01, 11}... wait n's fanins
        // are (a, b): v=0b01 means a=1,b=0 → ODC; v=0b11 → a=1,b=1 → ODC.
        let mut net = Network::new("odc");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let n = net.add_node(
            "n",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let y = net.add_node(
            "y",
            vec![n, a],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
        );
        net.add_po("y", y);
        for method in [DontCareMethod::Enumerate, DontCareMethod::Sat] {
            let cfg = DontCareConfig {
                method,
                ..DontCareConfig::default()
            };
            let dc = compute_dont_cares(&net, n, &cfg);
            assert!(dc.is_odc(0b01), "{method:?}: a=1,b=0 must be ODC");
            assert!(dc.is_odc(0b11), "{method:?}: a=1,b=1 must be ODC");
            assert!(!dc.is_dont_care(0b00), "{method:?}");
            assert!(!dc.is_dont_care(0b10), "{method:?}");
        }
    }

    #[test]
    fn methods_agree_on_fig1() {
        let (net, n1, n2) = fig1();
        for node in [n1, n2] {
            let e = compute_dont_cares(
                &net,
                node,
                &DontCareConfig {
                    method: DontCareMethod::Enumerate,
                    ..DontCareConfig::default()
                },
            );
            let s = compute_dont_cares(
                &net,
                node,
                &DontCareConfig {
                    method: DontCareMethod::Sat,
                    ..DontCareConfig::default()
                },
            );
            let k = e.num_fanins();
            for v in 0..(1 << k) {
                assert_eq!(e.is_sdc(v), s.is_sdc(v), "sdc {node:?} {v:b}");
                assert_eq!(e.is_odc(v), s.is_odc(v), "odc {node:?} {v:b}");
            }
        }
    }

    #[test]
    fn oversized_nodes_degrade_gracefully() {
        let (net, _, n2) = fig1();
        let cfg = DontCareConfig {
            max_fanins: 1,
            ..DontCareConfig::default()
        };
        let dc = compute_dont_cares(&net, n2, &cfg);
        assert_eq!(dc.sdc_count(), 0);
        assert_eq!(dc.odc_count(), 0);
    }

    #[test]
    fn incremental_classifier_matches_stateless_oracle() {
        let (net, n1, n2) = fig1();
        let cfg = DontCareConfig {
            method: DontCareMethod::Sat,
            ..DontCareConfig::default()
        };
        let mut inc = IncrementalClassifier::new(SolverReuse::Incremental);
        let mut fresh = IncrementalClassifier::new(SolverReuse::Fresh);
        for node in [n1, n2, n1, n2] {
            let oracle = compute_dont_cares(&net, node, &cfg);
            for dc in [
                inc.compute(&net, node, &cfg),
                fresh.compute(&net, node, &cfg),
            ] {
                let k = oracle.num_fanins();
                assert_eq!(dc.num_fanins(), k);
                for v in 0..(1 << k) {
                    assert_eq!(dc.is_sdc(v), oracle.is_sdc(v), "sdc {node:?} {v:b}");
                    assert_eq!(dc.is_odc(v), oracle.is_odc(v), "odc {node:?} {v:b}");
                }
            }
        }
        // One incremental instance served all four windows; the fresh path
        // paid one per window.
        assert_eq!(inc.stats().solver_instances, 1);
        assert_eq!(fresh.stats().solver_instances, 4);
        assert_eq!(inc.stats().sat_queries, fresh.stats().sat_queries);
        assert!(inc.stats().clauses_retracted > 0);
        assert_eq!(fresh.stats().clauses_retracted, 0);
    }

    #[test]
    fn take_stats_resets_counters() {
        let (net, _, n2) = fig1();
        let cfg = DontCareConfig {
            method: DontCareMethod::Sat,
            ..DontCareConfig::default()
        };
        let mut inc = IncrementalClassifier::new(SolverReuse::Incremental);
        inc.compute(&net, n2, &cfg);
        let s = inc.take_stats();
        assert!(!s.is_empty());
        assert!(inc.stats().is_empty());
        // Stats reset, but the solver stays warm: the next window reuses it.
        inc.compute(&net, n2, &cfg);
        assert_eq!(inc.stats().solver_instances, 0);
        assert!(inc.stats().sat_queries > 0);
    }

    #[test]
    fn none_is_all_care() {
        let dc = DontCares::none(3);
        for v in 0..8 {
            assert!(!dc.is_dont_care(v));
        }
        assert_eq!(dc.num_fanins(), 3);
    }
}
