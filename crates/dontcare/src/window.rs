use als_network::{Network, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};

/// A window around a pivot node: the sub-network the don't-care computation
/// reasons about, following the `mfs` windowing scheme (`levels_in` levels of
/// transitive fanin, `levels_out` levels of transitive fanout, plus the
/// fanin cones feeding the fanout side).
///
/// *Leaves* are signals feeding the window from outside (treated as free
/// variables — which makes the resulting don't-care sets sound subsets of
/// the true ones). *Roots* are window nodes observed from outside (fanouts
/// escaping the window, or primary outputs).
#[derive(Clone, Debug)]
pub struct Window {
    pivot: NodeId,
    /// Window-internal nodes in topological order (pivot included).
    internals: Vec<NodeId>,
    leaves: Vec<NodeId>,
    roots: Vec<NodeId>,
}

impl Window {
    /// Builds the window of `pivot` with the given depths.
    ///
    /// # Panics
    ///
    /// Panics if `pivot` is not a live internal node.
    pub fn build(net: &Network, pivot: NodeId, levels_in: usize, levels_out: usize) -> Self {
        assert!(net.is_live(pivot), "pivot must be live");
        assert!(!net.node(pivot).is_pi(), "pivot must be an internal node");
        let fanouts = net.fanouts();

        // Fanout side: BFS up to levels_out.
        let mut tfo: HashSet<NodeId> = HashSet::new();
        let mut frontier = vec![pivot];
        tfo.insert(pivot);
        for _ in 0..levels_out {
            let mut next = Vec::new();
            for &n in &frontier {
                for &u in &fanouts[n.index()] {
                    if tfo.insert(u) {
                        next.push(u);
                    }
                }
            }
            frontier = next;
        }

        // Fanin side: BFS up to levels_in from the pivot *and* from every
        // TFO node, collecting internal nodes only.
        let mut inside: HashSet<NodeId> = tfo.clone();
        // lint:allow(map-iter): seeds a BFS whose result is a membership set
        let mut queue: VecDeque<(NodeId, usize)> = tfo.iter().map(|&n| (n, 0)).collect();
        while let Some((n, d)) = queue.pop_front() {
            if d == levels_in {
                continue;
            }
            for &f in net.node(n).fanins() {
                if !net.node(f).is_pi() && inside.insert(f) {
                    queue.push_back((f, d + 1));
                }
            }
        }

        // Leaves: fanins of internal nodes that are not themselves internal.
        let mut leaves: Vec<NodeId> = Vec::new();
        let mut leaf_set: HashSet<NodeId> = HashSet::new();
        for &n in &inside {
            // lint:allow(map-iter): leaves are sorted below
            for &f in net.node(n).fanins() {
                if !inside.contains(&f) && leaf_set.insert(f) {
                    leaves.push(f);
                }
            }
        }
        leaves.sort();

        // Roots: internal nodes observed from outside the window.
        let po_drivers: HashSet<NodeId> = net.pos().iter().map(|(_, d)| *d).collect();
        // lint:allow(map-iter): collected then sorted, so set order never leaks out
        let mut roots: Vec<NodeId> = inside
            .iter()
            .copied()
            .filter(|&n| {
                po_drivers.contains(&n) || fanouts[n.index()].iter().any(|u| !inside.contains(u))
            })
            .collect();
        roots.sort();

        // Topological order restricted to the window.
        let order: Vec<NodeId> = net
            .topo_order()
            .into_iter()
            .filter(|n| inside.contains(n))
            .collect();

        Window {
            pivot,
            internals: order,
            leaves,
            roots,
        }
    }

    /// The pivot node.
    pub fn pivot(&self) -> NodeId {
        self.pivot
    }

    /// Window-internal nodes, topologically ordered (pivot included).
    pub fn internals(&self) -> &[NodeId] {
        &self.internals
    }

    /// The window's free inputs.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// The window's observed outputs.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Evaluates all window nodes under a leaf assignment (bit `i` of
    /// `leaf_values` drives `leaves()[i]`), with the pivot optionally forced
    /// to a value. Returns the map node → value for leaves and internals.
    pub fn eval(
        &self,
        net: &Network,
        leaf_values: u64,
        force_pivot: Option<bool>,
    ) -> HashMap<NodeId, bool> {
        let mut value: HashMap<NodeId, bool> =
            HashMap::with_capacity(self.leaves.len() + self.internals.len());
        for (i, &l) in self.leaves.iter().enumerate() {
            value.insert(l, leaf_values >> i & 1 == 1);
        }
        for &n in &self.internals {
            let node = net.node(n);
            let mut assignment = 0u64;
            for (i, &f) in node.fanins().iter().enumerate() {
                if *value.get(&f).expect("window closure") {
                    // lint:allow(panic): internal invariant; the message states it
                    assignment |= 1 << i;
                }
            }
            let mut v = node.expr().eval(assignment);
            if n == self.pivot {
                if let Some(forced) = force_pivot {
                    v = forced;
                }
            }
            value.insert(n, v);
        }
        value
    }

    /// The local input pattern of the pivot under a node-value map produced
    /// by [`Window::eval`].
    pub fn pivot_pattern(&self, net: &Network, values: &HashMap<NodeId, bool>) -> usize {
        let node = net.node(self.pivot);
        let mut v = 0usize;
        for (i, &f) in node.fanins().iter().enumerate() {
            if *values.get(&f).expect("fanins evaluated") {
                // lint:allow(panic): internal invariant; the message states it
                v |= 1 << i;
            }
        }
        v
    }
}

/// Membership bitmap (indexed by arena position) of nodes within `radius`
/// undirected hops of `center`, traversing fanin and fanout edges alike.
pub fn undirected_ball(net: &Network, center: NodeId, radius: usize) -> Vec<bool> {
    let fanouts = net.fanouts();
    let mut seen = vec![false; fanouts.len()];
    let mut frontier = vec![center];
    seen[center.index()] = true;
    for _ in 0..radius {
        let mut next = Vec::new();
        for &n in &frontier {
            let node = net.node(n);
            for &f in node.fanins() {
                if !seen[f.index()] {
                    seen[f.index()] = true;
                    next.push(f);
                }
            }
            for &u in &fanouts[n.index()] {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    seen
}

/// Conservative superset of the nodes whose `levels_in × levels_out` window
/// can contain `center` — i.e. the nodes whose SDC/ODC classification a
/// structural change at `center` may alter. Every member of a node's window
/// lies within `levels_in + levels_out` undirected hops of its pivot, so a
/// ball of that radius plus one hop of slack (covering edges incident to
/// `center` that the change removes) is a sound invalidation cone.
pub fn window_influence(
    net: &Network,
    center: NodeId,
    levels_in: usize,
    levels_out: usize,
) -> Vec<bool> {
    undirected_ball(net, center, levels_in + levels_out + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    fn chain() -> (Network, Vec<NodeId>) {
        // a → g1 → g2 → g3 → po, all buffers-with-AND shape.
        let mut net = Network::new("chain");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let g1 = net.add_node(
            "g1",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let g2 = net.add_node(
            "g2",
            vec![g1, b],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, false)])]),
        );
        let g3 = net.add_node("g3", vec![g2], Cover::from_cubes(1, [cube(&[(0, false)])]));
        net.add_po("f", g3);
        (net, vec![a, b, g1, g2, g3])
    }

    #[test]
    fn window_of_middle_node() {
        let (net, ids) = chain();
        let g2 = ids[3];
        let w = Window::build(&net, g2, 1, 1);
        assert_eq!(w.pivot(), g2);
        // 1 level in: g1; 1 level out: g3.
        assert!(w.internals().contains(&ids[2]));
        assert!(w.internals().contains(&ids[4]));
        // Leaves: a and b (fanins of g1/g2 outside the window).
        assert_eq!(w.leaves(), &[ids[0], ids[1]]);
        // Root: g3 drives the PO.
        assert_eq!(w.roots(), &[ids[4]]);
    }

    #[test]
    fn window_zero_levels_is_just_pivot() {
        let (net, ids) = chain();
        let g2 = ids[3];
        let w = Window::build(&net, g2, 0, 0);
        assert_eq!(w.internals(), &[g2]);
        // g2's fanins g1 and b become leaves; g2 itself is the root (its
        // fanout g3 is outside).
        assert_eq!(w.leaves(), &[ids[1], ids[2]]);
        assert_eq!(w.roots(), &[g2]);
    }

    #[test]
    fn eval_with_forced_pivot() {
        let (net, ids) = chain();
        let g2 = ids[3];
        let w = Window::build(&net, g2, 1, 1);
        // leaves = [a, b]; set a=1, b=1: g1=1, g2=1, g3=!g2=0.
        let vals = w.eval(&net, 0b11, None);
        assert!(vals[&ids[2]]);
        assert!(vals[&g2]);
        assert!(!vals[&ids[4]]);
        // Force pivot to 0: g3 flips.
        let vals = w.eval(&net, 0b11, Some(false));
        assert!(!vals[&g2]);
        assert!(vals[&ids[4]]);
    }

    #[test]
    fn pivot_pattern_extraction() {
        let (net, ids) = chain();
        let g2 = ids[3];
        let w = Window::build(&net, g2, 1, 1);
        let vals = w.eval(&net, 0b11, None);
        // g2's fanins are [g1, b] = [1, 1] → pattern 0b11.
        assert_eq!(w.pivot_pattern(&net, &vals), 0b11);
        let vals = w.eval(&net, 0b10, None); // a=0, b=1 → g1=0
        assert_eq!(w.pivot_pattern(&net, &vals), 0b10);
    }

    #[test]
    fn root_detection_includes_escaping_fanout() {
        // g1 feeds g2 (inside) and an external node far away.
        let mut net = Network::new("esc");
        let a = net.add_pi("a");
        let g1 = net.add_node("g1", vec![a], Cover::from_cubes(1, [cube(&[(0, true)])]));
        let g2 = net.add_node("g2", vec![g1], Cover::from_cubes(1, [cube(&[(0, false)])]));
        let g3 = net.add_node("g3", vec![g2], Cover::from_cubes(1, [cube(&[(0, false)])]));
        let far = net.add_node("far", vec![g1], Cover::from_cubes(1, [cube(&[(0, true)])]));
        let top = net.add_node(
            "top",
            vec![g3, far],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        net.add_po("top", top);
        let w = Window::build(&net, g2, 1, 1);
        // g1 is inside (1 level in); its fanout `far` is outside → g1 is a root.
        assert!(w.roots().contains(&g1));
    }
}
