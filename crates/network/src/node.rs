use als_logic::{Cover, Expr};
use std::fmt;

/// A handle to a node inside a [`Network`](crate::Network).
///
/// Ids are stable for the lifetime of the node; removed nodes leave
/// tombstones, so ids are never reused within one network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of the node in the network's arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize // lint:allow(as-cast): u32 index fits usize on all supported targets
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The role of a node within the network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeKind {
    /// A primary input; has no local function.
    Pi,
    /// An internal logic node with a local function over its fanins.
    Internal,
}

/// A node of a multi-level Boolean network.
///
/// Internal nodes carry their local function twice, exactly as in MIS/SIS:
/// as an SOP [`Cover`] and as a factored-form [`Expr`], both over the node's
/// fanin list (local variable `i` is `fanins[i]`). The two representations
/// are kept functionally consistent by [`Network`](crate::Network) update
/// methods.
#[derive(Clone, Debug)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
    pub(crate) fanins: Vec<NodeId>,
    pub(crate) cover: Cover,
    pub(crate) expr: Expr,
}

impl Node {
    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's kind.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Whether this node is a primary input.
    pub fn is_pi(&self) -> bool {
        self.kind == NodeKind::Pi
    }

    /// The immediate fanins; local variable `i` of the node function refers
    /// to `fanins()[i]`.
    pub fn fanins(&self) -> &[NodeId] {
        &self.fanins
    }

    /// The SOP form of the local function (over the fanin variables).
    ///
    /// # Panics
    ///
    /// Panics if called on a primary input.
    pub fn cover(&self) -> &Cover {
        assert!(!self.is_pi(), "primary inputs have no local function");
        &self.cover
    }

    /// The factored form of the local function (over the fanin variables).
    ///
    /// # Panics
    ///
    /// Panics if called on a primary input.
    pub fn expr(&self) -> &Expr {
        assert!(!self.is_pi(), "primary inputs have no local function");
        &self.expr
    }

    /// The factored-form literal count — the area estimate of this node.
    /// Zero for primary inputs and constants.
    pub fn literal_count(&self) -> usize {
        match self.kind {
            NodeKind::Pi => 0,
            NodeKind::Internal => self.expr.literal_count(),
        }
    }

    /// Whether the node computes a constant function.
    pub fn is_constant(&self) -> bool {
        self.kind == NodeKind::Internal && self.expr.as_constant().is_some()
    }
}
