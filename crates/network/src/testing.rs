//! Raw defect injection for checker tests.
//!
//! Every public `Network` mutator defends its invariants (no cycles, arity
//! agreement, live fanins, SOP ↔ factored-form equivalence), which makes it
//! impossible to build the *broken* networks that `als-check`'s mutation
//! tests need. These functions bypass the defenses on purpose.
//!
//! **Never call these outside of tests.** A network mutated here violates
//! the contracts every other crate relies on.

use crate::{Network, NodeId};
use als_logic::{Cover, Cube};

/// Overwrites `node`'s fanin list with no validation whatsoever: the new
/// list may create a combinational cycle, reference dead nodes, repeat a
/// fanin, or disagree with the cover's variable count.
pub fn raw_set_fanins(net: &mut Network, node: NodeId, fanins: Vec<NodeId>) {
    net.nodes_mut(node).fanins = fanins;
}

/// Deletes `node`'s fanin at position `idx` while leaving the cover and
/// factored form untouched — the local function still references a variable
/// the fanin list no longer provides, and the dropped driver silently loses
/// a fanout edge.
///
/// # Panics
///
/// Panics if `idx` is out of range.
pub fn raw_drop_fanin(net: &mut Network, node: NodeId, idx: usize) {
    net.nodes_mut(node).fanins.remove(idx);
}

/// Flips the phase of the first literal of the first cube of `node`'s SOP
/// cover without touching the factored form, so the two representations of
/// the local function disagree.
///
/// # Panics
///
/// Panics if the node's cover has no cube with at least one literal.
pub fn raw_flip_cover_literal(net: &mut Network, node: NodeId) {
    let old = net.nodes_mut(node).cover.clone();
    let mut cubes: Vec<Cube> = old.cubes().to_vec();
    let target = cubes
        .iter_mut()
        .find(|c| c.literal_count() > 0)
        .expect("node needs a cube with a literal to flip"); // lint:allow(panic): internal invariant; the message states it
    let (var, phase) = target
        .literals()
        .next()
        .expect("literal_count > 0 guarantees a literal"); // lint:allow(panic): internal invariant; the message states it
    let flipped: Vec<(usize, bool)> = target
        .literals()
        .map(|(v, p)| if v == var { (v, !phase) } else { (v, p) })
        .collect();
    *target = Cube::from_literals(&flipped).expect("same variables, one phase each"); // lint:allow(panic): cube literals are valid by construction
    net.nodes_mut(node).cover = Cover::from_cubes(old.num_vars(), cubes);
}

/// Points `node`'s first fanin at `ghost` without liveness checks; pass a
/// tombstoned or out-of-range id to create a dangling reference.
///
/// # Panics
///
/// Panics if the node has no fanins.
pub fn raw_redirect_first_fanin(net: &mut Network, node: NodeId, ghost: NodeId) {
    net.nodes_mut(node).fanins[0] = ghost;
}
