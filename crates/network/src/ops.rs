//! Classical structural operations in the SIS tradition: node collapsing
//! and the `eliminate` pass.

use crate::{Network, NodeId, NodeKind};
use als_logic::factor::factor_cover;
use als_logic::isop::isop_exact;
use als_logic::{TruthTable, MAX_VARS};

impl Network {
    /// Collapses node `n` into one fanout `user`: `user`'s function is
    /// re-expressed over `(user.fanins \ {n}) ∪ n.fanins` with `n`
    /// substituted by its local function. `n` itself is left in place (it
    /// may have other fanouts); run [`Network::sweep`] afterwards.
    ///
    /// Returns `false` (leaving the network untouched) when the merged
    /// support would exceed [`MAX_VARS`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an internal node, or `user` is not a fanout of
    /// `n`.
    pub fn collapse_into(&mut self, n: NodeId, user: NodeId) -> bool {
        assert_eq!(
            self.node(n).kind(),
            NodeKind::Internal,
            "cannot collapse a PI"
        );
        let user_node = self.node(user);
        let var_of_n = user_node
            .fanins()
            .iter()
            .position(|&f| f == n)
            .expect("user must be a fanout of n"); // lint:allow(panic): internal invariant; the message states it

        let n_fanins = self.node(n).fanins().to_vec();
        let user_fanins = user_node.fanins().to_vec();
        // Merged fanin list: user's (minus n) first, then n's new ones.
        let mut merged: Vec<NodeId> = user_fanins.iter().copied().filter(|&f| f != n).collect();
        for &f in &n_fanins {
            if !merged.contains(&f) {
                merged.push(f);
            }
        }
        if merged.len() > MAX_VARS {
            return false;
        }

        let n_cover = self.node(n).cover().clone();
        let user_cover = self.node(user).cover().clone();
        let position = |f: NodeId| merged.iter().position(|&g| g == f).expect("merged"); // lint:allow(panic): internal invariant; the message states it

        let tt = TruthTable::from_fn(merged.len(), |m| {
            let n_val = {
                let mut local = 0u64;
                for (i, &f) in n_fanins.iter().enumerate() {
                    if m >> position(f) & 1 == 1 {
                        local |= 1 << i;
                    }
                }
                n_cover.eval(local)
            };
            let mut local = 0u64;
            for (i, &f) in user_fanins.iter().enumerate() {
                let bit = if i == var_of_n {
                    n_val
                } else {
                    m >> position(f) & 1 == 1
                };
                if bit {
                    local |= 1 << i;
                }
            }
            user_cover.eval(local)
        })
        .expect("merged support bounded by MAX_VARS"); // lint:allow(panic): internal invariant; the message states it

        let cover = isop_exact(&tt);
        let expr = factor_cover(&cover);
        let node = self.node_mut(user);
        node.fanins = merged;
        node.cover = cover;
        node.expr = expr;
        // Normalize: drop fanins the minimized function does not mention.
        let packed = self.node(user).expr.clone();
        self.replace_expr(user, packed);
        true
    }

    /// The SIS `eliminate` pass: collapses every internal node whose
    /// *value* — the literal cost its existence saves,
    /// `lits·fanouts − lits − fanouts` — is below `threshold`, then sweeps.
    /// Nodes driving primary outputs are kept. Returns the number of nodes
    /// eliminated.
    ///
    /// `eliminate(-1)` removes only nodes whose sharing is free to undo
    /// (single-fanout buffers and the like); larger thresholds collapse more
    /// aggressively.
    pub fn eliminate(&mut self, threshold: i64) -> usize {
        let mut eliminated = 0usize;
        loop {
            let po_drivers: Vec<NodeId> = self.pos().iter().map(|(_, d)| *d).collect();
            let fanouts = self.fanouts();
            let candidate = self.internal_ids().find(|&id| {
                if po_drivers.contains(&id) || self.node(id).is_constant() {
                    return false;
                }
                let users = &fanouts[id.index()];
                if users.is_empty() {
                    return false;
                }
                let lits = self.node(id).literal_count() as i64; // lint:allow(as-cast): counts << 2^63
                let n_out = users.len() as i64; // lint:allow(as-cast): counts << 2^63
                let value = lits * n_out - lits - n_out;
                value < threshold
            });
            let Some(id) = candidate else { break };
            let users = fanouts[id.index()].clone();
            let mut all_ok = true;
            for user in users {
                if !self.collapse_into(id, user) {
                    all_ok = false;
                }
            }
            if !all_ok {
                // Support cap hit: leave the remaining structure as is and
                // stop trying this node (it still has fanouts, so sweep
                // keeps it).
                break;
            }
            self.sweep();
            eliminated += 1;
        }
        eliminated
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut crate::Node {
        self.nodes_mut(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    fn buffer_chain() -> (Network, Vec<NodeId>) {
        // a → inv → inv → po (double inverter: collapses to a buffer).
        let mut net = Network::new("chain");
        let a = net.add_pi("a");
        let i1 = net.add_node("i1", vec![a], Cover::from_cubes(1, [cube(&[(0, false)])]));
        let i2 = net.add_node("i2", vec![i1], Cover::from_cubes(1, [cube(&[(0, false)])]));
        net.add_po("y", i2);
        (net, vec![a, i1, i2])
    }

    #[test]
    fn collapse_double_inverter() {
        let (mut net, ids) = buffer_chain();
        assert!(net.collapse_into(ids[1], ids[2]));
        net.sweep();
        net.check().unwrap();
        assert_eq!(net.eval(&[true]), vec![true]);
        assert_eq!(net.eval(&[false]), vec![false]);
        assert!(!net.is_live(ids[1]), "collapsed node swept");
    }

    #[test]
    fn eliminate_removes_cheap_nodes() {
        let (mut net, _) = buffer_chain();
        let before = net.eval(&[true]);
        let removed = net.eliminate(0);
        assert!(removed >= 1);
        net.check().unwrap();
        assert_eq!(net.eval(&[true]), before);
    }

    #[test]
    fn eliminate_preserves_function_on_structured_logic() {
        // f = (a·b)·(c·d) built with intermediate 2-AND nodes.
        let mut net = Network::new("t");
        let pis: Vec<NodeId> = (0..4).map(|i| net.add_pi(format!("x{i}"))).collect();
        let g1 = net.add_node(
            "g1",
            vec![pis[0], pis[1]],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let g2 = net.add_node(
            "g2",
            vec![pis[2], pis[3]],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let top = net.add_node(
            "top",
            vec![g1, g2],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        net.add_po("f", top);
        let reference: Vec<Vec<bool>> = (0..16u32)
            .map(|m| net.eval(&(0..4).map(|i| m >> i & 1 == 1).collect::<Vec<_>>()))
            .collect();
        net.eliminate(10); // aggressive: collapse everything into `top`
        net.check().unwrap();
        for (m, expect) in reference.iter().enumerate() {
            let pis: Vec<bool> = (0..4).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(&net.eval(&pis), expect, "minterm {m}");
        }
        assert_eq!(net.num_internal(), 1, "all logic folded into the root");
    }

    #[test]
    fn po_drivers_are_never_eliminated() {
        let (mut net, ids) = buffer_chain();
        net.eliminate(1000);
        assert!(net.is_live(ids[2]), "PO driver must survive");
        net.check().unwrap();
    }

    #[test]
    fn collapse_with_shared_fanins() {
        // user = n OR b where n = a AND b: shared fanin b must merge.
        let mut net = Network::new("s");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let n = net.add_node(
            "n",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let user = net.add_node(
            "user",
            vec![n, b],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
        );
        net.add_po("y", user);
        assert!(net.collapse_into(n, user));
        net.sweep();
        net.check().unwrap();
        // y = ab + b = b.
        for m in 0..4u32 {
            let pis = [m & 1 == 1, m >> 1 & 1 == 1];
            assert_eq!(net.eval(&pis), vec![pis[1]], "{m:02b}");
        }
    }
}
