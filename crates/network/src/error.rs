use crate::NodeId;
use std::error::Error;
use std::fmt;

/// Error type for network construction and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// A node id referred to a removed or never-created node.
    InvalidNode {
        /// The offending id.
        node: NodeId,
    },
    /// Adding an edge would create a combinational cycle.
    WouldCycle {
        /// The node whose fanin list would close the cycle.
        node: NodeId,
    },
    /// A BLIF construct could not be parsed.
    ParseBlif {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A referenced signal name was never defined.
    UndefinedSignal {
        /// The missing name.
        name: String,
    },
    /// A structural consistency check failed.
    Inconsistent {
        /// Description of the violated invariant.
        message: String,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::InvalidNode { node } => write!(f, "invalid node id {node}"),
            NetworkError::WouldCycle { node } => {
                write!(f, "edge into {node} would create a combinational cycle")
            }
            NetworkError::ParseBlif { line, message } => {
                write!(f, "blif parse error at line {line}: {message}")
            }
            NetworkError::UndefinedSignal { name } => {
                write!(f, "undefined signal `{name}`")
            }
            NetworkError::Inconsistent { message } => {
                write!(f, "network inconsistency: {message}")
            }
        }
    }
}

impl Error for NetworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetworkError::UndefinedSignal { name: "foo".into() };
        assert!(e.to_string().contains("foo"));
        let e = NetworkError::ParseBlif {
            line: 7,
            message: "bad cube".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }
}
