//! Graphviz DOT export for visual debugging of small networks.

use crate::{Network, NodeKind};
use std::fmt::Write as _;

/// Renders the network as a Graphviz digraph: PIs as boxes, internal nodes
/// as ellipses labelled with their factored forms, POs as double circles.
///
/// # Example
///
/// ```
/// use als_network::{dot, Network};
/// use als_logic::{Cover, Cube};
///
/// let mut net = Network::new("tiny");
/// let a = net.add_pi("a");
/// let y = net.add_node("y", vec![a],
///     Cover::from_cubes(1, [Cube::from_literals(&[(0, false)])?]));
/// net.add_po("out", y);
/// let text = dot::write_dot(&net);
/// assert!(text.contains("digraph tiny"));
/// assert!(text.contains("a -> y"));
/// # Ok::<(), als_logic::LogicError>(())
/// ```
pub fn write_dot(net: &Network) -> String {
    let mut out = String::new();
    // lint:allow(silent-result): fmt::Write into a String is infallible
    let _ = render(net, &mut out);
    out
}

/// The fallible body of [`write_dot`]: every `write!` propagates, so the
/// one place the `fmt::Error` is discarded is the `String`-backed wrapper.
fn render(net: &Network, out: &mut String) -> std::fmt::Result {
    let sanitize = |name: &str| -> String {
        name.chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect()
    };
    writeln!(out, "digraph {} {{", sanitize(net.name()))?;
    writeln!(out, "  rankdir=LR;")?;
    for id in net.node_ids() {
        let node = net.node(id);
        let name = sanitize(node.name());
        match node.kind() {
            NodeKind::Pi => {
                writeln!(out, "  {name} [shape=box];")?;
            }
            NodeKind::Internal => {
                writeln!(
                    out,
                    "  {name} [shape=ellipse, label=\"{}\\n{}\"];",
                    node.name(),
                    node.expr()
                )?;
            }
        }
    }
    for id in net.node_ids() {
        let node = net.node(id);
        let to = sanitize(node.name());
        for &f in node.fanins() {
            writeln!(out, "  {} -> {to};", sanitize(net.node(f).name()))?;
        }
    }
    for (po_name, driver) in net.pos() {
        let pn = format!("po_{}", sanitize(po_name));
        writeln!(out, "  {pn} [shape=doublecircle, label=\"{po_name}\"];")?;
        writeln!(out, "  {} -> {pn};", sanitize(net.node(*driver).name()))?;
    }
    writeln!(out, "}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    #[test]
    fn dot_structure() {
        let mut net = Network::new("t");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let y = net.add_node(
            "y",
            vec![a, b],
            Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
        );
        net.add_po("f", y);
        let text = write_dot(&net);
        assert!(text.starts_with("digraph t {"));
        assert!(text.contains("a [shape=box];"));
        assert!(text.contains("a -> y;"));
        assert!(text.contains("b -> y;"));
        assert!(text.contains("po_f [shape=doublecircle"));
        assert!(text.contains("y -> po_f;"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn odd_characters_sanitized() {
        let mut net = Network::new("a-b.c");
        let a = net.add_pi("in[0]");
        net.add_po("out.x", a);
        let text = write_dot(&net);
        assert!(text.contains("digraph a_b_c"));
        assert!(text.contains("in_0_ [shape=box];"));
        assert!(text.contains("po_out_x"));
    }
}
