//! Structural analyses over the fanout DAG: output-dominator trees,
//! reconvergent-fanout detection, and TFO-cone extraction.
//!
//! These passes are purely structural (no simulation, no functional
//! reasoning) and exist to sharpen *other* static analyses:
//!
//! * [`OutputDominators`] — the immediate-dominator tree of the fanout DAG
//!   in the node→output direction (post-dominators with a virtual sink
//!   consuming every primary output). If `d` dominates `v`, every
//!   error that originates at `v` and reaches any output must pass
//!   through `d`, so an error bound established at `d` caps every
//!   output's error contribution from `v`.
//! * [`reconvergent_sources`] — nodes whose fanout branches meet again
//!   downstream. Signals inside a reconvergent region are correlated even
//!   when the primary inputs are independent, so an abstract interpreter
//!   must not use the independence product rule across them (the
//!   worst-case Fréchet bounds stay sound).
//! * [`tfo_cone`] — the transitive-fanout cone of a node in topological
//!   order, so a local-change analysis can restrict propagation to the
//!   cone instead of the whole network.

use crate::{Network, NodeId};

/// During the dominator walk a node's current dominator candidate is either
/// a real node or the virtual sink behind the primary outputs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Cand {
    Node(NodeId),
    Sink,
}

/// The immediate-dominator tree of the fanout DAG toward the primary
/// outputs.
///
/// Built with the Cooper–Harvey–Kennedy intersection scheme on the
/// reversed graph; because the network is a DAG, one pass in reverse
/// topological order reaches the fixed point.
#[derive(Clone, Debug)]
pub struct OutputDominators {
    /// Arena-indexed immediate dominator. `None` means the node's paths to
    /// the outputs share no later node (only the virtual sink), or the node
    /// cannot reach an output at all — distinguish with `reaches_output`.
    idom: Vec<Option<NodeId>>,
    /// Arena-indexed: whether the node lies on some path to a primary
    /// output (drives one directly or transitively).
    reaches_output: Vec<bool>,
}

impl OutputDominators {
    /// Computes the dominator tree of `net`'s fanout DAG.
    pub fn compute(net: &Network) -> OutputDominators {
        let fanouts = net.fanouts();
        let arena = fanouts.len();
        let order = net.topo_order();
        let mut rank = vec![0usize; arena];
        for (pos, id) in order.iter().enumerate() {
            rank[id.index()] = pos + 1;
        }
        let mut drives_po = vec![false; arena];
        for (_, id) in net.pos() {
            drives_po[id.index()] = true;
        }

        let mut idom: Vec<Option<NodeId>> = vec![None; arena];
        let mut reaches = vec![false; arena];

        // Walks one step up the dominator chain; `None` stands for Sink.
        let up = |c: Cand, idom: &[Option<NodeId>]| -> Cand {
            match c {
                Cand::Node(n) => idom[n.index()].map_or(Cand::Sink, Cand::Node),
                Cand::Sink => Cand::Sink,
            }
        };
        let rank_of = |c: Cand, rank: &[usize]| -> usize {
            match c {
                Cand::Node(n) => rank[n.index()],
                Cand::Sink => usize::MAX,
            }
        };

        for &v in order.iter().rev() {
            let i = v.index();
            let mut current: Option<Cand> = if drives_po[i] { Some(Cand::Sink) } else { None };
            for &f in &fanouts[i] {
                if !reaches[f.index()] {
                    continue; // dead branch: cannot carry anything to an output
                }
                let mut a = Cand::Node(f);
                match current {
                    None => current = Some(a),
                    Some(mut b) => {
                        // Standard two-finger intersection on ranks; the
                        // sink outranks every node.
                        while a != b {
                            if rank_of(a, &rank) < rank_of(b, &rank) {
                                a = up(a, &idom);
                            } else {
                                b = up(b, &idom);
                            }
                        }
                        current = Some(a);
                    }
                }
            }
            match current {
                Some(Cand::Node(d)) => {
                    idom[i] = Some(d);
                    reaches[i] = true;
                }
                Some(Cand::Sink) => {
                    idom[i] = None;
                    reaches[i] = true;
                }
                None => {
                    idom[i] = None;
                    reaches[i] = false;
                }
            }
        }

        OutputDominators {
            idom,
            reaches_output: reaches,
        }
    }

    /// The immediate dominator of `id` toward the outputs, or `None` when
    /// no single node dominates it (or it is dead logic — see
    /// [`OutputDominators::reaches_output`]).
    pub fn idom(&self, id: NodeId) -> Option<NodeId> {
        self.idom[id.index()]
    }

    /// Whether `id` lies on some path to a primary output.
    pub fn reaches_output(&self, id: NodeId) -> bool {
        self.reaches_output[id.index()]
    }

    /// The dominator chain of `id`, nearest first, excluding `id` itself
    /// and the virtual sink.
    pub fn chain(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.idom(id);
        while let Some(d) = cur {
            out.push(d);
            cur = self.idom(d);
        }
        out
    }

    /// Whether every path from `id` to any primary output passes through
    /// `dom` (`id` never dominates itself here).
    pub fn dominates(&self, dom: NodeId, id: NodeId) -> bool {
        self.chain(id).contains(&dom)
    }
}

/// Arena-indexed flags: `true` for nodes whose fanout branches reconverge —
/// two distinct immediate fanouts reach a common downstream node.
///
/// Downstream of such a node, signal values are correlated regardless of
/// input independence; an abstract interpreter must use worst-case (Fréchet)
/// combination there instead of the independence product rule.
pub fn reconvergent_sources(net: &Network) -> Vec<bool> {
    let fanouts = net.fanouts();
    let arena = fanouts.len();
    let words = arena.div_ceil(64);
    // reach[i] = bitset over arena positions reachable from node i
    // (including i itself). Built bottom-up in reverse topological order.
    let mut reach = vec![vec![0u64; words]; arena];
    let order = net.topo_order();
    for &v in order.iter().rev() {
        let i = v.index();
        reach[i][i / 64] |= 1u64 << (i % 64);
        for &f in &fanouts[i] {
            let row = reach[f.index()].clone();
            for (dst, src) in reach[i].iter_mut().zip(&row) {
                *dst |= src;
            }
        }
    }
    let mut out = vec![false; arena];
    for id in net.node_ids() {
        let fs = &fanouts[id.index()];
        'pairs: for (a, &fa) in fs.iter().enumerate() {
            for &fb in &fs[a + 1..] {
                if fa == fb
                    || reach[fa.index()]
                        .iter()
                        .zip(&reach[fb.index()])
                        .any(|(x, y)| x & y != 0)
                {
                    out[id.index()] = true;
                    break 'pairs;
                }
            }
        }
    }
    out
}

/// The transitive-fanout cone of `id` (including `id` itself) in
/// topological order — the exact node set a local-change analysis must
/// propagate through.
pub fn tfo_cone(net: &Network, id: NodeId) -> Vec<NodeId> {
    let mask = net.tfo_mask(id);
    net.topo_order()
        .into_iter()
        .filter(|n| mask[n.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    fn buf(var: usize, num_vars: usize) -> Cover {
        Cover::from_cubes(num_vars, [cube(&[(var, true)])])
    }

    /// a → b → c → PO (a simple chain).
    fn chain_net() -> (Network, [NodeId; 4]) {
        let mut net = Network::new("chain");
        let x = net.add_pi("x");
        let a = net.add_node("a", vec![x], buf(0, 1));
        let b = net.add_node("b", vec![a], buf(0, 1));
        let c = net.add_node("c", vec![b], buf(0, 1));
        net.add_po("out", c);
        (net, [x, a, b, c])
    }

    /// x → a → {s, t} → u → PO (the classic reconvergent diamond).
    fn diamond_net() -> (Network, [NodeId; 5]) {
        let mut net = Network::new("diamond");
        let x = net.add_pi("x");
        let a = net.add_node("a", vec![x], buf(0, 1));
        let s = net.add_node("s", vec![a], buf(0, 1));
        let t = net.add_node(
            "t",
            vec![a],
            Cover::from_cubes(1, [cube(&[(0, false)])]), // t = ¬a
        );
        let u = net.add_node(
            "u",
            vec![s, t],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]), // u = s·t
        );
        net.add_po("out", u);
        (net, [x, a, s, t, u])
    }

    #[test]
    fn chain_dominators_follow_the_chain() {
        let (net, [x, a, b, c]) = chain_net();
        let dom = OutputDominators::compute(&net);
        assert_eq!(dom.idom(x), Some(a));
        assert_eq!(dom.idom(a), Some(b));
        assert_eq!(dom.idom(b), Some(c));
        assert_eq!(dom.idom(c), None);
        assert!(dom.reaches_output(c));
        assert_eq!(dom.chain(x), vec![a, b, c]);
        assert!(dom.dominates(c, x));
        assert!(!dom.dominates(x, c));
    }

    #[test]
    fn diamond_reconverges_at_the_merge_node() {
        let (net, [x, a, s, t, u]) = diamond_net();
        let dom = OutputDominators::compute(&net);
        // Both branches of `a` meet again at `u`.
        assert_eq!(dom.idom(a), Some(u));
        assert_eq!(dom.idom(s), Some(u));
        assert_eq!(dom.idom(t), Some(u));
        assert_eq!(dom.idom(x), Some(a));
        assert_eq!(dom.idom(u), None);

        let recon = reconvergent_sources(&net);
        assert!(recon[a.index()], "a fans out to s and t which reconverge");
        assert!(!recon[s.index()]);
        assert!(!recon[t.index()]);
        assert!(!recon[u.index()]);
        assert!(!recon[x.index()]);
    }

    #[test]
    fn multiple_outputs_leave_only_the_sink_in_common() {
        let mut net = Network::new("fork");
        let x = net.add_pi("x");
        let a = net.add_node("a", vec![x], buf(0, 1));
        let p = net.add_node("p", vec![a], buf(0, 1));
        let q = net.add_node("q", vec![a], buf(0, 1));
        net.add_po("p", p);
        net.add_po("q", q);
        let dom = OutputDominators::compute(&net);
        // a's two branches never meet again: no internal dominator.
        assert_eq!(dom.idom(a), None);
        assert!(dom.reaches_output(a));
        // The fork is not reconvergent: the branches end in distinct POs.
        assert!(!reconvergent_sources(&net)[a.index()]);
    }

    #[test]
    fn dead_logic_reaches_nothing() {
        let mut net = Network::new("dead");
        let x = net.add_pi("x");
        let live = net.add_node("live", vec![x], buf(0, 1));
        let dead = net.add_node("dead", vec![x], buf(0, 1));
        net.add_po("out", live);
        let dom = OutputDominators::compute(&net);
        assert!(!dom.reaches_output(dead));
        assert_eq!(dom.idom(dead), None);
        assert!(dom.reaches_output(x), "x feeds the live node");
    }

    #[test]
    fn po_driver_with_internal_fanout_has_no_dominator() {
        // a drives a PO directly *and* feeds b (also a PO): nothing
        // downstream can dominate a.
        let mut net = Network::new("mixed");
        let x = net.add_pi("x");
        let a = net.add_node("a", vec![x], buf(0, 1));
        let b = net.add_node("b", vec![a], buf(0, 1));
        net.add_po("a", a);
        net.add_po("b", b);
        let dom = OutputDominators::compute(&net);
        assert_eq!(dom.idom(a), None);
        assert!(dom.reaches_output(a));
    }

    #[test]
    fn tfo_cone_is_topological_and_exact() {
        let (net, [x, a, s, t, u]) = diamond_net();
        let cone = tfo_cone(&net, a);
        assert_eq!(cone.len(), 4);
        assert_eq!(cone[0], a);
        assert_eq!(*cone.last().unwrap(), u);
        assert!(cone.contains(&s) && cone.contains(&t));
        assert!(!cone.contains(&x));
        // Cone of the whole-net source includes everything.
        assert_eq!(tfo_cone(&net, x).len(), 5);
    }
}
