use crate::{NetworkError, Node, NodeId, NodeKind};
use als_logic::factor::factor_cover;
use als_logic::isop::isop_exact;
use als_logic::{Cover, Expr, TruthTable};
use std::collections::HashMap;

/// A multi-level combinational Boolean network.
///
/// Nodes live in an arena addressed by [`NodeId`]; removing a node leaves a
/// tombstone so ids stay stable. Primary outputs are named references to
/// driver nodes. See the [crate-level documentation](crate) for an example.
#[derive(Clone, Debug)]
pub struct Network {
    name: String,
    nodes: Vec<Option<Node>>,
    pis: Vec<NodeId>,
    pos: Vec<(String, NodeId)>,
}

/// Summary statistics of a network, as reported in the paper's Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct NetworkStats {
    /// Number of primary inputs.
    pub num_pis: usize,
    /// Number of primary outputs.
    pub num_pos: usize,
    /// Number of live internal nodes.
    pub num_nodes: usize,
    /// Total factored-form literal count (technology-independent area).
    pub literals: usize,
    /// Logic depth (levels of internal nodes on the longest PI→PO path).
    pub depth: usize,
}

impl Network {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            nodes: Vec::new(),
            pis: Vec::new(),
            pos: Vec::new(),
        }
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node arena overflow")); // lint:allow(panic): size bounded far below the overflow point
        self.nodes.push(Some(node));
        id
    }

    /// Adds a primary input and returns its id.
    pub fn add_pi(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.alloc(Node {
            name: name.into(),
            kind: NodeKind::Pi,
            fanins: Vec::new(),
            cover: Cover::new(0),
            expr: Expr::FALSE,
        });
        self.pis.push(id);
        id
    }

    /// Adds an internal node computing `cover` over `fanins`; the factored
    /// form is derived by algebraic factoring.
    ///
    /// # Panics
    ///
    /// Panics if the cover's variable count differs from the fanin count, a
    /// fanin id is invalid, or a fanin repeats.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        fanins: Vec<NodeId>,
        cover: Cover,
    ) -> NodeId {
        let expr = factor_cover(&cover);
        self.add_node_with_expr(name, fanins, cover, expr)
    }

    /// Adds an internal node with both representations supplied.
    ///
    /// # Panics
    ///
    /// Panics if the representations disagree in variable count with the
    /// fanin list, a fanin id is invalid, or a fanin repeats. Functional
    /// agreement between `cover` and `expr` is checked in debug builds.
    pub fn add_node_with_expr(
        &mut self,
        name: impl Into<String>,
        fanins: Vec<NodeId>,
        cover: Cover,
        expr: Expr,
    ) -> NodeId {
        assert_eq!(
            cover.num_vars(),
            fanins.len(),
            "cover variable count must match fanin count"
        );
        for (i, &f) in fanins.iter().enumerate() {
            assert!(self.is_live(f), "fanin {f} is not a live node");
            assert!(!fanins[..i].contains(&f), "fanin {f} repeats");
        }
        debug_assert_eq!(
            expr.to_truth_table(fanins.len()),
            cover.to_truth_table(),
            "cover and factored form must agree"
        );
        self.alloc(Node {
            name: name.into(),
            kind: NodeKind::Internal,
            fanins,
            cover,
            expr,
        })
    }

    /// Adds an internal node computing a constant.
    pub fn add_constant(&mut self, name: impl Into<String>, value: bool) -> NodeId {
        let cover = if value {
            Cover::constant_one(0)
        } else {
            Cover::constant_zero(0)
        };
        self.alloc(Node {
            name: name.into(),
            kind: NodeKind::Internal,
            fanins: Vec::new(),
            cover,
            expr: Expr::Const(value),
        })
    }

    /// Declares a primary output `name` driven by `driver`.
    ///
    /// # Panics
    ///
    /// Panics if `driver` is not a live node.
    pub fn add_po(&mut self, name: impl Into<String>, driver: NodeId) {
        assert!(self.is_live(driver), "po driver {driver} is not live");
        self.pos.push((name.into(), driver));
    }

    /// Whether `id` refers to a live (not removed) node.
    pub fn is_live(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).is_some_and(Option::is_some)
    }

    /// The node behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is invalid; use [`Network::try_node`] for a fallible
    /// variant.
    pub fn node(&self, id: NodeId) -> &Node {
        self.try_node(id).expect("invalid node id") // lint:allow(panic): documented panic contract; the `try_` twin is the fallible entry
    }

    /// The node behind `id`, if live.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidNode`] for removed or unknown ids.
    pub fn try_node(&self, id: NodeId) -> Result<&Node, NetworkError> {
        self.nodes
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(NetworkError::InvalidNode { node: id })
    }

    /// Iterates over all live node ids in arena order (PIs included).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|_| NodeId(i as u32))) // lint:allow(as-cast): arena size < 2^32 (NodeId is u32)
    }

    /// Iterates over live internal (non-PI) node ids in arena order.
    pub fn internal_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().enumerate().filter_map(|(i, n)| {
            n.as_ref()
                .filter(|n| n.kind == NodeKind::Internal)
                .map(|_| NodeId(i as u32)) // lint:allow(as-cast): arena size < 2^32 (NodeId is u32)
        })
    }

    /// The primary inputs in declaration order.
    pub fn pis(&self) -> &[NodeId] {
        &self.pis
    }

    /// The primary outputs as `(name, driver)` pairs in declaration order.
    pub fn pos(&self) -> &[(String, NodeId)] {
        &self.pos
    }

    /// Number of primary inputs.
    pub fn num_pis(&self) -> usize {
        self.pis.len()
    }

    /// Number of primary outputs.
    pub fn num_pos(&self) -> usize {
        self.pos.len()
    }

    /// Number of live internal nodes.
    pub fn num_internal(&self) -> usize {
        self.internal_ids().count()
    }

    /// Redirects primary output `index` to a new driver.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or the driver is not live.
    pub fn set_po_driver(&mut self, index: usize, driver: NodeId) {
        assert!(self.is_live(driver), "po driver {driver} is not live");
        self.pos[index].1 = driver;
    }

    /// Total factored-form literal count over all internal nodes — the
    /// technology-independent area metric of the paper.
    pub fn literal_count(&self) -> usize {
        self.node_ids()
            .map(|id| self.node(id).literal_count())
            .sum()
    }

    /// Replaces the factored-form expression of `id`, recomputing the SOP
    /// form and pruning fanins the new expression no longer mentions.
    ///
    /// This is the operation at the heart of the ALS algorithms: an ASE
    /// replaces the original factored form, and the node shrinks.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live internal node or `expr` mentions a
    /// variable outside the current fanin list.
    // Takes the expression by value deliberately: it conceptually becomes
    // the node's function, and every caller hands one off.
    #[allow(clippy::needless_pass_by_value)]
    pub fn replace_expr(&mut self, id: NodeId, expr: Expr) {
        let node = self.node(id);
        assert_eq!(node.kind, NodeKind::Internal, "cannot rewrite a PI");
        let old_fanins = node.fanins.clone();
        let support = expr.support_mask();
        assert!(
            old_fanins.len() >= 64 || support >> old_fanins.len() == 0,
            "expression mentions variables outside the fanin list"
        );
        // Keep only mentioned fanins; remap variables to the packed order.
        let mut map = vec![usize::MAX; old_fanins.len()];
        let mut new_fanins = Vec::new();
        for (i, &f) in old_fanins.iter().enumerate() {
            if support >> i & 1 == 1 {
                map[i] = new_fanins.len();
                new_fanins.push(f);
            }
        }
        let packed = expr.remap(&map);
        let cover = packed.to_cover(new_fanins.len());
        let node = self.nodes[id.index()].as_mut().expect("checked live"); // lint:allow(panic): internal invariant; the message states it
        node.fanins = new_fanins;
        node.cover = cover;
        node.expr = packed;
    }

    /// Replaces node `id` with a constant function (the `n = 0` / `n = 1`
    /// ASEs of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live internal node.
    pub fn replace_with_constant(&mut self, id: NodeId, value: bool) {
        let node = self.nodes[id.index()].as_mut().expect("invalid node id"); // lint:allow(panic): internal invariant; the message states it
        assert_eq!(node.kind, NodeKind::Internal, "cannot rewrite a PI");
        node.fanins.clear();
        node.cover = if value {
            Cover::constant_one(0)
        } else {
            Cover::constant_zero(0)
        };
        node.expr = Expr::Const(value);
    }

    /// Computes, for every node, the list of nodes that use it as a fanin.
    /// Indexed by arena position; tombstones yield empty lists.
    pub fn fanouts(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for id in self.node_ids() {
            for &f in &self.node(id).fanins {
                out[f.index()].push(id);
            }
        }
        out
    }

    /// A topological order over all live nodes (PIs first, then internal
    /// nodes, fanins always before fanouts).
    ///
    /// # Panics
    ///
    /// Panics if the network contains a combinational cycle (construction
    /// normally prevents this; [`Network::check`] reports it as an error).
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut state = vec![0u8; self.nodes.len()]; // 0 unseen, 1 active, 2 done
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        for root in self.node_ids() {
            if state[root.index()] == 2 {
                continue;
            }
            stack.push((root, 0));
            state[root.index()] = 1;
            while let Some(&mut (id, ref mut next)) = stack.last_mut() {
                let fanins = &self.node(id).fanins;
                if *next < fanins.len() {
                    let f = fanins[*next];
                    *next += 1;
                    match state[f.index()] {
                        0 => {
                            state[f.index()] = 1;
                            stack.push((f, 0));
                        }
                        1 => panic!("combinational cycle through {f}"), // lint:allow(panic): documented panic contract
                        _ => {}
                    }
                } else {
                    state[id.index()] = 2;
                    order.push(id);
                    stack.pop();
                }
            }
        }
        order
    }

    /// The transitive fanin cone of `id` (including `id` itself), as a
    /// membership bitmap indexed by arena position.
    pub fn tfi_mask(&self, id: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n.index()], true) {
                continue;
            }
            stack.extend(self.node(n).fanins.iter().copied());
        }
        seen
    }

    /// The transitive fanout cone of `id` (including `id` itself), as a
    /// membership bitmap indexed by arena position.
    pub fn tfo_mask(&self, id: NodeId) -> Vec<bool> {
        let fanouts = self.fanouts();
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n.index()], true) {
                continue;
            }
            stack.extend(fanouts[n.index()].iter().copied());
        }
        seen
    }

    /// The set of primary-input positions (indices into [`Network::pis`])
    /// that `id` transitively depends on, as a bitmap.
    pub fn pi_support(&self, id: NodeId) -> Vec<bool> {
        let tfi = self.tfi_mask(id);
        self.pis.iter().map(|p| tfi[p.index()]).collect()
    }

    /// Logic level of every node (PIs and constants at level 0), indexed by
    /// arena position.
    pub fn levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.nodes.len()];
        for id in self.topo_order() {
            let node = self.node(id);
            if node.kind == NodeKind::Internal && !node.fanins.is_empty() {
                level[id.index()] = 1 + node
                    .fanins
                    .iter()
                    .map(|f| level[f.index()])
                    .max()
                    .expect("non-empty fanins"); // lint:allow(panic): internal invariant; the message states it
            }
        }
        level
    }

    /// The logic depth: the maximum level over PO drivers.
    pub fn depth(&self) -> usize {
        let levels = self.levels();
        self.pos
            .iter()
            .map(|(_, d)| levels[d.index()])
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the network on one PI assignment, returning PO values in
    /// declaration order. Intended for tests and small examples; use
    /// `als-sim` for bulk simulation.
    ///
    /// # Panics
    ///
    /// Panics if `pi_values.len() != num_pis()`.
    pub fn eval(&self, pi_values: &[bool]) -> Vec<bool> {
        assert_eq!(pi_values.len(), self.num_pis(), "pi value count mismatch");
        let mut value = vec![false; self.nodes.len()];
        for (pi, &v) in self.pis.iter().zip(pi_values) {
            value[pi.index()] = v;
        }
        for id in self.topo_order() {
            let node = self.node(id);
            if node.kind == NodeKind::Internal {
                let mut assignment = 0u64;
                for (i, &f) in node.fanins.iter().enumerate() {
                    if value[f.index()] {
                        assignment |= 1 << i;
                    }
                }
                value[id.index()] = node.expr.eval(assignment);
            }
        }
        self.pos.iter().map(|(_, d)| value[d.index()]).collect()
    }

    /// Redirects every use of `old` (fanin references and PO drivers) to
    /// `new`, then removes `old`. Duplicate fanins introduced by the
    /// substitution are merged functionally.
    ///
    /// Used by the redundancy-removal pre-process and by SASIMI-style
    /// substitution.
    ///
    /// # Panics
    ///
    /// Panics if either id is not live, if `old` is a PI, or if `new` lies in
    /// the transitive fanout of `old` (which would create a cycle).
    pub fn substitute(&mut self, old: NodeId, new: NodeId) {
        assert!(self.is_live(old) && self.is_live(new), "ids must be live");
        assert!(old != new, "substituting a node with itself");
        assert_eq!(
            self.node(old).kind,
            NodeKind::Internal,
            "cannot remove a PI"
        );
        let tfo = self.tfo_mask(old);
        assert!(!tfo[new.index()], "substitution would create a cycle");

        let users: Vec<NodeId> = self.fanouts()[old.index()].clone();
        for user in users {
            let node = self.node(user);
            let old_fanins = node.fanins.clone();
            let tt = node.cover.to_truth_table();
            // Build the new fanin list with `old` replaced and duplicates
            // merged, then recompute the function over the deduplicated list.
            let mut new_fanins: Vec<NodeId> = Vec::with_capacity(old_fanins.len());
            for &f in &old_fanins {
                let target = if f == old { new } else { f };
                if !new_fanins.contains(&target) {
                    new_fanins.push(target);
                }
            }
            let map: Vec<usize> = old_fanins
                .iter()
                .map(|&f| {
                    let target = if f == old { new } else { f };
                    new_fanins
                        .iter()
                        .position(|&g| g == target)
                        .expect("target inserted above") // lint:allow(panic): internal invariant; the message states it
                })
                .collect();
            let new_tt = tt
                .remap_merge(new_fanins.len(), &map)
                .expect("fanin count within bounds"); // lint:allow(panic): internal invariant; the message states it
            let cover = isop_exact(&new_tt);
            let expr = factor_cover(&cover);
            let n = self.nodes[user.index()].as_mut().expect("live user"); // lint:allow(panic): internal invariant; the message states it
            n.fanins = new_fanins;
            n.cover = cover;
            n.expr = expr;
        }
        for po in &mut self.pos {
            if po.1 == old {
                po.1 = new;
            }
        }
        self.nodes[old.index()] = None;
    }

    /// Removes internal nodes with no path to any primary output. Returns
    /// the number of removed nodes. PIs are never removed.
    pub fn sweep(&mut self) -> usize {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.pos.iter().map(|(_, d)| *d).collect();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut live[id.index()], true) {
                continue;
            }
            stack.extend(self.node(id).fanins.iter().copied());
        }
        let mut removed = 0;
        for (i, slot) in self.nodes.iter_mut().enumerate() {
            if let Some(node) = slot {
                if node.kind == NodeKind::Internal && !live[i] {
                    *slot = None;
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Propagates constant nodes into their fanouts (cofactoring the fanout
    /// functions) until a fixpoint, then sweeps. Returns the number of nodes
    /// removed.
    ///
    /// Constant nodes that still drive a PO are kept.
    pub fn propagate_constants(&mut self) -> usize {
        loop {
            let mut changed = false;
            let const_nodes: Vec<(NodeId, bool)> = self
                .internal_ids()
                .filter_map(|id| self.node(id).expr.as_constant().map(|v| (id, v)))
                .collect();
            for (cid, value) in const_nodes {
                let users: Vec<NodeId> = self.fanouts()[cid.index()].clone();
                for user in users {
                    let node = self.node(user);
                    let var = node
                        .fanins
                        .iter()
                        .position(|&f| f == cid)
                        .expect("fanout bookkeeping"); // lint:allow(panic): internal invariant; the message states it
                    let new_expr = {
                        let cof = node.cover.cofactor(var, value);
                        factor_cover(&cof)
                    };
                    self.replace_expr(user, new_expr);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.sweep()
    }

    /// Verifies structural invariants: fanins are live, acyclic, function
    /// arities match fanin counts, PO drivers are live, and no fanin repeats.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::Inconsistent`] describing the first violation
    /// found.
    pub fn check(&self) -> Result<(), NetworkError> {
        for id in self.node_ids() {
            let node = self.node(id);
            if node.kind == NodeKind::Internal {
                if node.cover.num_vars() != node.fanins.len() {
                    return Err(NetworkError::Inconsistent {
                        message: format!("{id}: cover arity != fanin count"),
                    });
                }
                if node.expr.support_mask() >> node.fanins.len().min(63) != 0
                    && node.fanins.len() < 64
                {
                    return Err(NetworkError::Inconsistent {
                        message: format!("{id}: expr mentions unknown fanin"),
                    });
                }
            }
            for (i, &f) in node.fanins.iter().enumerate() {
                if !self.is_live(f) {
                    return Err(NetworkError::Inconsistent {
                        message: format!("{id}: dead fanin {f}"),
                    });
                }
                if node.fanins[..i].contains(&f) {
                    return Err(NetworkError::Inconsistent {
                        message: format!("{id}: repeated fanin {f}"),
                    });
                }
            }
        }
        for (name, d) in &self.pos {
            if !self.is_live(*d) {
                return Err(NetworkError::Inconsistent {
                    message: format!("po `{name}`: dead driver {d}"),
                });
            }
        }
        // Acyclicity: topo_order panics on cycles; detect gently instead.
        let mut indegree: HashMap<NodeId, usize> = HashMap::new();
        let mut order_count = 0usize;
        let fanouts = self.fanouts();
        let mut queue: Vec<NodeId> = Vec::new();
        for id in self.node_ids() {
            let d = self.node(id).fanins.len();
            indegree.insert(id, d);
            if d == 0 {
                queue.push(id);
            }
        }
        while let Some(id) = queue.pop() {
            order_count += 1;
            for &u in &fanouts[id.index()] {
                let e = indegree.get_mut(&u).expect("live user"); // lint:allow(panic): internal invariant; the message states it
                *e -= 1;
                if *e == 0 {
                    queue.push(u);
                }
            }
        }
        if order_count != self.node_ids().count() {
            return Err(NetworkError::Inconsistent {
                message: "combinational cycle".into(),
            });
        }
        Ok(())
    }

    pub(crate) fn nodes_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id.index()].as_mut().expect("invalid node id") // lint:allow(panic): internal invariant; the message states it
    }

    /// Summary statistics (PIs, POs, nodes, literals, depth).
    pub fn stats(&self) -> NetworkStats {
        NetworkStats {
            num_pis: self.num_pis(),
            num_pos: self.num_pos(),
            num_nodes: self.num_internal(),
            literals: self.literal_count(),
            depth: self.depth(),
        }
    }

    /// Computes the global function of every PO as a truth table over the
    /// PIs. Only usable for networks with at most
    /// [`MAX_VARS`](als_logic::MAX_VARS) primary inputs; intended for
    /// verification in tests.
    ///
    /// # Panics
    ///
    /// Panics if the network has more PIs than `MAX_VARS`.
    pub fn global_functions(&self) -> Vec<TruthTable> {
        let n = self.num_pis();
        let mut tables: Vec<Option<TruthTable>> = vec![None; self.nodes.len()];
        for (i, &pi) in self.pis.iter().enumerate() {
            tables[pi.index()] = Some(TruthTable::var(n, i).expect("PI count within MAX_VARS"));
            // lint:allow(panic): variable count validated by the caller
        }
        for id in self.topo_order() {
            let node = self.node(id);
            if node.kind != NodeKind::Internal {
                continue;
            }
            let mut acc = TruthTable::zero(n).expect("PI count within MAX_VARS"); // lint:allow(panic): variable count validated by the caller
            for cube in node.cover.cubes() {
                let mut term = TruthTable::one(n).expect("PI count within MAX_VARS"); // lint:allow(panic): variable count validated by the caller
                for (var, phase) in cube.literals() {
                    let fanin_tt = tables[node.fanins[var].index()]
                        .as_ref()
                        .expect("topological order"); // lint:allow(panic): internal invariant; the message states it
                    term = if phase {
                        &term & fanin_tt
                    } else {
                        &term & &!fanin_tt
                    };
                }
                acc = &acc | &term;
            }
            tables[id.index()] = Some(acc);
        }
        self.pos
            .iter()
            .map(|(_, d)| tables[d.index()].clone().expect("driver computed")) // lint:allow(panic): internal invariant; the message states it
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::Cube;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    /// The running example of the paper's Fig. 1:
    /// n1 = i1·i2, n2 = n1·i3, f = i0·n2 + i0'·n1 (a network with the same
    /// blocking structure: errors at n2 propagate only when i0 = 1).
    fn fig1_like() -> (Network, [NodeId; 6]) {
        let mut net = Network::new("fig1");
        let i0 = net.add_pi("i0");
        let i1 = net.add_pi("i1");
        let i2 = net.add_pi("i2");
        let i3 = net.add_pi("i3");
        let n1 = net.add_node(
            "n1",
            vec![i1, i2],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let n2 = net.add_node(
            "n2",
            vec![n1, i3],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let f = net.add_node(
            "f",
            vec![i0, n2, n1],
            Cover::from_cubes(
                3,
                [
                    cube(&[(0, true), (1, true)]),
                    cube(&[(0, false), (2, true)]),
                ],
            ),
        );
        net.add_po("f", f);
        (net, [i0, i1, i2, i3, n1, n2])
    }

    #[test]
    fn build_and_eval() {
        let (net, _) = fig1_like();
        assert_eq!(net.num_pis(), 4);
        assert_eq!(net.num_internal(), 3);
        // i0=1, i1=i2=i3=1 → n1=1, n2=1, f=1
        assert_eq!(net.eval(&[true, true, true, true]), vec![true]);
        // i0=0, i1=i2=1 → f = n1 = 1
        assert_eq!(net.eval(&[false, true, true, false]), vec![true]);
        // all 0 → 0
        assert_eq!(net.eval(&[false, false, false, false]), vec![false]);
        net.check().unwrap();
    }

    #[test]
    fn literal_count_sums_factored_forms() {
        let (net, _) = fig1_like();
        // n1: 2, n2: 2, f: 4
        assert_eq!(net.literal_count(), 8);
    }

    #[test]
    fn topo_order_respects_edges() {
        let (net, _) = fig1_like();
        let order = net.topo_order();
        let pos_of = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        for id in net.node_ids() {
            for &f in net.node(id).fanins() {
                assert!(pos_of(f) < pos_of(id));
            }
        }
        assert_eq!(order.len(), 7);
    }

    #[test]
    fn levels_and_depth() {
        let (net, ids) = fig1_like();
        let levels = net.levels();
        assert_eq!(levels[ids[0].index()], 0); // PI
        assert_eq!(levels[ids[4].index()], 1); // n1
        assert_eq!(levels[ids[5].index()], 2); // n2
        assert_eq!(net.depth(), 3); // f
    }

    #[test]
    fn tfi_tfo_cones() {
        let (net, ids) = fig1_like();
        let [i0, i1, _i2, i3, n1, n2] = ids;
        let tfi = net.tfi_mask(n2);
        assert!(tfi[n2.index()] && tfi[n1.index()] && tfi[i1.index()] && tfi[i3.index()]);
        assert!(!tfi[i0.index()]);
        let tfo = net.tfo_mask(n1);
        assert!(tfo[n1.index()] && tfo[n2.index()]);
        assert!(!tfo[i3.index()]);
    }

    #[test]
    fn pi_support() {
        let (net, ids) = fig1_like();
        let n2 = ids[5];
        assert_eq!(net.pi_support(n2), vec![false, true, true, true]);
    }

    #[test]
    fn replace_expr_prunes_fanins() {
        let (mut net, ids) = fig1_like();
        let n2 = ids[5];
        // n2 = n1·i3 → drop the i3 literal: n2 = n1.
        let new = Expr::lit(0, true);
        net.replace_expr(n2, new);
        assert_eq!(net.node(n2).fanins().len(), 1);
        assert_eq!(net.node(n2).literal_count(), 1);
        net.check().unwrap();
        // Function now ignores i3.
        assert_eq!(
            net.eval(&[true, true, true, false]),
            net.eval(&[true, true, true, true])
        );
    }

    #[test]
    fn replace_with_constant_and_propagate() {
        let (mut net, ids) = fig1_like();
        let n2 = ids[5];
        net.replace_with_constant(n2, false);
        assert!(net.node(n2).is_constant());
        // f = i0·0 + i0'·n1 = i0'·n1
        assert_eq!(net.eval(&[true, true, true, true]), vec![false]);
        assert_eq!(net.eval(&[false, true, true, true]), vec![true]);
        let removed = net.propagate_constants();
        assert!(removed >= 1, "constant node should be removed");
        net.check().unwrap();
        assert_eq!(net.eval(&[false, true, true, true]), vec![true]);
        assert_eq!(net.eval(&[true, true, true, true]), vec![false]);
    }

    #[test]
    fn sweep_removes_dangling() {
        let (mut net, _) = fig1_like();
        let a = net.pis()[0];
        let dangling = net.add_node(
            "dangling",
            vec![a],
            Cover::from_cubes(1, [cube(&[(0, false)])]),
        );
        assert!(net.is_live(dangling));
        let removed = net.sweep();
        assert_eq!(removed, 1);
        assert!(!net.is_live(dangling));
        net.check().unwrap();
    }

    #[test]
    fn substitute_redirects_and_merges() {
        let mut net = Network::new("sub");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let g1 = net.add_node(
            "g1",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let g2 = net.add_node(
            "g2",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        // h = g1 + g2 (duplicate logic).
        let h = net.add_node(
            "h",
            vec![g1, g2],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
        );
        net.add_po("h", h);
        net.substitute(g2, g1);
        assert!(!net.is_live(g2));
        net.check().unwrap();
        // h = g1 + g1 = g1 = ab
        assert_eq!(net.node(h).fanins(), &[g1]);
        assert_eq!(net.eval(&[true, true]), vec![true]);
        assert_eq!(net.eval(&[true, false]), vec![false]);
    }

    #[test]
    fn substitute_po_driver() {
        let mut net = Network::new("sub_po");
        let a = net.add_pi("a");
        let g1 = net.add_node("g1", vec![a], Cover::from_cubes(1, [cube(&[(0, true)])]));
        let g2 = net.add_node("g2", vec![a], Cover::from_cubes(1, [cube(&[(0, true)])]));
        net.add_po("f", g2);
        net.substitute(g2, g1);
        assert_eq!(net.pos()[0].1, g1);
        assert_eq!(net.eval(&[true]), vec![true]);
    }

    #[test]
    fn global_functions_match_eval() {
        let (net, _) = fig1_like();
        let tts = net.global_functions();
        assert_eq!(tts.len(), 1);
        for m in 0..16u64 {
            let pis: Vec<bool> = (0..4).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(tts[0].get(m), net.eval(&pis)[0], "minterm {m}");
        }
    }

    #[test]
    fn stats_snapshot() {
        let (net, _) = fig1_like();
        let s = net.stats();
        assert_eq!(
            s,
            NetworkStats {
                num_pis: 4,
                num_pos: 1,
                num_nodes: 3,
                literals: 8,
                depth: 3
            }
        );
    }

    #[test]
    #[should_panic(expected = "fanin")]
    fn repeated_fanin_panics() {
        let mut net = Network::new("bad");
        let a = net.add_pi("a");
        let _ = net.add_node(
            "g",
            vec![a, a],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
    }

    #[test]
    fn try_node_reports_invalid() {
        let net = Network::new("empty");
        assert!(matches!(
            net.try_node(NodeId(4)),
            Err(NetworkError::InvalidNode { .. })
        ));
    }
}
