//! Multi-level Boolean-network substrate for the ALS stack.
//!
//! A [`Network`] is a DAG of nodes in the MIS/SIS style: every internal node
//! carries its local function both as an SOP [`Cover`](als_logic::Cover) and
//! as a factored-form [`Expr`](als_logic::Expr) over its immediate fanins.
//! The factored-form literal count is the technology-independent area
//! estimate the DAC'16 paper optimizes.
//!
//! The crate provides:
//!
//! * node/arena management with fanin/fanout bookkeeping ([`Network`]);
//! * topological traversal, transitive fanin/fanout cones, logic levels;
//! * functional evaluation (for tests; bulk simulation lives in `als-sim`);
//! * structural clean-up: [`Network::sweep`], constant propagation,
//!   node substitution;
//! * BLIF import/export ([`blif`]);
//! * consistency checking ([`Network::check`]);
//! * structural analyses for static reasoning: output-dominator trees,
//!   reconvergent-fanout detection, TFO-cone extraction ([`structure`]).
//!
//! # Example
//!
//! ```
//! use als_network::Network;
//! use als_logic::{Cover, Cube};
//!
//! let mut net = Network::new("half_adder");
//! let a = net.add_pi("a");
//! let b = net.add_pi("b");
//! // sum = a ⊕ b
//! let sum = net.add_node(
//!     "sum",
//!     vec![a, b],
//!     Cover::from_cubes(2, [
//!         Cube::from_literals(&[(0, true), (1, false)])?,
//!         Cube::from_literals(&[(0, false), (1, true)])?,
//!     ]),
//! );
//! // carry = a·b
//! let carry = net.add_node(
//!     "carry",
//!     vec![a, b],
//!     Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)])?]),
//! );
//! net.add_po("sum", sum);
//! net.add_po("carry", carry);
//! assert_eq!(net.eval(&[true, true]), vec![false, true]);
//! assert_eq!(net.literal_count(), 6);
//! # Ok::<(), als_logic::LogicError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

mod error;
mod network;
mod node;
mod ops;

pub mod blif;
pub mod dot;
pub mod structure;
#[doc(hidden)]
pub mod testing;

pub use error::NetworkError;
pub use network::{Network, NetworkStats};
pub use node::{Node, NodeId, NodeKind};
