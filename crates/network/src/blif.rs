//! BLIF (Berkeley Logic Interchange Format) import and export.
//!
//! The supported subset is the combinational core used by SIS/MVSIS/ABC:
//! `.model`, `.inputs`, `.outputs`, `.names` (single-output covers with
//! `0/1/-` input plane and `0`/`1` output plane) and `.end`. Latches and
//! subcircuits are rejected.

use crate::{Network, NetworkError, NodeId};
use als_logic::{Cover, Cube};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Parses a network from BLIF text.
///
/// `.names` blocks whose output plane is `0` define the complement: the
/// parsed cover is complemented before insertion, as SIS does.
///
/// # Errors
///
/// Returns [`NetworkError::ParseBlif`] on malformed input — including a
/// signal defined by more than one `.names` block (or shadowing an input),
/// a repeated `.names` fanin, and a truncated file with no `.end` — and
/// [`NetworkError::UndefinedSignal`] if a referenced signal has no driver.
///
/// # Example
///
/// ```
/// use als_network::blif;
///
/// let text = "\
/// .model and2
/// .inputs a b
/// .outputs y
/// .names a b y
/// 11 1
/// .end
/// ";
/// let net = blif::parse(text)?;
/// assert_eq!(net.eval(&[true, true]), vec![true]);
/// assert_eq!(net.eval(&[true, false]), vec![false]);
/// # Ok::<(), als_network::NetworkError>(())
/// ```
pub fn parse(text: &str) -> Result<Network, NetworkError> {
    // (line, output name, input names, cube lines)
    struct NamesBlock {
        line: usize,
        output: String,
        inputs: Vec<String>,
        cubes: Vec<String>,
    }

    // First pass: join continuation lines and strip comments.
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0usize;
    for (ln, raw) in text.lines().enumerate() {
        let no_comment = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        };
        let trimmed = no_comment.trim_end();
        if pending.is_empty() {
            pending_line = ln + 1;
        }
        if let Some(stripped) = trimmed.strip_suffix('\\') {
            pending.push_str(stripped);
            pending.push(' ');
            continue;
        }
        pending.push_str(trimmed);
        let line = std::mem::take(&mut pending);
        if !line.trim().is_empty() {
            lines.push((pending_line, line));
        }
    }

    let mut model_name = String::from("unnamed");
    let mut saw_end = false;
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut blocks: Vec<NamesBlock> = Vec::new();

    let mut i = 0;
    while i < lines.len() {
        let (ln, line) = &lines[i];
        let mut toks = line.split_whitespace();
        let head = toks.next().expect("blank lines were filtered"); // lint:allow(panic): internal invariant; the message states it
        match head {
            ".model" => {
                if let Some(n) = toks.next() {
                    model_name = n.to_string();
                }
            }
            ".inputs" => inputs.extend(toks.map(str::to_string)),
            ".outputs" => outputs.extend(toks.map(str::to_string)),
            ".names" => {
                let mut names: Vec<String> = toks.map(str::to_string).collect();
                let output = names.pop().ok_or_else(|| NetworkError::ParseBlif {
                    line: *ln,
                    message: ".names needs at least an output".into(),
                })?;
                let mut cubes = Vec::new();
                while i + 1 < lines.len() && !lines[i + 1].1.trim_start().starts_with('.') {
                    i += 1;
                    cubes.push(lines[i].1.trim().to_string());
                }
                blocks.push(NamesBlock {
                    line: *ln,
                    output,
                    inputs: names,
                    cubes,
                });
            }
            ".end" => {
                saw_end = true;
                break;
            }
            ".latch" | ".subckt" | ".gate" => {
                return Err(NetworkError::ParseBlif {
                    line: *ln,
                    message: format!("unsupported construct `{head}` (combinational BLIF only)"),
                })
            }
            other => {
                return Err(NetworkError::ParseBlif {
                    line: *ln,
                    message: format!("unknown directive `{other}`"),
                })
            }
        }
        i += 1;
    }
    if !saw_end {
        // A missing `.end` is the signature of a truncated file; accepting
        // it silently would hand half a circuit to the synthesis flow.
        return Err(NetworkError::ParseBlif {
            line: lines.last().map_or(1, |(ln, _)| *ln),
            message: "missing `.end` (truncated file?)".into(),
        });
    }

    let mut net = Network::new(model_name);
    let mut by_name: HashMap<String, NodeId> = HashMap::new();
    for name in &inputs {
        if by_name.contains_key(name) {
            return Err(NetworkError::ParseBlif {
                line: 1,
                message: format!("input `{name}` declared more than once"),
            });
        }
        let id = net.add_pi(name.clone());
        by_name.insert(name.clone(), id);
    }
    let mut defined: std::collections::HashSet<&str> = HashSet::new();
    for block in &blocks {
        if by_name.contains_key(&block.output) {
            return Err(NetworkError::ParseBlif {
                line: block.line,
                message: format!("`.names` redefines input `{}`", block.output),
            });
        }
        if !defined.insert(&block.output) {
            return Err(NetworkError::ParseBlif {
                line: block.line,
                message: format!(
                    "signal `{}` defined by more than one `.names`",
                    block.output
                ),
            });
        }
    }

    // Insert blocks in dependency order (repeatedly adding ready blocks).
    let mut remaining: Vec<NamesBlock> = blocks;
    while !remaining.is_empty() {
        let before = remaining.len();
        let mut next_round = Vec::new();
        for block in remaining {
            if block.inputs.iter().all(|n| by_name.contains_key(n)) {
                let id = insert_block(
                    &mut net,
                    &by_name,
                    block.line,
                    &block.output,
                    &block.inputs,
                    &block.cubes,
                )?;
                by_name.insert(block.output.clone(), id);
            } else {
                next_round.push(block);
            }
        }
        remaining = next_round;
        if remaining.len() == before {
            let name = remaining[0]
                .inputs
                .iter()
                .find(|n| !by_name.contains_key(*n))
                .expect("a missing input exists") // lint:allow(panic): internal invariant; the message states it
                .clone();
            // Distinguish a genuine undefined signal from a combinational
            // loop: in a loop the "missing" signal is defined, just stuck
            // behind its own transitive dependency on the current block.
            if remaining.iter().any(|b| b.output == name) {
                return Err(NetworkError::ParseBlif {
                    line: remaining[0].line,
                    message: format!("combinational loop through signal `{name}`"),
                });
            }
            return Err(NetworkError::UndefinedSignal { name });
        }
    }

    for out in &outputs {
        let id = *by_name
            .get(out)
            .ok_or_else(|| NetworkError::UndefinedSignal { name: out.clone() })?;
        net.add_po(out.clone(), id);
    }
    Ok(net)
}

fn insert_block(
    net: &mut Network,
    by_name: &HashMap<String, NodeId>,
    line: usize,
    output: &str,
    input_names: &[String],
    cube_lines: &[String],
) -> Result<NodeId, NetworkError> {
    for (i, name) in input_names.iter().enumerate() {
        if input_names[..i].contains(name) {
            // `Network::add_node` treats a repeated fanin as a programming
            // error and panics; for file input it must be a parse error.
            return Err(NetworkError::ParseBlif {
                line,
                message: format!("input `{name}` repeats in one `.names` block"),
            });
        }
    }
    let fanins: Vec<NodeId> = input_names.iter().map(|n| by_name[n]).collect();
    let nv = fanins.len();
    let mut on = Cover::new(nv);
    let mut off = Cover::new(nv);
    for cl in cube_lines {
        let parts: Vec<&str> = cl.split_whitespace().collect();
        let (plane, value) = match (nv, parts.len()) {
            (0, 1) => ("", parts[0]),
            (_, 2) => (parts[0], parts[1]),
            _ => {
                return Err(NetworkError::ParseBlif {
                    line,
                    message: format!("malformed cube line `{cl}`"),
                })
            }
        };
        if plane.len() != nv {
            return Err(NetworkError::ParseBlif {
                line,
                message: format!("cube `{plane}` has wrong width (expected {nv})"),
            });
        }
        let mut lits = Vec::new();
        for (v, ch) in plane.chars().enumerate() {
            match ch {
                '1' => lits.push((v, true)),
                '0' => lits.push((v, false)),
                '-' => {}
                other => {
                    return Err(NetworkError::ParseBlif {
                        line,
                        message: format!("bad cube character `{other}`"),
                    })
                }
            }
        }
        let cube = Cube::from_literals(&lits).expect("one phase per column"); // lint:allow(panic): cube literals are valid by construction
        match value {
            "1" => on.push(cube),
            "0" => off.push(cube),
            other => {
                return Err(NetworkError::ParseBlif {
                    line,
                    message: format!("bad output value `{other}`"),
                })
            }
        }
    }
    if !on.is_empty() && !off.is_empty() {
        return Err(NetworkError::ParseBlif {
            line,
            message: "mixed on-set and off-set cubes in one .names block".into(),
        });
    }
    let cover = if off.is_empty() {
        on
    } else {
        // Off-set specification: complement.
        als_logic::isop::isop_exact(&!&off.to_truth_table())
    };
    Ok(net.add_node(output.to_string(), fanins, cover))
}

/// Serializes a network to BLIF text. Constants are emitted as `.names`
/// blocks with no inputs.
pub fn write(net: &Network) -> String {
    let mut out = String::new();
    // lint:allow(silent-result): fmt::Write into a String is infallible
    let _ = render(net, &mut out);
    out
}

/// The fallible body of [`write`]: every `write!` propagates, so the one
/// place the `fmt::Error` is discarded is the `String`-backed wrapper.
fn render(net: &Network, out: &mut String) -> std::fmt::Result {
    writeln!(out, ".model {}", net.name())?;
    write!(out, ".inputs")?;
    for &pi in net.pis() {
        write!(out, " {}", net.node(pi).name())?;
    }
    writeln!(out)?;
    write!(out, ".outputs")?;
    for (name, _) in net.pos() {
        write!(out, " {name}")?;
    }
    writeln!(out)?;
    for id in net.topo_order() {
        let node = net.node(id);
        if node.is_pi() {
            continue;
        }
        write!(out, ".names")?;
        for &f in node.fanins() {
            write!(out, " {}", net.node(f).name())?;
        }
        writeln!(out, " {}", node.name())?;
        let nv = node.fanins().len();
        if node.cover().is_empty() {
            // Constant 0: no cube lines at all.
            continue;
        }
        for cube in node.cover().cubes() {
            let mut plane = String::with_capacity(nv);
            for v in 0..nv {
                plane.push(match cube.phase(v) {
                    Some(true) => '1',
                    Some(false) => '0',
                    None => '-',
                });
            }
            if nv == 0 {
                writeln!(out, "1")?;
            } else {
                writeln!(out, "{plane} 1")?;
            }
        }
    }
    // PO aliases: if a PO name differs from its driver's name, emit a buffer.
    for (name, driver) in net.pos() {
        if net.node(*driver).name() != name {
            writeln!(out, ".names {} {}", net.node(*driver).name(), name)?;
            writeln!(out, "1 1")?;
        }
    }
    writeln!(out, ".end")
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    const FULL_ADDER: &str = "\
.model fa
.inputs a b cin
.outputs s cout
.names a b cin s
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
";

    #[test]
    fn parse_full_adder() {
        let net = parse(FULL_ADDER).unwrap();
        assert_eq!(net.num_pis(), 3);
        assert_eq!(net.num_pos(), 2);
        for m in 0..8u32 {
            let a = m & 1 == 1;
            let b = m >> 1 & 1 == 1;
            let c = m >> 2 & 1 == 1;
            let v = net.eval(&[a, b, c]);
            let total = u32::from(a) + u32::from(b) + u32::from(c);
            assert_eq!(v[0], total & 1 == 1, "sum at {m}");
            assert_eq!(v[1], total >= 2, "cout at {m}");
        }
    }

    #[test]
    fn roundtrip_write_parse() {
        let net = parse(FULL_ADDER).unwrap();
        let text = write(&net);
        let net2 = parse(&text).unwrap();
        for m in 0..8u32 {
            let pis: Vec<bool> = (0..3).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(net.eval(&pis), net2.eval(&pis));
        }
    }

    #[test]
    fn offset_block_complements() {
        // y = NOT(a AND b) given via off-set.
        let text = "\
.model nand
.inputs a b
.outputs y
.names a b y
11 0
.end
";
        let net = parse(text).unwrap();
        assert_eq!(net.eval(&[true, true]), vec![false]);
        assert_eq!(net.eval(&[true, false]), vec![true]);
    }

    #[test]
    fn out_of_order_blocks() {
        let text = "\
.model ooo
.inputs a
.outputs y
.names t y
1 1
.names a t
0 1
.end
";
        let net = parse(text).unwrap();
        assert_eq!(net.eval(&[false]), vec![true]);
        assert_eq!(net.eval(&[true]), vec![false]);
    }

    #[test]
    fn constant_block() {
        let text = "\
.model k
.inputs a
.outputs y
.names y
1
.end
";
        let net = parse(text).unwrap();
        assert_eq!(net.eval(&[false]), vec![true]);
    }

    #[test]
    fn comments_and_continuations() {
        let text = ".model c # a comment\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
        let net = parse(text).unwrap();
        assert_eq!(net.num_pis(), 2);
        assert_eq!(net.eval(&[true, true]), vec![true]);
    }

    #[test]
    fn constant_zero_roundtrip() {
        // A node with no cubes is constant 0; write emits an empty .names
        // block and parse must restore it.
        let mut net = crate::Network::new("k0");
        let _a = net.add_pi("a");
        let k = net.add_constant("k", false);
        net.add_po("y", k);
        let text = write(&net);
        let back = parse(&text).unwrap();
        assert_eq!(back.eval(&[false]), vec![false]);
        assert_eq!(back.eval(&[true]), vec![false]);
    }

    #[test]
    fn duplicate_po_names_with_distinct_drivers() {
        // Two POs may share a driver; aliases are emitted as buffers.
        let mut net = crate::Network::new("alias");
        let a = net.add_pi("a");
        let g = net.add_node(
            "g",
            vec![a],
            Cover::from_cubes(1, [Cube::from_literals(&[(0, false)]).unwrap()]),
        );
        net.add_po("y1", g);
        net.add_po("y2", g);
        let text = write(&net);
        let back = parse(&text).unwrap();
        assert_eq!(back.num_pos(), 2);
        assert_eq!(back.eval(&[true]), vec![false, false]);
        assert_eq!(back.eval(&[false]), vec![true, true]);
    }

    #[test]
    fn po_fed_directly_by_pi() {
        let mut net = crate::Network::new("wire");
        let a = net.add_pi("a");
        let b = net.add_node(
            "buf",
            vec![a],
            Cover::from_cubes(1, [Cube::from_literals(&[(0, true)]).unwrap()]),
        );
        net.add_po("y", b);
        let text = write(&net);
        let back = parse(&text).unwrap();
        assert_eq!(back.eval(&[true]), vec![true]);
    }

    #[test]
    fn rejects_latch() {
        let text = ".model l\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n";
        assert!(matches!(parse(text), Err(NetworkError::ParseBlif { .. })));
    }

    #[test]
    fn undefined_signal_detected() {
        let text = ".model u\n.inputs a\n.outputs y\n.names ghost y\n1 1\n.end\n";
        assert!(matches!(
            parse(text),
            Err(NetworkError::UndefinedSignal { .. })
        ));
    }

    #[test]
    fn bad_cube_width_reported() {
        let text = ".model w\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n";
        assert!(matches!(parse(text), Err(NetworkError::ParseBlif { .. })));
    }

    #[test]
    fn duplicate_names_block_rejected() {
        let text = "\
.model d\n.inputs a b\n.outputs y\n.names a y\n1 1\n.names b y\n1 1\n.end\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("more than one"), "{err}");
    }

    #[test]
    fn names_redefining_an_input_rejected() {
        let text = ".model d\n.inputs a b\n.outputs a\n.names b a\n1 1\n.end\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("redefines input"), "{err}");
    }

    #[test]
    fn duplicate_input_declaration_rejected() {
        let text = ".model d\n.inputs a a\n.outputs y\n.names a y\n1 1\n.end\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("declared more than once"), "{err}");
    }

    #[test]
    fn repeated_names_fanin_is_an_error_not_a_panic() {
        let text = ".model r\n.inputs a\n.outputs y\n.names a a y\n11 1\n.end\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("repeats"), "{err}");
    }

    #[test]
    fn truncated_file_rejected() {
        for text in [
            ".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n",
            ".model t\n.inputs a\n.outputs y\n.names a y\n",
            ".model t\n",
        ] {
            let err = parse(text).unwrap_err();
            assert!(err.to_string().contains("missing `.end`"), "{err}");
        }
    }
}
