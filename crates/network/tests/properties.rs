//! Property-based tests: the structural operations of `als-network` must
//! preserve the global function on arbitrary random networks.

use als_logic::{Cover, Cube};
use als_network::{blif, Network, NodeId};
use proptest::prelude::*;

const NUM_PIS: usize = 4;

fn build_network(recipe: &[(u8, u8, u8)]) -> Network {
    let mut net = Network::new("random");
    let mut signals: Vec<NodeId> = (0..NUM_PIS).map(|i| net.add_pi(format!("x{i}"))).collect();
    for (idx, &(sel_a, sel_b, kind)) in recipe.iter().enumerate() {
        let a = signals[sel_a as usize % signals.len()];
        let mut b = signals[sel_b as usize % signals.len()];
        if a == b {
            b = signals[(sel_b as usize + 1) % signals.len()];
        }
        if a == b {
            continue;
        }
        let cover = match kind % 5 {
            0 => Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
            1 => Cover::from_cubes(
                2,
                [
                    Cube::from_literals(&[(0, true)]).unwrap(),
                    Cube::from_literals(&[(1, true)]).unwrap(),
                ],
            ),
            2 => Cover::from_cubes(
                2,
                [
                    Cube::from_literals(&[(0, true), (1, false)]).unwrap(),
                    Cube::from_literals(&[(0, false), (1, true)]).unwrap(),
                ],
            ),
            3 => Cover::from_cubes(2, [Cube::from_literals(&[(0, false), (1, false)]).unwrap()]),
            _ => Cover::from_cubes(2, [Cube::from_literals(&[(0, false)]).unwrap()]),
        };
        let id = net.add_node(format!("g{idx}"), vec![a, b], cover);
        signals.push(id);
    }
    let n_po = 2.min(signals.len() - NUM_PIS).max(1);
    for (i, &s) in signals.iter().rev().take(n_po).enumerate() {
        net.add_po(format!("y{i}"), s);
    }
    net
}

fn truth_vectors(net: &Network) -> Vec<Vec<bool>> {
    (0..(1u32 << NUM_PIS))
        .map(|m| net.eval(&(0..NUM_PIS).map(|i| m >> i & 1 == 1).collect::<Vec<_>>()))
        .collect()
}

fn arb_recipe() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 2..14)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sweep_preserves_function(recipe in arb_recipe()) {
        let mut net = build_network(&recipe);
        prop_assume!(net.num_internal() > 0);
        let before = truth_vectors(&net);
        net.sweep();
        net.check().unwrap();
        prop_assert_eq!(truth_vectors(&net), before);
    }

    #[test]
    fn eliminate_preserves_function(recipe in arb_recipe(), threshold in -2i64..20) {
        let mut net = build_network(&recipe);
        prop_assume!(net.num_internal() > 0);
        let before = truth_vectors(&net);
        net.eliminate(threshold);
        net.check().unwrap();
        prop_assert_eq!(truth_vectors(&net), before);
    }

    #[test]
    fn propagate_constants_preserves_function(recipe in arb_recipe(), victim in any::<u8>(), value in any::<bool>()) {
        let mut net = build_network(&recipe);
        let internals: Vec<NodeId> = net.internal_ids().collect();
        prop_assume!(!internals.is_empty());
        // Introduce a constant, then check propagation keeps the new function.
        let v = internals[victim as usize % internals.len()];
        net.replace_with_constant(v, value);
        let before = truth_vectors(&net);
        net.propagate_constants();
        net.check().unwrap();
        prop_assert_eq!(truth_vectors(&net), before);
    }

    #[test]
    fn blif_roundtrip_preserves_function(recipe in arb_recipe()) {
        let net = build_network(&recipe);
        prop_assume!(net.num_internal() > 0);
        let text = blif::write(&net);
        let reparsed = blif::parse(&text).unwrap();
        prop_assert_eq!(reparsed.num_pis(), net.num_pis());
        prop_assert_eq!(truth_vectors(&reparsed), truth_vectors(&net));
    }

    #[test]
    fn blif_write_parse_write_is_textually_stable(recipe in arb_recipe()) {
        // parse → write must be a fixed point: the first write settles
        // naming and ordering, and a second round-trip reproduces the
        // text byte for byte (the CLI relies on this for diffable output).
        let net = build_network(&recipe);
        prop_assume!(net.num_internal() > 0);
        let text = blif::write(&net);
        let reparsed = blif::parse(&text).unwrap();
        prop_assert_eq!(blif::write(&reparsed), text);
    }

    #[test]
    fn truncated_blif_never_panics(recipe in arb_recipe(), cut_permille in 0u16..1000) {
        // Feeding any prefix of a valid file back to the parser must
        // produce a clean `Err` (or a smaller valid network), never a
        // panic — `als check` runs on arbitrary user files.
        let net = build_network(&recipe);
        prop_assume!(net.num_internal() > 0);
        let text = blif::write(&net);
        let cut = text.len() * cut_permille as usize / 1000;
        let _ = blif::parse(&text[..cut]);
    }

    #[test]
    fn replace_expr_roundtrip_is_identity(recipe in arb_recipe(), victim in any::<u8>()) {
        let mut net = build_network(&recipe);
        let internals: Vec<NodeId> = net.internal_ids().collect();
        prop_assume!(!internals.is_empty());
        let v = internals[victim as usize % internals.len()];
        let before = truth_vectors(&net);
        let expr = net.node(v).expr().clone();
        net.replace_expr(v, expr);
        net.check().unwrap();
        prop_assert_eq!(truth_vectors(&net), before);
    }

    #[test]
    fn global_functions_agree_with_eval(recipe in arb_recipe()) {
        let net = build_network(&recipe);
        let tts = net.global_functions();
        for m in 0..(1u64 << NUM_PIS) {
            let pis: Vec<bool> = (0..NUM_PIS).map(|i| m >> i & 1 == 1).collect();
            let values = net.eval(&pis);
            for (tt, v) in tts.iter().zip(&values) {
                prop_assert_eq!(tt.get(m), *v);
            }
        }
    }
}
