use als_logic::TruthTable;

/// One cell of the library: a named single-output function with area and
/// pin-to-output delay.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Cell name (e.g. `nand2`).
    pub name: &'static str,
    /// Number of inputs.
    pub arity: usize,
    /// The cell function over its `arity` inputs.
    pub function: TruthTable,
    /// Cell area (arbitrary units consistent within the library).
    pub area: f64,
    /// Worst pin-to-output delay.
    pub delay: f64,
}

/// A generic standard-cell library.
#[derive(Clone, Debug)]
pub struct Library {
    cells: Vec<Cell>,
}

impl Library {
    /// An MCNC-generic-style library: the usual simple-gate repertoire with
    /// NAND/NOR cheaper than AND/OR and XOR/MUX as larger compound cells.
    /// Absolute units are arbitrary; relative costs follow the classic
    /// `mcnc.genlib` ordering.
    pub fn mcnc_like() -> Library {
        fn tt(arity: usize, f: impl Fn(u64) -> bool) -> TruthTable {
            TruthTable::from_fn(arity, f).expect("library arity is small") // lint:allow(panic): variable count validated by the caller
        }
        let ones = |m: u64| m.count_ones();
        let cells = vec![
            Cell {
                name: "inv",
                arity: 1,
                function: tt(1, |m| m == 0),
                area: 1.0,
                delay: 1.0,
            },
            Cell {
                name: "buf",
                arity: 1,
                function: tt(1, |m| m == 1),
                area: 1.0,
                delay: 1.0,
            },
            Cell {
                name: "nand2",
                arity: 2,
                function: tt(2, |m| m != 3),
                area: 2.0,
                delay: 1.0,
            },
            Cell {
                name: "nor2",
                arity: 2,
                function: tt(2, |m| m == 0),
                area: 2.0,
                delay: 1.0,
            },
            Cell {
                name: "and2",
                arity: 2,
                function: tt(2, |m| m == 3),
                area: 3.0,
                delay: 1.4,
            },
            Cell {
                name: "or2",
                arity: 2,
                function: tt(2, |m| m != 0),
                area: 3.0,
                delay: 1.4,
            },
            Cell {
                name: "nand3",
                arity: 3,
                function: tt(3, |m| m != 7),
                area: 3.0,
                delay: 1.4,
            },
            Cell {
                name: "nor3",
                arity: 3,
                function: tt(3, |m| m == 0),
                area: 3.0,
                delay: 1.4,
            },
            Cell {
                name: "and3",
                arity: 3,
                function: tt(3, |m| m == 7),
                area: 4.0,
                delay: 1.8,
            },
            Cell {
                name: "or3",
                arity: 3,
                function: tt(3, |m| m != 0),
                area: 4.0,
                delay: 1.8,
            },
            Cell {
                name: "nand4",
                arity: 4,
                function: tt(4, |m| m != 15),
                area: 4.0,
                delay: 1.8,
            },
            Cell {
                name: "nor4",
                arity: 4,
                function: tt(4, |m| m == 0),
                area: 4.0,
                delay: 1.8,
            },
            Cell {
                name: "and4",
                arity: 4,
                function: tt(4, |m| m == 15),
                area: 5.0,
                delay: 2.2,
            },
            Cell {
                name: "or4",
                arity: 4,
                function: tt(4, |m| m != 0),
                area: 5.0,
                delay: 2.2,
            },
            // AOI21: !(a·b + c); OAI21: !((a+b)·c)
            Cell {
                name: "aoi21",
                arity: 3,
                function: tt(3, |m| !((m & 1 == 1 && m >> 1 & 1 == 1) || m >> 2 & 1 == 1)),
                area: 3.0,
                delay: 1.6,
            },
            Cell {
                name: "oai21",
                arity: 3,
                function: tt(3, |m| !((m & 1 == 1 || m >> 1 & 1 == 1) && m >> 2 & 1 == 1)),
                area: 3.0,
                delay: 1.6,
            },
            Cell {
                name: "xor2",
                arity: 2,
                function: tt(2, |m| ones(m) == 1),
                area: 5.0,
                delay: 1.9,
            },
            Cell {
                name: "xnor2",
                arity: 2,
                function: tt(2, |m| ones(m) != 1),
                area: 5.0,
                delay: 1.9,
            },
            // mux21: s ? c : b with inputs (s, b, c)
            Cell {
                name: "mux21",
                arity: 3,
                function: tt(3, |m| {
                    if m & 1 == 1 {
                        m >> 2 & 1 == 1
                    } else {
                        m >> 1 & 1 == 1
                    }
                }),
                area: 6.0,
                delay: 2.0,
            },
            Cell {
                name: "maj3",
                arity: 3,
                function: tt(3, |m| ones(m) >= 2),
                area: 6.0,
                delay: 2.0,
            },
        ];
        Library { cells }
    }

    /// The library's cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Looks up a cell by name.
    pub fn cell(&self, name: &str) -> Option<&Cell> {
        self.cells.iter().find(|c| c.name == name)
    }

    /// Cells of a given arity.
    pub fn cells_of_arity(&self, arity: usize) -> impl Iterator<Item = &Cell> {
        self.cells.iter().filter(move |c| c.arity == arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_has_the_essentials() {
        let lib = Library::mcnc_like();
        for name in ["inv", "nand2", "nor2", "xor2", "mux21", "aoi21"] {
            assert!(lib.cell(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn cell_functions_are_correct() {
        let lib = Library::mcnc_like();
        let nand2 = lib.cell("nand2").unwrap();
        assert!(nand2.function.get(0) && nand2.function.get(1) && nand2.function.get(2));
        assert!(!nand2.function.get(3));
        let xor2 = lib.cell("xor2").unwrap();
        assert!(!xor2.function.get(0) && xor2.function.get(1));
        let mux = lib.cell("mux21").unwrap();
        // s=1 (bit0) selects input c (bit2).
        assert!(mux.function.get(0b101));
        assert!(!mux.function.get(0b011));
        // s=0 selects input b (bit1).
        assert!(mux.function.get(0b010));
        assert!(!mux.function.get(0b100));
    }

    #[test]
    fn nand_is_cheaper_than_and() {
        let lib = Library::mcnc_like();
        assert!(lib.cell("nand2").unwrap().area < lib.cell("and2").unwrap().area);
    }
}
