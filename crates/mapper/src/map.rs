use crate::{Cell, Library};
use als_logic::{Expr, TruthTable};
use als_network::{Network, NodeId};
use std::collections::HashMap;

/// A signal in the mapped netlist.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Signal {
    /// The `i`-th primary input of the source network.
    Pi(usize),
    /// The output of mapped gate `i`.
    Gate(usize),
    /// A constant.
    Const(bool),
}

/// One instantiated cell.
#[derive(Clone, Debug)]
pub struct MappedGate {
    /// Index into the library's cell list.
    pub cell_index: usize,
    /// Input signals, in cell pin order.
    pub inputs: Vec<Signal>,
}

/// A gate-level netlist produced by [`map_network`].
#[derive(Clone, Debug)]
pub struct MappedNetlist {
    cells: Vec<Cell>,
    gates: Vec<MappedGate>,
    outputs: Vec<Signal>,
    num_pis: usize,
}

impl MappedNetlist {
    /// Total cell area.
    pub fn area(&self) -> f64 {
        self.gates
            .iter()
            .map(|g| self.cells[g.cell_index].area)
            .sum()
    }

    /// Critical-path delay (cell delays only, no wire load).
    pub fn delay(&self) -> f64 {
        let arrivals = self.arrival_times();
        self.outputs
            .iter()
            .map(|s| Self::signal_arrival(s, &arrivals))
            .fold(0.0, f64::max)
    }

    fn signal_arrival(s: &Signal, arrivals: &[f64]) -> f64 {
        match s {
            Signal::Gate(i) => arrivals[*i],
            _ => 0.0,
        }
    }

    fn arrival_times(&self) -> Vec<f64> {
        // Gates are created in topological order by construction.
        let mut arrivals = vec![0.0f64; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            let worst_in = g
                .inputs
                .iter()
                .map(|s| Self::signal_arrival(s, &arrivals))
                .fold(0.0, f64::max);
            arrivals[i] = worst_in + self.cells[g.cell_index].delay;
        }
        arrivals
    }

    /// Number of gate instances.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of primary inputs of the source network.
    pub fn num_pis(&self) -> usize {
        self.num_pis
    }

    /// The gates in topological order.
    pub fn gates(&self) -> &[MappedGate] {
        &self.gates
    }

    /// The library name of a gate's cell.
    pub fn cell_name(&self, gate: &MappedGate) -> &'static str {
        self.cells[gate.cell_index].name
    }

    /// The output signals, in PO order.
    pub fn outputs(&self) -> &[Signal] {
        &self.outputs
    }

    /// Per-cell usage counts, by cell name.
    pub fn cell_histogram(&self) -> HashMap<&'static str, usize> {
        let mut h = HashMap::new();
        for g in &self.gates {
            *h.entry(self.cells[g.cell_index].name).or_insert(0) += 1;
        }
        h
    }

    /// Evaluates the mapped netlist on one PI assignment (for verifying the
    /// mapping against the source network).
    ///
    /// # Panics
    ///
    /// Panics if `pi_values.len()` differs from the source PI count.
    pub fn eval(&self, pi_values: &[bool]) -> Vec<bool> {
        assert_eq!(pi_values.len(), self.num_pis, "pi count mismatch");
        let mut gate_values = vec![false; self.gates.len()];
        let value = |s: &Signal, gate_values: &[bool]| match s {
            Signal::Pi(i) => pi_values[*i],
            Signal::Gate(i) => gate_values[*i],
            Signal::Const(b) => *b,
        };
        for (i, g) in self.gates.iter().enumerate() {
            let mut minterm = 0u64;
            for (pin, s) in g.inputs.iter().enumerate() {
                if value(s, &gate_values) {
                    minterm |= 1 << pin;
                }
            }
            gate_values[i] = self.cells[g.cell_index].function.get(minterm);
        }
        self.outputs
            .iter()
            .map(|s| value(s, &gate_values))
            .collect()
    }
}

struct Mapper<'a> {
    lib: &'a Library,
    gates: Vec<MappedGate>,
    /// Shared inverters: source signal → inverted signal.
    inverters: HashMap<Signal, Signal>,
    inv_index: usize,
}

impl<'a> Mapper<'a> {
    fn new(lib: &'a Library) -> Self {
        let inv_index = lib
            .cells()
            .iter()
            .position(|c| c.name == "inv")
            .expect("library must provide an inverter"); // lint:allow(panic): internal invariant; the message states it
        Mapper {
            lib,
            gates: Vec::new(),
            inverters: HashMap::new(),
            inv_index,
        }
    }

    fn emit(&mut self, cell_index: usize, inputs: Vec<Signal>) -> Signal {
        self.gates.push(MappedGate { cell_index, inputs });
        Signal::Gate(self.gates.len() - 1)
    }

    fn invert(&mut self, s: Signal) -> Signal {
        if let Signal::Const(b) = s {
            return Signal::Const(!b);
        }
        if let Some(&inv) = self.inverters.get(&s) {
            return inv;
        }
        let inv = self.emit(self.inv_index, vec![s]);
        self.inverters.insert(s, inv);
        self.inverters.insert(inv, s);
        inv
    }

    /// Boolean-matches `tt` (over `fanins.len()` inputs) against same-arity
    /// library cells under input permutation and output phase; returns the
    /// cheapest match.
    fn direct_match(&mut self, tt: &TruthTable, fanins: &[Signal]) -> Option<Signal> {
        let k = fanins.len();
        if k == 0 || k > 4 {
            return None;
        }
        let mut best: Option<(usize, Vec<usize>, bool, f64)> = None; // cell, perm, invert_out, cost
        let perms = permutations(k);
        let ntt = !tt;
        for (ci, cell) in self.lib.cells().iter().enumerate() {
            if cell.arity != k {
                continue;
            }
            for perm in &perms {
                let permuted = tt.remap(k, perm).expect("arity bounded by 4"); // lint:allow(panic): internal invariant; the message states it
                let (matches, inv_out) = if permuted == cell.function {
                    (true, false)
                } else if ntt.remap(k, perm).expect("arity bounded by 4") == cell.function {
                    // lint:allow(panic): internal invariant; the message states it
                    (true, true)
                } else {
                    (false, false)
                };
                if !matches {
                    continue;
                }
                let inv_cell = &self.lib.cells()[self.inv_index];
                let cost = cell.area + if inv_out { inv_cell.area } else { 0.0 };
                if best.as_ref().is_none_or(|b| cost < b.3) {
                    best = Some((ci, perm.clone(), inv_out, cost));
                }
            }
        }
        let (ci, perm, inv_out, _) = best?;
        // perm maps node variable i → cell pin perm[i]; pin j takes fanin
        // with perm[i] == j.
        let mut inputs = vec![Signal::Const(false); k];
        for (i, &pin) in perm.iter().enumerate() {
            inputs[pin] = fanins[i];
        }
        let out = self.emit(ci, inputs);
        Some(if inv_out { self.invert(out) } else { out })
    }

    /// Decomposes a factored expression into tree cells.
    fn decompose(&mut self, expr: &Expr, fanins: &[Signal]) -> Signal {
        match expr {
            Expr::Const(b) => Signal::Const(*b),
            Expr::Lit { var, phase } => {
                let s = fanins[*var];
                if *phase {
                    s
                } else {
                    self.invert(s)
                }
            }
            Expr::And(children) => {
                let sigs: Vec<Signal> =
                    children.iter().map(|c| self.decompose(c, fanins)).collect();
                self.reduce(sigs, true)
            }
            Expr::Or(children) => {
                let sigs: Vec<Signal> =
                    children.iter().map(|c| self.decompose(c, fanins)).collect();
                self.reduce(sigs, false)
            }
        }
    }

    /// Combines signals with a balanced tree of AND (or OR) cells, using the
    /// widest available gate per level.
    fn reduce(&mut self, mut sigs: Vec<Signal>, is_and: bool) -> Signal {
        let names: [&str; 3] = if is_and {
            ["and2", "and3", "and4"]
        } else {
            ["or2", "or3", "or4"]
        };
        let cell_of = |lib: &Library, name: &str| {
            lib.cells()
                .iter()
                .position(|c| c.name == name)
                .expect("library provides and/or gates up to arity 4") // lint:allow(panic): internal invariant; the message states it
        };
        while sigs.len() > 1 {
            let take = sigs.len().min(4);
            let cell = cell_of(self.lib, names[take - 2]);
            let chunk: Vec<Signal> = sigs.drain(..take).collect();
            let g = self.emit(cell, chunk);
            sigs.push(g);
        }
        sigs.pop().expect("non-empty group") // lint:allow(panic): internal invariant; the message states it
    }
}

pub(crate) fn permutations(k: usize) -> Vec<Vec<usize>> {
    fn rec(remaining: &mut Vec<usize>, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.is_empty() {
            out.push(current.clone());
            return;
        }
        for i in 0..remaining.len() {
            let v = remaining.remove(i);
            current.push(v);
            rec(remaining, current, out);
            current.pop();
            remaining.insert(i, v);
        }
    }
    let mut out = Vec::new();
    rec(&mut (0..k).collect(), &mut Vec::new(), &mut out);
    out
}

/// Maps a Boolean network onto the library. Each node is Boolean-matched
/// against the library (inputs permuted, output phase free); nodes with no
/// single-cell implementation are decomposed along their factored form into
/// AND/OR trees with shared inverters.
///
/// The result preserves the network's function (verified in this module's
/// tests by co-simulation).
///
/// # Panics
///
/// Panics if the library lacks an inverter or the basic AND/OR gates.
pub fn map_network(net: &Network, lib: &Library) -> MappedNetlist {
    let mut mapper = Mapper::new(lib);
    let pi_index: HashMap<NodeId, usize> =
        net.pis().iter().enumerate().map(|(i, &p)| (p, i)).collect();
    let mut signal_of: HashMap<NodeId, Signal> = HashMap::new();

    for id in net.topo_order() {
        let node = net.node(id);
        if node.is_pi() {
            signal_of.insert(id, Signal::Pi(pi_index[&id]));
            continue;
        }
        let fanins: Vec<Signal> = node.fanins().iter().map(|f| signal_of[f]).collect();
        let sig = if let Some(c) = node.expr().as_constant() {
            Signal::Const(c)
        } else {
            let tt = node.cover().to_truth_table();
            match mapper.direct_match(&tt, &fanins) {
                Some(s) => s,
                None => mapper.decompose(node.expr(), &fanins),
            }
        };
        signal_of.insert(id, sig);
    }

    let outputs: Vec<Signal> = net.pos().iter().map(|(_, d)| signal_of[d]).collect();
    MappedNetlist {
        cells: lib.cells().to_vec(),
        gates: mapper.gates,
        outputs,
        num_pis: net.num_pis(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_circuits::adders::ripple_carry_adder;
    use als_circuits::multipliers::wallace_tree_multiplier;
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    fn co_simulate(net: &Network, mapped: &MappedNetlist, rounds: usize) {
        let mut state = 0x51u64;
        for _ in 0..rounds {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let pis: Vec<bool> = (0..net.num_pis())
                .map(|i| state >> (i % 60) & 1 == 1)
                .collect();
            assert_eq!(net.eval(&pis), mapped.eval(&pis), "pis {pis:?}");
        }
    }

    #[test]
    fn xor_maps_to_single_cell() {
        let mut net = Network::new("x");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let y = net.add_node(
            "y",
            vec![a, b],
            Cover::from_cubes(
                2,
                [
                    cube(&[(0, true), (1, false)]),
                    cube(&[(0, false), (1, true)]),
                ],
            ),
        );
        net.add_po("y", y);
        let lib = Library::mcnc_like();
        let mapped = map_network(&net, &lib);
        assert_eq!(mapped.num_gates(), 1);
        assert_eq!(mapped.cell_histogram()["xor2"], 1);
        co_simulate(&net, &mapped, 8);
    }

    #[test]
    fn nand_phase_match_uses_cheap_cell() {
        // y = (a·b)' should map to one nand2, not and2 + inv.
        let mut net = Network::new("n");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let y = net.add_node(
            "y",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, false)]), cube(&[(1, false)])]),
        );
        net.add_po("y", y);
        let mapped = map_network(&net, &Library::mcnc_like());
        assert_eq!(mapped.cell_histogram()["nand2"], 1);
        assert_eq!(mapped.num_gates(), 1);
        co_simulate(&net, &mapped, 8);
    }

    #[test]
    fn inverters_are_shared() {
        // Two nodes both needing a' must share one inverter.
        let mut net = Network::new("s");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let c = net.add_pi("c");
        // Use 3-fanin nodes with no single-cell match to force decomposition.
        let f1 = net.add_node(
            "f1",
            vec![a, b, c],
            Cover::from_cubes(
                3,
                [
                    cube(&[(0, false), (1, true)]),
                    cube(&[(1, true), (2, true)]),
                    cube(&[(0, false), (2, false)]),
                ],
            ),
        );
        let f2 = net.add_node(
            "f2",
            vec![a, b, c],
            Cover::from_cubes(
                3,
                [
                    cube(&[(0, false), (2, true)]),
                    cube(&[(1, false), (2, false)]),
                    cube(&[(0, false), (1, false)]),
                ],
            ),
        );
        net.add_po("f1", f1);
        net.add_po("f2", f2);
        let mapped = map_network(&net, &Library::mcnc_like());
        let inv_count = mapped.cell_histogram().get("inv").copied().unwrap_or(0);
        assert!(inv_count <= 3, "a', b', c' should be shared: {inv_count}");
        co_simulate(&net, &mapped, 16);
    }

    #[test]
    fn rca_maps_and_cosimulates() {
        let net = ripple_carry_adder(8);
        let lib = Library::mcnc_like();
        let mapped = map_network(&net, &lib);
        assert!(mapped.area() > 0.0);
        assert!(mapped.delay() > 0.0);
        co_simulate(&net, &mapped, 60);
        // Full adders are xor/maj cells: expect plenty of both.
        let h = mapped.cell_histogram();
        assert!(h.get("xor2").copied().unwrap_or(0) >= 8, "{h:?}");
        assert!(h.get("maj3").copied().unwrap_or(0) >= 7, "{h:?}");
    }

    #[test]
    fn multiplier_maps_and_cosimulates() {
        let net = wallace_tree_multiplier(4);
        let mapped = map_network(&net, &Library::mcnc_like());
        co_simulate(&net, &mapped, 60);
    }

    #[test]
    fn delay_reflects_logic_depth() {
        let deep = ripple_carry_adder(16);
        let shallow = ripple_carry_adder(2);
        let lib = Library::mcnc_like();
        assert!(map_network(&deep, &lib).delay() > map_network(&shallow, &lib).delay());
    }

    #[test]
    fn constants_map_without_gates() {
        let mut net = Network::new("k");
        let _a = net.add_pi("a");
        let k = net.add_constant("k", true);
        net.add_po("k", k);
        let mapped = map_network(&net, &Library::mcnc_like());
        assert_eq!(mapped.num_gates(), 0);
        assert_eq!(mapped.eval(&[false]), vec![true]);
    }
}
