//! Technology mapping onto an MCNC-like generic standard-cell library.
//!
//! The paper reports mapped area and delay from SIS with the MCNC generic
//! library (Table 3) and confirms that the approximate circuits' delays do
//! not degrade. This crate stands in for that step:
//!
//! * [`Library`] — a generic cell library in the MCNC spirit (inverter,
//!   AND/OR/NAND/NOR gates of 2–4 inputs, XOR/XNOR, MUX, MAJ, AOI/OAI);
//! * [`map_network`] — maps a Boolean network to a [`MappedNetlist`]:
//!   each node is Boolean-matched against the library (input permutations
//!   and output phase), falling back to a factored-form decomposition into
//!   tree cells with shared inverters;
//! * [`MappedNetlist::area`] / [`MappedNetlist::delay`] — cell-area totals
//!   and critical-path delay; the netlist can also be simulated to verify
//!   the mapping preserved the function;
//! * [`DelayMap`] — incremental critical-path *estimates* over the logic
//!   network itself, for delay-aware candidate scoring during synthesis
//!   (cheap what-if queries and cone-local refreshes without re-mapping).
//!
//! # Example
//!
//! ```
//! use als_circuits::adders::ripple_carry_adder;
//! use als_mapper::{map_network, Library};
//!
//! let net = ripple_carry_adder(4);
//! let lib = Library::mcnc_like();
//! let mapped = map_network(&net, &lib);
//! assert!(mapped.area() > 0.0);
//! assert!(mapped.delay() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

mod delay;
mod library;
mod map;
mod verilog;

pub use delay::{expr_delay, DelayMap};
pub use library::{Cell, Library};
pub use map::{map_network, MappedGate, MappedNetlist, Signal};
pub use verilog::write_verilog;
