//! Incremental critical-path delay estimation over the *logic* network.
//!
//! [`map_network`](crate::map_network) prices a finished network exactly by
//! building the gate netlist; that is the number the sweep reports. During
//! synthesis, however, a delay-aware candidate scorer needs thousands of
//! cheap "what would the critical path look like if this node's function
//! became X?" queries against a network that mutates every iteration.
//! [`DelayMap`] answers those without re-mapping:
//!
//! * each node gets a **local delay estimate** — the delay of the cell (or
//!   balanced AND/OR cell tree) the mapper would instantiate for its
//!   factored form, mirroring the Boolean-matching and decomposition rules
//!   of [`map_network`](crate::map_network) but skipping gate emission;
//! * a forward pass computes per-node **arrival times**, a backward pass
//!   per-node **required paths** (the worst downstream delay from the
//!   node's output to any primary output), so the longest path *through*
//!   node `v` is `arrival(v) + required(v)`;
//! * [`DelayMap::query_delta`] prices a substitution as the change of the
//!   critical path if only `v`'s local delay changed, and
//!   [`DelayMap::update_cone`] refreshes the map after a committed change
//!   by re-propagating arrivals through the transitive fanout only, with
//!   early exit where arrivals are unchanged.
//!
//! The estimate is deliberately *local*: it prices the rewritten node's own
//! cell tree and assumes the rest of the mapping is stable (shared-inverter
//! reuse and cross-node matching can shift neighbouring cells in a real
//! re-map). It is a scoring heuristic for steering the search, not a timing
//! sign-off — consumers must re-map the final network for reported delays.

use crate::library::Library;
use crate::map::permutations;
use als_logic::{Expr, TruthTable};
use als_network::{Network, NodeId};

/// Tolerance for "is this path critical" float comparisons.
const EPS: f64 = 1e-9;

/// Per-node arrival/required delay bookkeeping over a logic network; the
/// module-level comment above describes the model.
#[derive(Clone, Debug)]
pub struct DelayMap {
    /// Local cell-tree delay estimate per arena slot (0 for PIs and dead
    /// slots).
    local: Vec<f64>,
    /// Worst input-to-node-output delay per arena slot.
    arrival: Vec<f64>,
    /// Worst node-output-to-PO delay per arena slot (excluding the node's
    /// own local delay).
    required: Vec<f64>,
    /// Worst arrival over the primary outputs.
    critical: f64,
}

impl DelayMap {
    /// Builds the map from scratch: local estimates for every live node,
    /// then full forward and backward passes.
    #[must_use]
    pub fn build(net: &Network, lib: &Library) -> Self {
        let len = net.fanouts().len();
        let mut map = DelayMap {
            local: vec![0.0; len],
            arrival: vec![0.0; len],
            required: vec![0.0; len],
            critical: 0.0,
        };
        for id in net.topo_order() {
            let node = net.node(id);
            if !node.is_pi() {
                map.local[id.index()] = expr_delay(lib, node.expr(), node.fanins().len());
            }
        }
        map.forward_full(net);
        map.backward(net);
        map
    }

    /// Refreshes the map after `changed` nodes were rewritten in place
    /// (their expressions replaced; the arena itself not restructured).
    /// Arrivals re-propagate through the transitive fanout only, stopping
    /// early wherever a recomputed arrival is unchanged; the backward pass
    /// is then rerun in full (it is a single linear sweep).
    pub fn update_cone(&mut self, net: &Network, lib: &Library, changed: &[NodeId]) {
        let len = net.fanouts().len();
        if len > self.local.len() {
            self.local.resize(len, 0.0);
            self.arrival.resize(len, 0.0);
            self.required.resize(len, 0.0);
        }
        let mut dirty = vec![false; self.local.len()];
        for &id in changed {
            let node = net.node(id);
            self.local[id.index()] = if node.is_pi() {
                0.0
            } else {
                expr_delay(lib, node.expr(), node.fanins().len())
            };
            dirty[id.index()] = true;
        }
        for id in net.topo_order() {
            let idx = id.index();
            let node = net.node(id);
            let affected = dirty[idx] || node.fanins().iter().any(|f| dirty[f.index()]);
            if !affected {
                continue;
            }
            let worst = node
                .fanins()
                .iter()
                .map(|f| self.arrival[f.index()])
                .fold(0.0, f64::max);
            let arrival = worst + self.local[idx];
            if (arrival - self.arrival[idx]).abs() <= EPS && !dirty[idx] {
                continue; // arrival unchanged: the fanout cone is unaffected
            }
            self.arrival[idx] = arrival;
            dirty[idx] = true;
        }
        self.backward(net);
    }

    fn forward_full(&mut self, net: &Network) {
        for id in net.topo_order() {
            let worst = net
                .node(id)
                .fanins()
                .iter()
                .map(|f| self.arrival[f.index()])
                .fold(0.0, f64::max);
            self.arrival[id.index()] = worst + self.local[id.index()];
        }
    }

    fn backward(&mut self, net: &Network) {
        let fanouts = net.fanouts();
        for slot in &mut self.required {
            *slot = 0.0;
        }
        let order = net.topo_order();
        for &id in order.iter().rev() {
            self.required[id.index()] = fanouts[id.index()]
                .iter()
                .map(|fo| self.required[fo.index()] + self.local[fo.index()])
                .fold(0.0, f64::max);
        }
        self.critical = net
            .pos()
            .iter()
            .map(|(_, driver)| self.arrival[driver.index()])
            .fold(0.0, f64::max);
    }

    /// The estimated critical-path delay of the whole network.
    #[must_use]
    pub fn critical(&self) -> f64 {
        self.critical
    }

    /// The local cell-tree delay estimate of one node.
    #[must_use]
    pub fn local(&self, id: NodeId) -> f64 {
        self.local[id.index()]
    }

    /// The worst input-to-output arrival time at one node.
    #[must_use]
    pub fn arrival(&self, id: NodeId) -> f64 {
        self.arrival[id.index()]
    }

    /// How close the longest path through this node comes to the critical
    /// path, in `[0, 1]` (1 = the node lies on the critical path).
    #[must_use]
    pub fn criticality(&self, id: NodeId) -> f64 {
        if self.critical <= 0.0 {
            return 0.0;
        }
        ((self.arrival[id.index()] + self.required[id.index()]) / self.critical).clamp(0.0, 1.0)
    }

    /// Estimated change of the critical path if only this node's local
    /// delay became `new_local`: positive when the rewritten path would
    /// exceed today's critical path, negative when the node is *on* the
    /// critical path and the substitution shortens it (an optimistic bound
    /// — a parallel path may cap the real gain), and exactly `0.0` when an
    /// off-critical node stays under the critical path (including the
    /// no-change query `query_delta(v, local(v))`, for every node).
    #[must_use]
    pub fn query_delta(&self, id: NodeId, new_local: f64) -> f64 {
        let idx = id.index();
        let through = self.arrival[idx] + self.required[idx];
        let new_through = through - self.local[idx] + new_local;
        let delta = new_through - self.critical;
        if through >= self.critical - EPS {
            delta
        } else {
            delta.max(0.0)
        }
    }
}

/// The delay of the cell (or balanced AND/OR cell tree) the mapper would
/// instantiate for `expr` over `num_vars` fanin variables: Boolean-matched
/// single cells for arity ≤ 4 (cheapest by area, matching
/// [`map_network`](crate::map_network)'s tie-break, inverter added for a
/// phase match), otherwise the factored form's decomposition tree.
/// Constants cost `0.0`.
#[must_use]
pub fn expr_delay(lib: &Library, expr: &Expr, num_vars: usize) -> f64 {
    if expr.as_constant().is_some() {
        return 0.0;
    }
    if (1..=4).contains(&num_vars) {
        let tt = expr.to_truth_table(num_vars);
        if let Some(delay) = match_delay(lib, &tt, num_vars) {
            return delay;
        }
    }
    tree_delay(lib, expr)
}

/// The delay of the cheapest-by-area single-cell Boolean match (input
/// permutations, free output phase) — the same selection rule as the
/// mapper's direct matching, so the estimate prices the cell the mapper
/// would pick.
fn match_delay(lib: &Library, tt: &TruthTable, k: usize) -> Option<f64> {
    let inv = lib.cell("inv")?;
    let perms = permutations(k);
    let ntt = !tt;
    let mut best: Option<(f64, f64)> = None; // (area cost, delay)
    for cell in lib.cells() {
        if cell.arity != k {
            continue;
        }
        for perm in &perms {
            let permuted = tt.remap(k, perm).expect("arity bounded by 4"); // lint:allow(panic): internal invariant; the message states it
            let (matches, inv_out) = if permuted == cell.function {
                (true, false)
            } else if ntt.remap(k, perm).expect("arity bounded by 4") == cell.function {
                // lint:allow(panic): internal invariant; the message states it
                (true, true)
            } else {
                (false, false)
            };
            if !matches {
                continue;
            }
            let cost = cell.area + if inv_out { inv.area } else { 0.0 };
            let delay = cell.delay + if inv_out { inv.delay } else { 0.0 };
            if best.is_none_or(|b| cost < b.0) {
                best = Some((cost, delay));
            }
        }
    }
    best.map(|b| b.1)
}

/// Delay of the factored form's AND/OR decomposition tree, mirroring the
/// mapper's widest-gate-first reduction.
fn tree_delay(lib: &Library, expr: &Expr) -> f64 {
    match expr {
        Expr::Const(_) => 0.0,
        Expr::Lit { phase, .. } => {
            if *phase {
                0.0
            } else {
                lib.cell("inv").map_or(1.0, |c| c.delay)
            }
        }
        Expr::And(children) => reduce_delay(
            lib,
            children.iter().map(|c| tree_delay(lib, c)).collect(),
            true,
        ),
        Expr::Or(children) => reduce_delay(
            lib,
            children.iter().map(|c| tree_delay(lib, c)).collect(),
            false,
        ),
    }
}

/// Delay of the balanced reduction tree the mapper builds for an N-ary
/// AND/OR: repeatedly combine up to four operands with the widest gate.
fn reduce_delay(lib: &Library, mut delays: Vec<f64>, is_and: bool) -> f64 {
    let names: [&str; 3] = if is_and {
        ["and2", "and3", "and4"]
    } else {
        ["or2", "or3", "or4"]
    };
    while delays.len() > 1 {
        let take = delays.len().min(4);
        let gate = lib.cell(names[take - 2]).map_or(1.0, |c| c.delay);
        let worst = delays.drain(..take).fold(0.0, f64::max);
        delays.push(worst + gate);
    }
    delays.first().copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map_network;
    use als_circuits::adders::ripple_carry_adder;

    #[test]
    fn critical_is_positive_and_grows_with_depth() {
        let lib = Library::mcnc_like();
        let shallow = DelayMap::build(&ripple_carry_adder(2), &lib);
        let deep = DelayMap::build(&ripple_carry_adder(16), &lib);
        assert!(shallow.critical() > 0.0);
        assert!(deep.critical() > shallow.critical());
    }

    #[test]
    fn estimate_tracks_the_real_mapped_delay() {
        // Same library, same decomposition rules: the estimate must land in
        // the same ballpark as the exact mapped delay (shared inverters and
        // cross-node matching cause bounded divergence, not runaway).
        let lib = Library::mcnc_like();
        let net = ripple_carry_adder(8);
        let est = DelayMap::build(&net, &lib).critical();
        let real = map_network(&net, &lib).delay();
        assert!(
            est > 0.5 * real && est < 2.0 * real,
            "est {est} real {real}"
        );
    }

    #[test]
    fn criticality_is_a_unit_interval_and_some_node_is_critical() {
        let lib = Library::mcnc_like();
        let net = ripple_carry_adder(4);
        let map = DelayMap::build(&net, &lib);
        let mut worst = 0.0f64;
        for id in net.node_ids() {
            let c = map.criticality(id);
            assert!((0.0..=1.0).contains(&c), "criticality {c} out of range");
            worst = worst.max(c);
        }
        assert!(worst >= 1.0 - 1e-12, "no node lies on the critical path");
    }

    #[test]
    fn no_change_query_is_zero_for_every_node() {
        let lib = Library::mcnc_like();
        let net = ripple_carry_adder(4);
        let map = DelayMap::build(&net, &lib);
        for id in net.node_ids() {
            let delta = map.query_delta(id, map.local(id));
            assert!(delta.abs() <= 1e-9, "node {id:?}: no-op delta {delta}");
        }
    }

    #[test]
    fn shrinking_a_node_never_reports_a_slowdown() {
        let lib = Library::mcnc_like();
        let net = ripple_carry_adder(4);
        let map = DelayMap::build(&net, &lib);
        for id in net.internal_ids() {
            let delta = map.query_delta(id, 0.0);
            assert!(delta <= 1e-9, "constant substitution slowed node {id:?}");
        }
    }

    #[test]
    fn update_cone_matches_a_fresh_build() {
        let lib = Library::mcnc_like();
        let mut net = ripple_carry_adder(6);
        let mut map = DelayMap::build(&net, &lib);
        // Rewrite a mid-network node to a constant and refresh incrementally.
        let victims: Vec<_> = net.internal_ids().collect();
        for &victim in &[victims[victims.len() / 2], victims[victims.len() - 1]] {
            net.replace_with_constant(victim, false);
            map.update_cone(&net, &lib, &[victim]);
            let fresh = DelayMap::build(&net, &lib);
            assert!(
                (map.critical() - fresh.critical()).abs() <= 1e-9,
                "critical diverged: {} vs {}",
                map.critical(),
                fresh.critical()
            );
            for id in net.node_ids() {
                assert!(
                    (map.arrival(id) - fresh.arrival(id)).abs() <= 1e-9,
                    "arrival diverged at {id:?}"
                );
            }
        }
    }

    #[test]
    fn expr_delay_prices_cells_and_trees() {
        let lib = Library::mcnc_like();
        // A bare positive literal Boolean-matches the buffer cell (the
        // mapper emits one too when a node is a single literal).
        let buf = lib.cell("buf").unwrap().delay;
        assert_eq!(expr_delay(&lib, &Expr::lit(0, true), 1), buf);
        // Constants are free.
        assert_eq!(expr_delay(&lib, &Expr::TRUE, 3), 0.0);
        // A 2-input AND Boolean-matches nand2 + inv (area ties with and2;
        // the first match wins, exactly as in `map_network`).
        let and2 = Expr::and(vec![Expr::lit(0, true), Expr::lit(1, true)]);
        let nand_inv = lib.cell("nand2").unwrap().delay + lib.cell("inv").unwrap().delay;
        assert_eq!(expr_delay(&lib, &and2, 2), nand_inv);
        // A wide conjunction decomposes into a tree deeper than one cell.
        let wide = Expr::and((0..8).map(|v| Expr::lit(v, true)).collect());
        assert!(expr_delay(&lib, &wide, 8) > lib.cell("and4").unwrap().delay);
    }
}
