//! Stress tests for the CDCL solver: random 3-SAT near the phase
//! transition cross-checked against brute force, structured UNSAT families,
//! and incremental/assumption workouts.

use als_sat::{Lit, SatResult, Solver, Var};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0
    }
}

fn brute_force(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    brute_force_from(0, num_vars, clauses)
}

/// Brute force over variables with indices `offset..offset + num_vars` —
/// for formulas built late in a long-lived solver.
fn brute_force_from(offset: usize, num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    'outer: for m in 0..(1u64 << num_vars) {
        for clause in clauses {
            if !clause
                .iter()
                .any(|l| (m >> (l.var().index() - offset) & 1 == 1) == l.is_positive())
            {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

#[test]
fn random_3sat_phase_transition() {
    // n = 12 variables, m ≈ 4.26 n clauses: the hard density. 60 instances.
    let mut rng = Lcg(0x3A7_15FA11);
    for round in 0..60 {
        let num_vars = 12;
        let num_clauses = 51;
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
        let mut clauses = Vec::new();
        for _ in 0..num_clauses {
            let mut clause = Vec::new();
            while clause.len() < 3 {
                let v = vars[(rng.next() % num_vars as u64) as usize];
                let lit = Lit::with_sign(v, rng.next() & 1 == 0);
                if !clause.contains(&lit) && !clause.contains(&!lit) {
                    clause.push(lit);
                }
            }
            clauses.push(clause);
        }
        for c in &clauses {
            solver.add_clause(c);
        }
        let expect = brute_force(num_vars, &clauses);
        let got = solver.solve() == SatResult::Sat;
        assert_eq!(got, expect, "round {round}");
        if got {
            for clause in &clauses {
                assert!(
                    clause
                        .iter()
                        .any(|l| solver.value(l.var()) == Some(l.is_positive())),
                    "model violates a clause in round {round}"
                );
            }
        }
    }
}

#[test]
fn pigeonhole_php_5_4_unsat() {
    // 5 pigeons in 4 holes: a classically hard UNSAT family for resolution;
    // small enough to stay fast but it genuinely exercises clause learning.
    let (pigeons, holes) = (5usize, 4usize);
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var()).collect())
        .collect();
    for row in &p {
        let clause: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
        s.add_clause(&clause);
    }
    #[allow(clippy::needless_range_loop)] // h indexes the inner dimension of every row
    for h in 0..holes {
        for i in 0..pigeons {
            for j in (i + 1)..pigeons {
                s.add_clause(&[Lit::neg(p[i][h]), Lit::neg(p[j][h])]);
            }
        }
    }
    assert_eq!(s.solve(), SatResult::Unsat);
}

#[test]
fn graph_coloring() {
    // C5 (odd cycle) is 3-colorable but not 2-colorable.
    let n = 5;
    for (colors, expect) in [(2usize, SatResult::Unsat), (3, SatResult::Sat)] {
        let mut s = Solver::new();
        let v: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..colors).map(|_| s.new_var()).collect())
            .collect();
        for row in &v {
            let clause: Vec<Lit> = row.iter().map(|&x| Lit::pos(x)).collect();
            s.add_clause(&clause);
            for i in 0..colors {
                for j in (i + 1)..colors {
                    s.add_clause(&[Lit::neg(row[i]), Lit::neg(row[j])]);
                }
            }
        }
        for e in 0..n {
            let (a, b) = (e, (e + 1) % n);
            #[allow(clippy::needless_range_loop)] // c indexes the inner dimension of two rows
            for c in 0..colors {
                s.add_clause(&[Lit::neg(v[a][c]), Lit::neg(v[b][c])]);
            }
        }
        assert_eq!(s.solve(), expect, "{colors} colors");
    }
}

#[test]
fn assumption_sweep_matches_cofactors() {
    // f = (a ∨ b)(¬a ∨ c): check sat under every assumption pair.
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
    s.add_clause(&[Lit::neg(a), Lit::pos(c)]);
    for m in 0..8u32 {
        let assumptions = [
            Lit::with_sign(a, m & 1 == 1),
            Lit::with_sign(b, m >> 1 & 1 == 1),
            Lit::with_sign(c, m >> 2 & 1 == 1),
        ];
        let av = m & 1 == 1;
        let bv = m >> 1 & 1 == 1;
        let cv = m >> 2 & 1 == 1;
        let expect = (av || bv) && (!av || cv);
        assert_eq!(
            s.solve_with_assumptions(&assumptions) == SatResult::Sat,
            expect,
            "assignment {m:03b}"
        );
    }
    // Solver still healthy afterwards.
    assert_eq!(s.solve(), SatResult::Sat);
}

#[test]
fn clause_groups_retract_cleanly() {
    // A retractable group holding a contradiction must flip the answer
    // only while assumed, and retraction must restore the base formula's
    // behavior exactly — cross-checked against brute force per round.
    let mut rng = Lcg(0x9E37_79B9);
    for round in 0..20 {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
        let mut clauses = Vec::new();
        for _ in 0..18 {
            let mut clause = Vec::new();
            while clause.len() < 3 {
                let v = vars[(rng.next() % 8) as usize];
                let lit = Lit::with_sign(v, rng.next() & 1 == 0);
                if !clause.contains(&lit) && !clause.contains(&!lit) {
                    clause.push(lit);
                }
            }
            s.add_clause(&clause);
            clauses.push(clause);
        }
        let base = brute_force(8, &clauses);
        let g = s.new_group();
        s.add_clause_in(g, &[Lit::pos(vars[0])]);
        s.add_clause_in(g, &[Lit::neg(vars[0])]);
        assert_eq!(
            s.solve_with_assumptions(&[g.lit()]),
            SatResult::Unsat,
            "round {round}: the group is contradictory under assumption"
        );
        // Unassumed, the group's clauses are vacuous.
        assert_eq!(s.solve() == SatResult::Sat, base, "round {round}");
        let _ = s.retract(g);
        assert_eq!(
            s.solve() == SatResult::Sat,
            base,
            "round {round}: retraction restores the base formula"
        );
        // A later independent group still works on the swept database.
        let g2 = s.new_group();
        s.add_clause_in(g2, &[Lit::pos(vars[1])]);
        let narrowed: Vec<Vec<Lit>> = clauses
            .iter()
            .cloned()
            .chain([vec![Lit::pos(vars[1])]])
            .collect();
        assert_eq!(
            s.solve_with_assumptions(&[g2.lit()]) == SatResult::Sat,
            brute_force(8, &narrowed),
            "round {round}: fresh group after retraction"
        );
    }
}

#[test]
fn failed_assumptions_report_unsat_and_recover() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
    s.add_clause(&[Lit::neg(a), Lit::pos(b)]);
    // f ≡ b: assuming ¬b must fail, assuming b must succeed.
    assert_eq!(s.solve_with_assumptions(&[Lit::neg(b)]), SatResult::Unsat);
    assert_eq!(s.solve_with_assumptions(&[Lit::pos(b)]), SatResult::Sat);
    // Directly contradicting a root-level forced literal fails too.
    s.add_clause(&[Lit::pos(a)]);
    assert_eq!(s.solve_with_assumptions(&[Lit::neg(a)]), SatResult::Unsat);
    // Pairwise contradictory assumptions fail regardless of the formula.
    assert_eq!(
        s.solve_with_assumptions(&[Lit::pos(b), Lit::neg(b)]),
        SatResult::Unsat
    );
    // The solver recovers fully after every failed-assumption exit.
    assert_eq!(s.solve(), SatResult::Sat);
    assert_eq!(s.value(a), Some(true));
    assert_eq!(s.value(b), Some(true));
}

#[test]
fn watch_arena_survives_learnt_reduction_across_instances() {
    // One long-lived solver serves a conflict-heavy UNSAT family and then
    // sixty random phase-transition instances, each in its own retractable
    // group. The accumulated learnt clauses force database reductions and
    // the per-instance retraction forces watch-arena compaction; every
    // answer is cross-checked against brute force on the live clauses.
    let mut s = Solver::new();

    // PHP(6,5) first: thousands of conflicts to pump the learnt database.
    let (pigeons, holes) = (6usize, 5usize);
    let php = s.new_group();
    let p: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var()).collect())
        .collect();
    for row in &p {
        let clause: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
        s.add_clause_in(php, &clause);
    }
    #[allow(clippy::needless_range_loop)] // h indexes the inner dimension of every row
    for h in 0..holes {
        for i in 0..pigeons {
            for j in (i + 1)..pigeons {
                s.add_clause_in(php, &[Lit::neg(p[i][h]), Lit::neg(p[j][h])]);
            }
        }
    }
    assert_eq!(s.solve_with_assumptions(&[php.lit()]), SatResult::Unsat);
    let _ = s.retract(php);

    let mut rng = Lcg(0xC0FF_EE11);
    for round in 0..60 {
        let num_vars = 12;
        let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
        let g = s.new_group();
        let mut clauses = Vec::new();
        for _ in 0..51 {
            let mut clause = Vec::new();
            while clause.len() < 3 {
                let v = vars[(rng.next() % num_vars as u64) as usize];
                let lit = Lit::with_sign(v, rng.next() & 1 == 0);
                if !clause.contains(&lit) && !clause.contains(&!lit) {
                    clause.push(lit);
                }
            }
            s.add_clause_in(g, &clause);
            clauses.push(clause);
        }
        let expect = brute_force_from(vars[0].index(), num_vars, &clauses);
        let got = s.solve_with_assumptions(&[g.lit()]) == SatResult::Sat;
        assert_eq!(got, expect, "round {round}");
        if got {
            for clause in &clauses {
                assert!(
                    clause
                        .iter()
                        .any(|l| s.value(l.var()) == Some(l.is_positive())),
                    "model violates a clause in round {round}"
                );
            }
        }
        let _ = s.retract(g);
    }
}

#[test]
fn interleaved_solving_and_adding() {
    let mut rng = Lcg(0xBEE5);
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..10).map(|_| s.new_var()).collect();
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut alive = true;
    for _ in 0..80 {
        let mut clause = Vec::new();
        for _ in 0..=(rng.next() % 3) {
            let v = vars[(rng.next() % 10) as usize];
            let lit = Lit::with_sign(v, rng.next() & 1 == 0);
            if !clause.contains(&lit) {
                clause.push(lit);
            }
        }
        clauses.push(clause.clone());
        s.add_clause(&clause);
        let expect = brute_force(10, &clauses);
        let got = s.solve() == SatResult::Sat;
        assert_eq!(got, expect, "after {} clauses", clauses.len());
        if !expect {
            alive = false;
            break;
        }
    }
    // Once UNSAT, always UNSAT.
    if !alive {
        s.add_clause(&[Lit::pos(vars[0])]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }
}
