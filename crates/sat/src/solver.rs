use std::fmt;

/// A propositional variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// The variable's 0-based index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize // lint:allow(as-cast): u32 index fits usize on all supported targets
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    #[inline]
    pub fn pos(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    #[inline]
    pub fn neg(var: Var) -> Lit {
        Lit(var.0 << 1 | 1)
    }

    /// A literal of `var` with the given sign (`true` = positive).
    #[inline]
    pub fn with_sign(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The literal's variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    #[inline]
    fn code(self) -> usize {
        self.0 as usize // lint:allow(as-cast): u32 index fits usize on all supported targets
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}v{}",
            if self.is_positive() { "" } else { "¬" },
            self.0 >> 1
        )
    }
}

/// The outcome of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The instance (under the given assumptions, if any) is unsatisfiable.
    Unsat,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
}

type ClauseRef = usize;

#[derive(Clone, Copy, Debug)]
struct Watcher {
    clause: ClauseRef,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause needs no work.
    blocker: Lit,
}

/// A conflict-driven clause-learning SAT solver.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>, // indexed by literal code
    assign: Vec<LBool>,         // indexed by var
    phase: Vec<bool>,           // saved phases
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    activity: Vec<f64>,
    var_inc: f64,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>, // decision-level boundaries
    qhead: usize,
    ok: bool, // false once a top-level conflict is found
    conflicts: u64,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            ok: true,
            ..Default::default()
        }
    }

    /// Introduces a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(u32::try_from(self.assign.len()).expect("variable overflow")); // lint:allow(panic): size bounded far below the overflow point
        self.assign.push(LBool::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// The number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// The number of clauses added (original plus learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state after the addition (e.g. conflicting unit
    /// clauses); further solving will report [`SatResult::Unsat`].
    ///
    /// Duplicate literals are removed and tautological clauses (containing
    /// `l` and `¬l`) are silently accepted as no-ops.
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable not created by this solver.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.backtrack_to(0);
        let mut c: Vec<Lit> = lits.to_vec();
        for l in &c {
            assert!(
                l.var().index() < self.num_vars(),
                "unknown variable {:?}",
                l.var()
            );
        }
        c.sort();
        c.dedup();
        // Tautology?
        if c.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true;
        }
        // Remove literals already false at level 0; detect satisfied clauses.
        c.retain(|&l| self.lit_value(l) != LBool::False || self.level[l.var().index()] != 0);
        if c.iter().any(|&l| self.lit_value(l) == LBool::True) {
            return true;
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if self.lit_value(c[0]) == LBool::Undef {
                    self.enqueue(c[0], None);
                    self.ok = self.propagate().is_none();
                }
                self.ok
            }
            _ => {
                let cr = self.clauses.len();
                self.watch(c[0], c[1], cr);
                self.watch(c[1], c[0], cr);
                self.clauses.push(Clause { lits: c });
                true
            }
        }
    }

    fn watch(&mut self, lit: Lit, blocker: Lit, clause: ClauseRef) {
        self.watches[(!lit).code()].push(Watcher { clause, blocker });
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        match self.assign[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    /// The model value of `var` after a [`SatResult::Sat`] outcome; `None`
    /// before solving or after an unsatisfiable result.
    pub fn value(&self, var: Var) -> Option<bool> {
        match self.assign[var.index()] {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32 // lint:allow(as-cast): decision levels <= var count < 2^32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        let v = l.var().index();
        debug_assert_eq!(self.assign[v], LBool::Undef);
        self.assign[v] = if l.is_positive() {
            LBool::True
        } else {
            LBool::False
        };
        self.phase[v] = l.is_positive();
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            // Watchers keyed by the literal that became FALSE: ¬p.
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            while i < ws.len() {
                let w = ws[i];
                if self.lit_value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cr = w.clause;
                // Normalize: watched literals are lits[0] and lits[1]; put the
                // false one (¬p) at position 1.
                let false_lit = !p;
                {
                    let clause = &mut self.clauses[cr];
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                    debug_assert_eq!(clause.lits[1], false_lit);
                }
                let first = self.clauses[cr].lits[0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[i] = Watcher {
                        clause: cr,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let mut found = None;
                for k in 2..self.clauses[cr].lits.len() {
                    if self.lit_value(self.clauses[cr].lits[k]) != LBool::False {
                        found = Some(k);
                        break;
                    }
                }
                if let Some(k) = found {
                    let lk = self.clauses[cr].lits[k];
                    self.clauses[cr].lits.swap(1, k);
                    self.watches[(!lk).code()].push(Watcher {
                        clause: cr,
                        blocker: first,
                    });
                    ws.swap_remove(i);
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == LBool::False {
                    // Conflict: restore remaining watchers and report.
                    self.watches[p.code()].extend_from_slice(&ws[i..]);
                    ws.truncate(i);
                    self.watches[p.code()].extend_from_slice(&ws);
                    self.qhead = self.trail.len();
                    return Some(cr);
                }
                self.enqueue(first, Some(cr));
                i += 1;
            }
            self.watches[p.code()].extend_from_slice(&ws);
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis; returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();

        loop {
            let start = usize::from(p.is_some());
            let lits = self.clauses[confl].lits.clone();
            for &q in &lits[start..] {
                let v = q.var().index();
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(v);
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail back to the next seen literal at this level.
            loop {
                idx -= 1;
                if seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let lit = self.trail[idx];
            let v = lit.var().index();
            seen[v] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            confl = self.reason[v].expect("non-decision literal has a reason"); // lint:allow(panic): internal invariant; the message states it
            p = Some(lit);
        }
        let uip = !p.expect("loop sets p before breaking"); // lint:allow(panic): internal invariant; the message states it
        let mut clause = vec![uip];
        clause.extend_from_slice(&learnt);
        // Backjump level: second-highest level in the clause.
        let bj = clause[1..]
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        // Put a literal of the backjump level at index 1 (watch invariant).
        if clause.len() > 2 {
            let pos = clause[1..]
                .iter()
                .position(|l| self.level[l.var().index()] == bj)
                .expect("max exists") // lint:allow(panic): internal invariant; the message states it
                + 1;
            clause.swap(1, pos);
        }
        (clause, bj)
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0"); // lint:allow(panic): internal invariant; the message states it
            for &l in &self.trail[lim..] {
                let v = l.var().index();
                self.assign[v] = LBool::Undef;
                self.reason[v] = None;
            }
            self.trail.truncate(lim);
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<usize> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == LBool::Undef
                && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        best.map(|v| Lit::with_sign(Var(v as u32), self.phase[v])) // lint:allow(as-cast): var count < 2^32 (Var wraps u32)
    }

    /// Solves the current formula.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under temporary assumptions (forced first decisions). The
    /// assumptions do not persist: subsequent calls start fresh.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }

        let mut luby_index = 0u32;
        let mut conflict_budget = 100u64 * luby(luby_index);

        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                // Never learn below the assumption levels: if the conflict is
                // at or below them, the assumptions are jointly infeasible.
                if (self.decision_level() as usize) <= assumptions.len() {
                    // lint:allow(as-cast): u32 index fits usize on all supported targets
                    return SatResult::Unsat;
                }
                let (clause, mut bj) = self.analyze(confl);
                if (bj as usize) < assumptions.len() {
                    // lint:allow(as-cast): u32 index fits usize on all supported targets
                    bj = assumptions.len() as u32; // lint:allow(as-cast): assumption count <= var count < 2^32
                }
                self.backtrack_to(bj);
                if clause.len() == 1 {
                    if self.lit_value(clause[0]) == LBool::False {
                        return SatResult::Unsat;
                    }
                    if self.lit_value(clause[0]) == LBool::Undef {
                        self.enqueue(clause[0], None);
                    }
                } else {
                    let cr = self.clauses.len();
                    self.watch(clause[0], clause[1], cr);
                    self.watch(clause[1], clause[0], cr);
                    let asserting = clause[0];
                    self.clauses.push(Clause { lits: clause });
                    if self.lit_value(asserting) == LBool::Undef {
                        self.enqueue(asserting, Some(cr));
                    }
                }
                self.var_inc /= 0.95;
                if self.conflicts >= conflict_budget {
                    // Restart (keep assumption levels).
                    luby_index += 1;
                    conflict_budget = self.conflicts + 100 * luby(luby_index);
                    self.backtrack_to(assumptions.len() as u32); // lint:allow(as-cast): assumption count <= var count < 2^32
                }
            } else {
                // Place pending assumptions.
                if (self.decision_level() as usize) < assumptions.len() {
                    // lint:allow(as-cast): u32 index fits usize on all supported targets
                    let a = assumptions[self.decision_level() as usize]; // lint:allow(as-cast): u32 index fits usize on all supported targets
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already implied; open an empty decision level
                            // to keep level bookkeeping aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => return SatResult::Unsat,
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.decide() {
                    None => return SatResult::Sat,
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, None);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence (0-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
fn luby(i: u32) -> u64 {
    let mut i = u64::from(i) + 1;
    loop {
        let k = 64 - u64::from(i.leading_zeros()); // ⌊log2 i⌋ + 1
        if i == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let mut s = Solver::new();
        let v = s.new_var();
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(p.var(), v);
        assert_eq!(Lit::with_sign(v, true), p);
        assert_eq!(Lit::with_sign(v, false), n);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause(&[Lit::pos(a)]));
        assert!(s.add_clause(&[Lit::neg(a), Lit::pos(b)]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn conflicting_units_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        let ok = s.add_clause(&[Lit::neg(a)]);
        assert!(!ok);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautology_is_noop() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[Lit::pos(a), Lit::neg(a)]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn duplicate_literals_deduped() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(a), Lit::pos(b)]);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn xor_chain_sat() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x2 ⊕ x3 = 1 encoded as CNF.
        let mut s = Solver::new();
        let v: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        for w in v.windows(2) {
            let (a, b) = (w[0], w[1]);
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        }
        assert_eq!(s.solve(), SatResult::Sat);
        let m: Vec<bool> = v.iter().map(|&x| s.value(x).unwrap()).collect();
        assert!(m[0] != m[1] && m[1] != m[2] && m[2] != m[3]);
    }

    #[test]
    fn luby_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }
}
