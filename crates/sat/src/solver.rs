use std::fmt;

/// A propositional variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// The variable's 0-based index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize // lint:allow(as-cast): u32 index fits usize on all supported targets
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    #[inline]
    pub fn pos(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    #[inline]
    pub fn neg(var: Var) -> Lit {
        Lit(var.0 << 1 | 1)
    }

    /// A literal of `var` with the given sign (`true` = positive).
    #[inline]
    pub fn with_sign(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The literal's variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    #[inline]
    fn code(self) -> usize {
        self.0 as usize // lint:allow(as-cast): u32 index fits usize on all supported targets
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}v{}",
            if self.is_positive() { "" } else { "¬" },
            self.0 >> 1
        )
    }
}

/// The outcome of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The instance (under the given assumptions, if any) is unsatisfiable.
    Unsat,
}

/// A retractable clause group (see [`Solver::new_group`]).
///
/// Every clause added through [`Solver::add_clause_in`] carries the group's
/// negated activation literal, so the clauses only constrain a query whose
/// assumptions include [`Group::lit`]. [`Solver::retract`] permanently
/// disables (and physically sweeps) the group.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Group(Var);

impl Group {
    /// The assumption literal that activates this group's clauses. Pass it
    /// (first) in the assumption list of every query that should see the
    /// group.
    #[inline]
    pub fn lit(self) -> Lit {
        Lit::pos(self.0)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    /// Conflict-learnt clauses are redundant (implied by the originals) and
    /// eligible for database reduction; originals are not.
    learnt: bool,
    /// Activity for the learnt-database reduction heuristic (unused on
    /// originals).
    act: f64,
}

type ClauseRef = usize;

#[derive(Clone, Copy, Debug)]
struct Watcher {
    clause: ClauseRef,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause needs no work.
    blocker: Lit,
}

/// Placeholder filling reserved-but-unused watch-arena slots.
const FILLER: Watcher = Watcher {
    clause: usize::MAX,
    blocker: Lit(0),
};

/// Occupancy bookkeeping of one literal's watch list inside the arena.
#[derive(Clone, Copy, Debug, Default)]
struct WatchRange {
    start: usize,
    len: usize,
    cap: usize,
}

/// All watch lists in one flat allocation: per literal a `(start, len, cap)`
/// range into a shared `Vec<Watcher>`. A list that outgrows its capacity is
/// relocated to the end of the arena with doubled capacity (classic amortized
/// growth), leaving a dead span behind; when more than half the arena is dead
/// the whole thing is compacted in literal order. Compared to
/// `Vec<Vec<Watcher>>` this keeps the hot propagation loop walking one
/// contiguous buffer and drops per-list allocator traffic.
#[derive(Debug, Default)]
struct WatchArena {
    data: Vec<Watcher>,
    ranges: Vec<WatchRange>,
    /// Slots abandoned by relocation, reclaimable by [`WatchArena::compact`].
    dead: usize,
}

/// Compact once dead slots outnumber live-plus-reserved ones and the arena is
/// big enough for the rebuild to be worth it.
const COMPACT_MIN_SLOTS: usize = 4096;

impl WatchArena {
    /// Registers watch lists for one more variable (two literals).
    fn add_var(&mut self) {
        self.ranges.push(WatchRange::default());
        self.ranges.push(WatchRange::default());
    }

    fn push(&mut self, code: usize, w: Watcher) {
        let r = self.ranges[code];
        if r.len == r.cap {
            let new_cap = (r.cap * 2).max(4);
            let new_start = self.data.len();
            self.data.extend_from_within(r.start..r.start + r.len);
            self.data.resize(new_start + new_cap, FILLER);
            self.dead += r.cap;
            self.ranges[code] = WatchRange {
                start: new_start,
                len: r.len,
                cap: new_cap,
            };
        }
        let r = &mut self.ranges[code];
        self.data[r.start + r.len] = w;
        r.len += 1;
        if self.dead > self.data.len() / 2 && self.data.len() > COMPACT_MIN_SLOTS {
            self.compact();
        }
    }

    /// Moves literal `code`'s watchers into `out` (which is cleared first)
    /// and empties the list in place, keeping its reserved capacity.
    fn drain_into(&mut self, code: usize, out: &mut Vec<Watcher>) {
        out.clear();
        let r = &mut self.ranges[code];
        out.extend_from_slice(&self.data[r.start..r.start + r.len]);
        r.len = 0;
    }

    /// Rewrites the arena with every list stored contiguously in literal
    /// order (plus a little headroom), reclaiming dead slots.
    fn compact(&mut self) {
        let mut data = Vec::with_capacity(self.data.len() - self.dead);
        for r in &mut self.ranges {
            let start = data.len();
            data.extend_from_slice(&self.data[r.start..r.start + r.len]);
            let cap = r.len + 2;
            data.resize(start + cap, FILLER);
            *r = WatchRange {
                start,
                len: r.len,
                cap,
            };
        }
        self.data = data;
        self.dead = 0;
    }

    /// Empties every list (capacities are reclaimed too); used when the
    /// clause database is rebuilt and rewatched from scratch.
    fn clear(&mut self) {
        self.data.clear();
        self.dead = 0;
        for r in &mut self.ranges {
            *r = WatchRange::default();
        }
    }

    /// Total live watcher count (diagnostics and integrity tests).
    fn live(&self) -> usize {
        self.ranges.iter().map(|r| r.len).sum()
    }
}

/// Auto-reduce the learnt database once it holds this many clauses (see
/// [`Solver::reduce_learnts`]; reached only by long incremental sessions).
const LEARNT_LIMIT: usize = 2000;

/// A conflict-driven clause-learning SAT solver built for *incremental* use:
/// phases and variable activities persist across [`Solver::solve`] calls,
/// clauses can be added between calls, scoped clause sets live in retractable
/// [`Group`]s, and the learnt database is periodically reduced so a
/// long-lived instance stays lean.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: WatchArena,
    assign: Vec<LBool>, // indexed by var
    phase: Vec<bool>,   // saved phases, persisted across solve calls
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>, // decision-level boundaries
    qhead: usize,
    ok: bool, // false once a top-level conflict is found
    conflicts: u64,
    learnts: usize,
    /// Reusable buffer for the watch lists drained during propagation.
    scratch: Vec<Watcher>,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            ..Default::default()
        }
    }

    /// Introduces a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(u32::try_from(self.assign.len()).expect("variable overflow")); // lint:allow(panic): size bounded far below the overflow point
        self.assign.push(LBool::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.add_var();
        v
    }

    /// The number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// The number of clauses currently stored (original plus learnt; sweeps
    /// and reductions shrink this).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The number of learnt clauses currently stored.
    pub fn num_learnts(&self) -> usize {
        self.learnts
    }

    /// Conflicts resolved since the solver was created.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Whether the solver is still consistent: `false` once a top-level
    /// conflict has been found, after which every solve call reports
    /// [`SatResult::Unsat`].
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Opens a retractable clause group. Clauses added with
    /// [`add_clause_in`](Solver::add_clause_in) are active only in queries
    /// that assume [`Group::lit`], and [`retract`](Solver::retract) disposes
    /// of the whole group (including any learnt clauses derived from it).
    pub fn new_group(&mut self) -> Group {
        Group(self.new_var())
    }

    /// Adds a clause to a retractable group: the stored clause is
    /// `lits ∨ ¬g`, so it only binds under the `g` assumption. Returns
    /// `false` if the solver is already in an unsatisfiable state. Adding to
    /// a retracted group is a sound no-op (the stored clause is satisfied).
    pub fn add_clause_in(&mut self, group: Group, lits: &[Lit]) -> bool {
        let mut c = Vec::with_capacity(lits.len() + 1);
        c.extend_from_slice(lits);
        c.push(!group.lit());
        self.add_clause(&c)
    }

    /// Permanently disables `group` and sweeps its clauses (and every learnt
    /// clause derived from them — they all carry the group's negated
    /// activation literal) out of the database. Returns the number of
    /// clauses physically removed by the sweep.
    ///
    /// The activation variable is asserted false at the top level, so the
    /// group's clauses become globally satisfied before removal: retraction
    /// never un-derives anything the solver learnt from *other* clauses.
    pub fn retract(&mut self, group: Group) -> usize {
        self.backtrack_to(0);
        // `ok` may go false here only if some query *required* the group
        // (i.e. `g` is a top-level implication), which callers treat as the
        // usual global-Unsat state.
        self.add_clause(&[!group.lit()]);
        let (_, swept) = self.rebuild_db(|_, _| false);
        swept
    }

    /// Reduces the learnt-clause database: drops the lower-activity half of
    /// the learnt clauses (originals are never touched) and rebuilds the
    /// watch arena. Returns the number of clauses dropped. Called
    /// automatically by [`solve_with_assumptions`](Self::solve_with_assumptions)
    /// once the learnt count passes an internal limit; public so stress
    /// tests can force it.
    pub fn reduce_learnts(&mut self) -> usize {
        self.backtrack_to(0);
        let mut ranked: Vec<(f64, ClauseRef)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt)
            .map(|(i, c)| (c.act, i))
            .collect();
        if ranked.len() < 2 {
            return 0;
        }
        ranked.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let mut kill = vec![false; self.clauses.len()];
        for &(_, cr) in &ranked[..ranked.len() / 2] {
            kill[cr] = true;
        }
        let (dropped, _) = self.rebuild_db(|cr, _| kill[cr]);
        dropped
    }

    /// Rebuilds the clause database at decision level 0: drops clauses
    /// flagged by `drop_clause`, sweeps clauses satisfied at the top level,
    /// strips top-level-false literals, rewatches everything, and
    /// re-propagates any units this uncovers. Returns
    /// `(dropped_by_predicate, swept_satisfied)`.
    ///
    /// Safe at level 0 because top-level assignments are permanent (never
    /// backtracked) and conflict analysis skips level-0 literals, so their
    /// `reason` references — the only stored `ClauseRef`s outside the watch
    /// lists — may be cleared instead of remapped.
    fn rebuild_db(
        &mut self,
        mut drop_clause: impl FnMut(ClauseRef, &Clause) -> bool,
    ) -> (usize, usize) {
        debug_assert_eq!(self.decision_level(), 0);
        for &l in &self.trail {
            self.reason[l.var().index()] = None;
        }
        let old = std::mem::take(&mut self.clauses);
        let mut dropped = 0usize;
        let mut swept = 0usize;
        let mut units: Vec<Lit> = Vec::new();
        let mut kept: Vec<Clause> = Vec::with_capacity(old.len());
        for (cr, mut c) in old.into_iter().enumerate() {
            if drop_clause(cr, &c) {
                dropped += 1;
                continue;
            }
            if c.lits.iter().any(|&l| self.lit_value(l) == LBool::True) {
                swept += 1;
                continue;
            }
            c.lits.retain(|&l| self.lit_value(l) != LBool::False);
            match c.lits.len() {
                0 => self.ok = false,
                1 => units.push(c.lits[0]),
                _ => kept.push(c),
            }
        }
        self.clauses = kept;
        self.learnts = self.clauses.iter().filter(|c| c.learnt).count();
        self.watches.clear();
        for cr in 0..self.clauses.len() {
            let (a, b) = (self.clauses[cr].lits[0], self.clauses[cr].lits[1]);
            self.watch(a, b, cr);
            self.watch(b, a, cr);
        }
        for u in units {
            match self.lit_value(u) {
                LBool::Undef => self.enqueue(u, None),
                LBool::False => self.ok = false,
                LBool::True => {}
            }
        }
        if self.ok && self.propagate().is_some() {
            self.ok = false;
        }
        (dropped, swept)
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state after the addition (e.g. conflicting unit
    /// clauses); further solving will report [`SatResult::Unsat`].
    ///
    /// Duplicate literals are removed and tautological clauses (containing
    /// `l` and `¬l`) are silently accepted as no-ops.
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable not created by this solver.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.backtrack_to(0);
        let mut c: Vec<Lit> = lits.to_vec();
        for l in &c {
            assert!(
                l.var().index() < self.num_vars(),
                "unknown variable {:?}",
                l.var()
            );
        }
        c.sort();
        c.dedup();
        // Tautology?
        if c.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true;
        }
        // Remove literals already false at level 0; detect satisfied clauses.
        c.retain(|&l| self.lit_value(l) != LBool::False || self.level[l.var().index()] != 0);
        if c.iter().any(|&l| self.lit_value(l) == LBool::True) {
            return true;
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if self.lit_value(c[0]) == LBool::Undef {
                    self.enqueue(c[0], None);
                    self.ok = self.propagate().is_none();
                }
                self.ok
            }
            _ => {
                let cr = self.clauses.len();
                self.watch(c[0], c[1], cr);
                self.watch(c[1], c[0], cr);
                self.clauses.push(Clause {
                    lits: c,
                    learnt: false,
                    act: 0.0,
                });
                true
            }
        }
    }

    fn watch(&mut self, lit: Lit, blocker: Lit, clause: ClauseRef) {
        self.watches
            .push((!lit).code(), Watcher { clause, blocker });
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        match self.assign[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    /// The model value of `var` after a [`SatResult::Sat`] outcome; `None`
    /// before solving or after an unsatisfiable result.
    pub fn value(&self, var: Var) -> Option<bool> {
        match self.assign[var.index()] {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32 // lint:allow(as-cast): decision levels <= var count < 2^32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        let v = l.var().index();
        debug_assert_eq!(self.assign[v], LBool::Undef);
        self.assign[v] = if l.is_positive() {
            LBool::True
        } else {
            LBool::False
        };
        self.phase[v] = l.is_positive();
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            // Watchers keyed by the literal that became FALSE: ¬p. Drain
            // p's list into the reusable scratch buffer; survivors are
            // pushed straight back into the (now empty) arena range.
            let mut ws = std::mem::take(&mut self.scratch);
            self.watches.drain_into(p.code(), &mut ws);
            let mut conflict = None;
            let mut i = 0;
            while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.lit_value(w.blocker) == LBool::True {
                    self.watches.push(p.code(), w);
                    continue;
                }
                let cr = w.clause;
                // Normalize: watched literals are lits[0] and lits[1]; put the
                // false one (¬p) at position 1.
                let false_lit = !p;
                {
                    let clause = &mut self.clauses[cr];
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                    debug_assert_eq!(clause.lits[1], false_lit);
                }
                let first = self.clauses[cr].lits[0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    self.watches.push(
                        p.code(),
                        Watcher {
                            clause: cr,
                            blocker: first,
                        },
                    );
                    continue;
                }
                // Find a new literal to watch.
                let mut found = None;
                for k in 2..self.clauses[cr].lits.len() {
                    if self.lit_value(self.clauses[cr].lits[k]) != LBool::False {
                        found = Some(k);
                        break;
                    }
                }
                if let Some(k) = found {
                    let lk = self.clauses[cr].lits[k];
                    self.clauses[cr].lits.swap(1, k);
                    self.watches.push(
                        (!lk).code(),
                        Watcher {
                            clause: cr,
                            blocker: first,
                        },
                    );
                    continue;
                }
                // Clause is unit or conflicting; it keeps watching p.
                self.watches.push(
                    p.code(),
                    Watcher {
                        clause: cr,
                        blocker: first,
                    },
                );
                if self.lit_value(first) == LBool::False {
                    // Conflict: restore the unprocessed watchers and report.
                    while i < ws.len() {
                        self.watches.push(p.code(), ws[i]);
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(cr);
                    break;
                }
                self.enqueue(first, Some(cr));
            }
            self.scratch = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn cla_bump(&mut self, cr: ClauseRef) {
        if !self.clauses[cr].learnt {
            return;
        }
        self.clauses[cr].act += self.cla_inc;
        if self.clauses[cr].act > 1e100 {
            for c in &mut self.clauses {
                c.act *= 1e-100;
            }
            self.cla_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis; returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();

        loop {
            self.cla_bump(confl);
            let start = usize::from(p.is_some());
            let lits = self.clauses[confl].lits.clone();
            for &q in &lits[start..] {
                let v = q.var().index();
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(v);
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail back to the next seen literal at this level.
            loop {
                idx -= 1;
                if seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let lit = self.trail[idx];
            let v = lit.var().index();
            seen[v] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            confl = self.reason[v].expect("non-decision literal has a reason"); // lint:allow(panic): internal invariant; the message states it
            p = Some(lit);
        }
        let uip = !p.expect("loop sets p before breaking"); // lint:allow(panic): internal invariant; the message states it
        let mut clause = vec![uip];
        clause.extend_from_slice(&learnt);
        // Backjump level: second-highest level in the clause.
        let bj = clause[1..]
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        // Put a literal of the backjump level at index 1 (watch invariant).
        if clause.len() > 2 {
            let pos = clause[1..]
                .iter()
                .position(|l| self.level[l.var().index()] == bj)
                .expect("max exists") // lint:allow(panic): internal invariant; the message states it
                + 1;
            clause.swap(1, pos);
        }
        (clause, bj)
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0"); // lint:allow(panic): internal invariant; the message states it
            for &l in &self.trail[lim..] {
                let v = l.var().index();
                self.assign[v] = LBool::Undef;
                self.reason[v] = None;
            }
            self.trail.truncate(lim);
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<usize> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == LBool::Undef
                && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        best.map(|v| Lit::with_sign(Var(v as u32), self.phase[v])) // lint:allow(as-cast): var count < 2^32 (Var wraps u32)
    }

    /// Solves the current formula.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under temporary assumptions (forced first decisions). The
    /// assumptions do not persist: subsequent calls start fresh. Saved
    /// phases and variable activities *do* persist, so related consecutive
    /// queries guide each other.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        self.backtrack_to(0);
        if self.learnts > LEARNT_LIMIT {
            self.reduce_learnts();
            if !self.ok {
                return SatResult::Unsat;
            }
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }

        let mut luby_index = 0u32;
        let mut conflict_budget = 100u64 * luby(luby_index);

        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                // Never learn below the assumption levels: if the conflict is
                // at or below them, the assumptions are jointly infeasible.
                if (self.decision_level() as usize) <= assumptions.len() {
                    // lint:allow(as-cast): u32 index fits usize on all supported targets
                    return SatResult::Unsat;
                }
                let (clause, mut bj) = self.analyze(confl);
                if (bj as usize) < assumptions.len() {
                    // lint:allow(as-cast): u32 index fits usize on all supported targets
                    bj = assumptions.len() as u32; // lint:allow(as-cast): assumption count <= var count < 2^32
                }
                self.backtrack_to(bj);
                if clause.len() == 1 {
                    if self.lit_value(clause[0]) == LBool::False {
                        return SatResult::Unsat;
                    }
                    if self.lit_value(clause[0]) == LBool::Undef {
                        self.enqueue(clause[0], None);
                    }
                } else {
                    let cr = self.clauses.len();
                    self.watch(clause[0], clause[1], cr);
                    self.watch(clause[1], clause[0], cr);
                    let asserting = clause[0];
                    self.clauses.push(Clause {
                        lits: clause,
                        learnt: true,
                        act: self.cla_inc,
                    });
                    self.learnts += 1;
                    if self.lit_value(asserting) == LBool::Undef {
                        self.enqueue(asserting, Some(cr));
                    }
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                if self.conflicts >= conflict_budget {
                    // Restart (keep assumption levels).
                    luby_index += 1;
                    conflict_budget = self.conflicts + 100 * luby(luby_index);
                    self.backtrack_to(assumptions.len() as u32); // lint:allow(as-cast): assumption count <= var count < 2^32
                }
            } else {
                // Place pending assumptions.
                if (self.decision_level() as usize) < assumptions.len() {
                    // lint:allow(as-cast): u32 index fits usize on all supported targets
                    let a = assumptions[self.decision_level() as usize]; // lint:allow(as-cast): u32 index fits usize on all supported targets
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already implied; open an empty decision level
                            // to keep level bookkeeping aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => return SatResult::Unsat,
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.decide() {
                    None => return SatResult::Sat,
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, None);
                    }
                }
            }
        }
    }

    /// Internal consistency probe for the watch arena, used by the stress
    /// suite: every stored clause (length ≥ 2 after top-level
    /// simplification) must be watched on exactly its first two literals,
    /// and no watcher may point at a dropped clause.
    #[doc(hidden)]
    pub fn debug_check_watches(&self) -> Result<(), String> {
        let mut counts = vec![0usize; self.clauses.len()];
        for code in 0..self.num_vars() * 2 {
            let r = self.watches.ranges[code];
            for w in &self.watches.data[r.start..r.start + r.len] {
                if w.clause >= self.clauses.len() {
                    return Err(format!("watcher points at dead clause {}", w.clause));
                }
                let lits = &self.clauses[w.clause].lits;
                let watched = !Lit(u32::try_from(code).map_err(|_| "code overflow")?);
                if lits[0] != watched && lits[1] != watched {
                    return Err(format!(
                        "clause {} watched on non-watch literal {watched:?}",
                        w.clause
                    ));
                }
                counts[w.clause] += 1;
            }
        }
        for (cr, &n) in counts.iter().enumerate() {
            if n != 2 {
                return Err(format!("clause {cr} has {n} watchers, expected 2"));
            }
        }
        if self.watches.live() != self.clauses.len() * 2 {
            return Err("live watcher total does not match clause count".into());
        }
        Ok(())
    }
}

/// The Luby restart sequence (0-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
fn luby(i: u32) -> u64 {
    let mut i = u64::from(i) + 1;
    loop {
        let k = 64 - u64::from(i.leading_zeros()); // ⌊log2 i⌋ + 1
        if i == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let mut s = Solver::new();
        let v = s.new_var();
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(p.var(), v);
        assert_eq!(Lit::with_sign(v, true), p);
        assert_eq!(Lit::with_sign(v, false), n);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause(&[Lit::pos(a)]));
        assert!(s.add_clause(&[Lit::neg(a), Lit::pos(b)]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn conflicting_units_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        let ok = s.add_clause(&[Lit::neg(a)]);
        assert!(!ok);
        assert!(!s.is_ok());
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautology_is_noop() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[Lit::pos(a), Lit::neg(a)]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn duplicate_literals_deduped() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(a), Lit::pos(b)]);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn xor_chain_sat() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x2 ⊕ x3 = 1 encoded as CNF.
        let mut s = Solver::new();
        let v: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        for w in v.windows(2) {
            let (a, b) = (w[0], w[1]);
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        }
        assert_eq!(s.solve(), SatResult::Sat);
        let m: Vec<bool> = v.iter().map(|&x| s.value(x).unwrap()).collect();
        assert!(m[0] != m[1] && m[1] != m[2] && m[2] != m[3]);
    }

    #[test]
    fn luby_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn group_clauses_bind_only_under_activation() {
        let mut s = Solver::new();
        let a = s.new_var();
        let g = s.new_group();
        assert!(s.add_clause_in(g, &[Lit::pos(a)]));
        // Without the activation assumption the group clause is soft.
        assert_eq!(s.solve_with_assumptions(&[Lit::neg(a)]), SatResult::Sat);
        // With it, the clause binds and contradicts the assumption.
        assert_eq!(
            s.solve_with_assumptions(&[g.lit(), Lit::neg(a)]),
            SatResult::Unsat
        );
        // The solver itself stays consistent.
        assert!(s.is_ok());
        assert_eq!(s.solve_with_assumptions(&[g.lit()]), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn retract_sweeps_group_clauses() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        let g = s.new_group();
        s.add_clause_in(g, &[Lit::neg(a)]);
        s.add_clause_in(g, &[Lit::neg(b)]);
        assert_eq!(s.num_clauses(), 3);
        assert_eq!(s.solve_with_assumptions(&[g.lit()]), SatResult::Unsat);
        let swept = s.retract(g);
        assert!(swept >= 2, "group clauses must be swept, got {swept}");
        assert_eq!(s.num_clauses(), 1);
        assert_eq!(s.solve(), SatResult::Sat);
        s.debug_check_watches().unwrap();
    }

    #[test]
    fn watch_arena_relocation_preserves_propagation() {
        // Many clauses watching the same literal force repeated arena
        // relocations of one hot list.
        let mut s = Solver::new();
        let hub = s.new_var();
        let spokes: Vec<Var> = (0..64).map(|_| s.new_var()).collect();
        for &sp in &spokes {
            s.add_clause(&[Lit::neg(hub), Lit::pos(sp)]);
        }
        s.add_clause(&[Lit::pos(hub)]);
        assert_eq!(s.solve(), SatResult::Sat);
        for &sp in &spokes {
            assert_eq!(s.value(sp), Some(true));
        }
        s.debug_check_watches().unwrap();
    }
}
