//! A from-scratch CDCL SAT solver.
//!
//! The DAC'16 flow computes satisfiability and observability don't-cares with
//! MVSIS `mfs` configured for "SAT-based computation" (§3.3). This crate is
//! the stand-in for that engine: a conflict-driven clause-learning solver
//! with two-watched-literal propagation, first-UIP conflict analysis,
//! VSIDS-style activities, phase saving and Luby restarts. It is sized for
//! the window-miter queries issued by `als-dontcare` (hundreds of variables)
//! but is a complete general-purpose solver.
//!
//! The solver is built for *incremental* sessions: watch lists live in a
//! flat arena, learnt clauses carry activities and are periodically reduced,
//! and scoped clause sets can be added to retractable [`Group`]s guarded by
//! activation literals (assume [`Group::lit`] to enable a group, call
//! [`Solver::retract`] to dispose of it). This lets one solver instance
//! serve a long sequence of related queries — e.g. an entire don't-care
//! window sweep — instead of re-encoding from scratch per query.
//!
//! # Example
//!
//! ```
//! use als_sat::{Lit, Solver, SatResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! // (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b)
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::pos(a), Lit::neg(b)]);
//! assert_eq!(s.solve(), SatResult::Sat);
//! assert_eq!(s.value(a), Some(true));
//! assert_eq!(s.value(b), Some(true));
//! // Adding (¬a ∨ ¬b) makes it unsatisfiable.
//! s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
//! assert_eq!(s.solve(), SatResult::Unsat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

mod solver;

pub use solver::{Group, Lit, SatResult, Solver, Var};

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force satisfiability check for cross-validation.
    fn brute_force(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
        'outer: for m in 0..(1u64 << num_vars) {
            for clause in clauses {
                let sat = clause.iter().any(|l| {
                    let v = m >> l.var().index() & 1 == 1;
                    v == l.is_positive()
                });
                if !sat {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    #[test]
    fn random_cnf_cross_check() {
        let mut state = 0x1357_9bdfu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state
        };
        for round in 0..200 {
            let num_vars = 4 + (next() % 5) as usize; // 4..8
            let num_clauses = 3 + (next() % 20) as usize;
            let mut solver = Solver::new();
            let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
            let mut clauses = Vec::new();
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let mut clause = Vec::new();
                for _ in 0..len {
                    let v = vars[(next() % num_vars as u64) as usize];
                    let lit = if next() & 1 == 0 {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    };
                    if !clause.contains(&lit) {
                        clause.push(lit);
                    }
                }
                clauses.push(clause);
            }
            for c in &clauses {
                solver.add_clause(c);
            }
            let expect = brute_force(num_vars, &clauses);
            let got = solver.solve() == SatResult::Sat;
            assert_eq!(got, expect, "round {round}: clauses {clauses:?}");
            if got {
                // The model must satisfy every clause.
                for clause in &clauses {
                    assert!(
                        clause
                            .iter()
                            .any(|l| solver.value(l.var()) == Some(l.is_positive())),
                        "model violates {clause:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // PHP(3,2): 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var()).collect())
            .collect();
        // Every pigeon in some hole.
        for row in &p {
            s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        // No two pigeons share a hole.
        #[allow(clippy::needless_range_loop)] // h indexes the inner dimension of every row
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&[Lit::neg(p[i][h]), Lit::neg(p[j][h])]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn assumptions_restrict_and_release() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        assert_eq!(s.solve_with_assumptions(&[Lit::neg(a)]), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
        assert_eq!(
            s.solve_with_assumptions(&[Lit::neg(a), Lit::neg(b)]),
            SatResult::Unsat
        );
        // Without assumptions the instance is still satisfiable.
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
        // Chain of implications v0 → v1 → ... → v7.
        for w in vars.windows(2) {
            s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        s.add_clause(&[Lit::pos(vars[0])]);
        assert_eq!(s.solve(), SatResult::Sat);
        for &v in &vars {
            assert_eq!(s.value(v), Some(true));
        }
        // Now force the last one false: unsat.
        s.add_clause(&[Lit::neg(vars[7])]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }
}
