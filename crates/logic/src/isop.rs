//! Minato–Morreale irredundant sum-of-products (ISOP) generation.
//!
//! Given an incompletely specified function as a pair of truth tables —
//! a lower bound `on` (must be covered) and an upper bound `upper`
//! (may be covered; `upper = on ∪ dc`) — [`isop`] produces an irredundant
//! cover `C` with `on ⊆ C ⊆ upper`.
//!
//! This plays the role ESPRESSO plays in the paper's classical flow: it is
//! the two-level minimizer invoked when (re-)expressing node functions.

use crate::{Cover, Cube, TruthTable};

/// Computes an irredundant SOP cover `C` with `on ⊆ C ⊆ upper` using the
/// Minato–Morreale recursion.
///
/// # Panics
///
/// Panics if the two tables have different variable counts or if
/// `on ⊄ upper` (the interval is empty).
///
/// # Example
///
/// ```
/// use als_logic::{isop, TruthTable};
///
/// // f = majority(x0, x1, x2), fully specified.
/// let f = TruthTable::from_fn(3, |m| (m.count_ones() >= 2))?;
/// let cover = isop(&f, &f);
/// assert_eq!(cover.to_truth_table(), f);
/// assert_eq!(cover.len(), 3); // x0x1 + x0x2 + x1x2
/// # Ok::<(), als_logic::LogicError>(())
/// ```
pub fn isop(on: &TruthTable, upper: &TruthTable) -> Cover {
    assert_eq!(
        on.num_vars(),
        upper.num_vars(),
        "isop bounds must share a support"
    );
    assert!(on.implies(upper), "isop interval is empty (on ⊄ upper)");
    let mut cover = Cover::new(on.num_vars());
    let cov = isop_rec(on, upper, on.num_vars(), &mut cover);
    debug_assert!(on.implies(&cov), "ISOP must cover the on-set");
    debug_assert!(cov.implies(upper), "ISOP must stay inside the upper bound");
    cover
}

/// Recursive core: appends cubes to `cover` and returns the truth table of
/// the cubes appended by this call.
fn isop_rec(on: &TruthTable, upper: &TruthTable, num_vars: usize, cover: &mut Cover) -> TruthTable {
    if on.is_zero() {
        return TruthTable::zero(num_vars).expect("support already validated"); // lint:allow(panic): variable count validated by the caller
    }
    if upper.is_one() {
        cover.push(Cube::UNIVERSE);
        return TruthTable::one(num_vars).expect("support already validated"); // lint:allow(panic): variable count validated by the caller
    }
    // Split on the top-most variable both bounds depend on.
    let var = (0..num_vars)
        .rev()
        .find(|&v| on.depends_on(v) || upper.depends_on(v))
        .expect("non-constant interval must depend on some variable"); // lint:allow(panic): internal invariant; the message states it

    let on0 = on.cofactor(var, false);
    let on1 = on.cofactor(var, true);
    let up0 = upper.cofactor(var, false);
    let up1 = upper.cofactor(var, true);

    // Cubes that must contain the literal x' (cannot extend to x side).
    let on0_only = &on0 & &!&up1;
    let mark = cover.len();
    let c0 = isop_rec(&on0_only, &up0, num_vars, cover);
    add_literal_to_new_cubes(cover, mark, var, false);

    // Cubes that must contain the literal x.
    let on1_only = &on1 & &!&up0;
    let mark = cover.len();
    let c1 = isop_rec(&on1_only, &up1, num_vars, cover);
    add_literal_to_new_cubes(cover, mark, var, true);

    // Remainder: minterms of the on-set not yet covered, which may be covered
    // by cubes independent of `var`.
    let rem_on = &(&on0 & &!&c0) | &(&on1 & &!&c1);
    let rem_up = &up0 & &up1;
    let cr = isop_rec(&rem_on, &rem_up, num_vars, cover);

    let x = TruthTable::var(num_vars, var).expect("var in range"); // lint:allow(panic): variable count validated by the caller
    let c0x = &c0 & &!&x;
    let c1x = &c1 & &x;
    &(&c0x | &c1x) | &cr
}

fn add_literal_to_new_cubes(cover: &mut Cover, from: usize, var: usize, phase: bool) {
    let cubes: Vec<Cube> = cover.cubes()[from..]
        .iter()
        .map(|c| {
            c.intersect(
                &Cube::from_literals(&[(var, phase)]).expect("single literal cube is valid"), // lint:allow(panic): cube literals are valid by construction
            )
            .expect("recursion guarantees the literal is free in sub-cubes") // lint:allow(panic): internal invariant; the message states it
        })
        .collect();
    let num_vars = cover.num_vars();
    let mut head = Cover::from_cubes(num_vars, cover.cubes()[..from].iter().copied());
    head.extend(cubes);
    *cover = head;
}

/// Convenience wrapper: minimizes a completely specified function.
pub fn isop_exact(f: &TruthTable) -> Cover {
    isop(f, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tt(num_vars: usize, f: impl FnMut(u64) -> bool) -> TruthTable {
        TruthTable::from_fn(num_vars, f).unwrap()
    }

    #[test]
    fn constant_functions() {
        let z = TruthTable::zero(3).unwrap();
        let o = TruthTable::one(3).unwrap();
        assert!(isop(&z, &z).is_empty());
        let c = isop(&o, &o);
        assert_eq!(c.len(), 1);
        assert!(c.has_universe_cube());
    }

    #[test]
    fn exact_cover_roundtrip_exhaustive_3vars() {
        // All 256 functions of 3 variables round-trip exactly.
        for bits in 0..256u64 {
            let f = tt(3, |m| bits >> m & 1 == 1);
            let c = isop_exact(&f);
            assert_eq!(c.to_truth_table(), f, "function {bits:#x}");
        }
    }

    #[test]
    fn dont_cares_reduce_literal_count() {
        // on = x0·x1, dc = x0·x1' → may expand to x0 (1 literal).
        let on = tt(2, |m| m == 0b11);
        let upper = tt(2, |m| m & 1 == 1);
        let c = isop(&on, &upper);
        assert!(on.implies(&c.to_truth_table()));
        assert!(c.to_truth_table().implies(&upper));
        assert_eq!(c.literal_count(), 1);
    }

    #[test]
    fn xor_needs_full_cubes() {
        let f = tt(2, |m| (m & 1) ^ (m >> 1 & 1) == 1);
        let c = isop_exact(&f);
        assert_eq!(c.len(), 2);
        assert_eq!(c.literal_count(), 4);
        assert_eq!(c.to_truth_table(), f);
    }

    #[test]
    fn majority_is_three_cubes() {
        let f = tt(3, |m| m.count_ones() >= 2);
        let c = isop_exact(&f);
        assert_eq!(c.len(), 3);
        assert_eq!(c.literal_count(), 6);
    }

    #[test]
    fn result_is_irredundant_on_random_functions() {
        // Removing any cube of the ISOP must uncover part of the on-set.
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..50 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let bits = state;
            let f = tt(4, |m| bits >> (m % 64) & 1 == 1);
            let c = isop_exact(&f);
            assert_eq!(c.to_truth_table(), f);
            for skip in 0..c.len() {
                let reduced = Cover::from_cubes(
                    4,
                    c.cubes()
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != skip)
                        .map(|(_, cu)| *cu),
                );
                assert!(
                    !f.implies(&reduced.to_truth_table()),
                    "cube {skip} was redundant"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "interval is empty")]
    fn empty_interval_panics() {
        let on = TruthTable::one(2).unwrap();
        let upper = TruthTable::zero(2).unwrap();
        let _ = isop(&on, &upper);
    }
}
