//! Algebraic factoring: turning an SOP cover into a compact factored form.
//!
//! Follows the MIS `quick_factor` lineage: pick a divisor (a level-0 kernel
//! if one exists, else the best single literal), divide, and recurse on
//! quotient, divisor and remainder. The result is an [`Expr`] whose literal
//! count is the *factored-form literal count* — the area estimate the DAC'16
//! paper optimizes.

use crate::division::{divide, divide_by_literal};
use crate::kernel::one_level0_kernel;
use crate::{Cover, Cube, Expr};

/// Factors an SOP cover into a factored-form expression.
///
/// The transformation is purely algebraic, so the result is functionally
/// identical to the input cover, and never has more literals than the flat
/// SOP.
///
/// # Example
///
/// ```
/// use als_logic::{Cover, Cube, factor::factor_cover};
///
/// // ab + ac → a(b + c)
/// let f = Cover::from_cubes(3, [
///     Cube::from_literals(&[(0, true), (1, true)])?,
///     Cube::from_literals(&[(0, true), (2, true)])?,
/// ]);
/// let e = factor_cover(&f);
/// assert_eq!(e.literal_count(), 3);
/// assert_eq!(e.to_string(), "x0(x1 + x2)");
/// # Ok::<(), als_logic::LogicError>(())
/// ```
pub fn factor_cover(f: &Cover) -> Expr {
    let mut deduped = f.clone();
    deduped.remove_contained_cubes();
    let expr = factor_rec(&deduped);
    debug_assert_eq!(
        expr.to_truth_table(f.num_vars()),
        f.to_truth_table(),
        "factoring must preserve the function"
    );
    expr
}

fn factor_rec(f: &Cover) -> Expr {
    if f.is_empty() {
        return Expr::FALSE;
    }
    if f.has_universe_cube() {
        return Expr::TRUE;
    }
    if f.len() == 1 {
        return cube_to_expr(&f.cubes()[0]);
    }
    // Pull out the common cube first: F = C · F'.
    let (common, cube_free) = f.make_cube_free();
    if !common.is_universe() {
        let inner = factor_rec(&cube_free);
        return Expr::and(vec![cube_to_expr(&common), inner]);
    }
    // Choose a divisor: a level-0 kernel when available, else the most
    // frequent literal.
    if let Some(divisor) = one_level0_kernel(f) {
        if divisor.len() >= 2 && divisor.sorted() != f.sorted() {
            let division = divide(f, &divisor);
            if !division.quotient.is_empty() {
                let q = factor_rec(&division.quotient);
                let d = factor_rec(&divisor);
                let r = factor_rec(&division.remainder);
                return Expr::or(vec![Expr::and(vec![q, d]), r]);
            }
        }
    }
    if let Some((var, phase)) = best_literal(f) {
        let division = divide_by_literal(f, var, phase);
        if !division.quotient.is_empty() && division.quotient.len() < f.len() {
            let q = factor_rec(&division.quotient);
            let r = factor_rec(&division.remainder);
            return Expr::or(vec![Expr::and(vec![Expr::lit(var, phase), q]), r]);
        }
    }
    // No sharing to exploit: emit the flat OR-of-cubes.
    Expr::or(f.cubes().iter().map(cube_to_expr).collect())
}

/// The literal occurring in the most cubes (ties to the lowest variable,
/// positive phase first); `None` if no literal occurs at least twice.
fn best_literal(f: &Cover) -> Option<(usize, bool)> {
    let occ = f.literal_occurrences();
    let mut best: Option<(usize, bool, usize)> = None;
    for (var, &(p, n)) in occ.iter().enumerate() {
        for (phase, count) in [(true, p), (false, n)] {
            if count >= 2 && best.is_none_or(|(_, _, c)| count > c) {
                best = Some((var, phase, count));
            }
        }
    }
    best.map(|(v, p, _)| (v, p))
}

fn cube_to_expr(cube: &Cube) -> Expr {
    Expr::and(
        cube.literals()
            .map(|(var, phase)| Expr::lit(var, phase))
            .collect(),
    )
}

/// Factors a cover and returns both the expression and the literal saving
/// relative to the flat SOP form.
pub fn factor_with_stats(f: &Cover) -> (Expr, usize) {
    let expr = factor_cover(f);
    let saving = f.literal_count().saturating_sub(expr.literal_count());
    (expr, saving)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TruthTable;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    #[test]
    fn constants() {
        assert_eq!(factor_cover(&Cover::constant_zero(2)), Expr::FALSE);
        assert_eq!(factor_cover(&Cover::constant_one(2)), Expr::TRUE);
    }

    #[test]
    fn single_cube() {
        let f = Cover::from_cubes(3, [cube(&[(0, true), (2, false)])]);
        let e = factor_cover(&f);
        assert_eq!(e.to_string(), "x0x2'");
        assert_eq!(e.literal_count(), 2);
    }

    #[test]
    fn distributive_example() {
        // ac + ad + bc + bd → (a + b)(c + d): 4 literals from 8.
        let f = Cover::from_cubes(
            4,
            [
                cube(&[(0, true), (2, true)]),
                cube(&[(0, true), (3, true)]),
                cube(&[(1, true), (2, true)]),
                cube(&[(1, true), (3, true)]),
            ],
        );
        let (e, saving) = factor_with_stats(&f);
        assert_eq!(e.literal_count(), 4);
        assert_eq!(saving, 4);
        assert_eq!(e.to_truth_table(4), f.to_truth_table());
    }

    #[test]
    fn common_cube_extraction() {
        // abc + abd → ab(c + d)
        let f = Cover::from_cubes(
            4,
            [
                cube(&[(0, true), (1, true), (2, true)]),
                cube(&[(0, true), (1, true), (3, true)]),
            ],
        );
        let e = factor_cover(&f);
        assert_eq!(e.literal_count(), 4);
    }

    #[test]
    fn xor_cannot_factor() {
        let f = Cover::from_cubes(
            2,
            [
                cube(&[(0, true), (1, false)]),
                cube(&[(0, false), (1, true)]),
            ],
        );
        let e = factor_cover(&f);
        assert_eq!(e.literal_count(), 4);
        assert_eq!(e.to_truth_table(2), f.to_truth_table());
    }

    #[test]
    fn factoring_never_increases_literals() {
        let mut state = 0x0bad_cafeu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state
        };
        for _ in 0..60 {
            let nv = 5;
            let mut f = Cover::new(nv);
            for _ in 0..=(next() % 7) {
                let r = next();
                let mut lits = Vec::new();
                for v in 0..nv {
                    match r >> (3 * v) & 7 {
                        0 | 1 => lits.push((v, true)),
                        2 | 3 => lits.push((v, false)),
                        _ => {}
                    }
                }
                if let Ok(c) = Cube::from_literals(&lits) {
                    f.push(c);
                }
            }
            let mut dedup = f.clone();
            dedup.remove_contained_cubes();
            let e = factor_cover(&f);
            assert!(
                e.literal_count() <= dedup.literal_count(),
                "factored {} > sop {} for {}",
                e.literal_count(),
                dedup.literal_count(),
                f
            );
            assert_eq!(e.to_truth_table(nv), f.to_truth_table());
        }
    }

    #[test]
    fn factor_preserves_function_on_all_3var_functions() {
        use crate::isop::isop_exact;
        for bits in 0..256u64 {
            let tt = TruthTable::from_fn(3, |m| bits >> m & 1 == 1).unwrap();
            let cover = isop_exact(&tt);
            let e = factor_cover(&cover);
            assert_eq!(e.to_truth_table(3), tt, "function {bits:#x}");
        }
    }
}
