//! Unate recursive paradigm (URP) operations on covers: tautology checking,
//! complementation and containment — the classic ESPRESSO/MIS machinery,
//! working directly on cube lists without materializing truth tables (so
//! they scale past [`crate::MAX_VARS`]-style enumeration limits in cube
//! count, though variables stay bounded by the cube representation).

use crate::division::Division;
use crate::{Cover, Cube};

/// Whether the cover is a tautology (covers every minterm).
///
/// Uses unate reduction: a unate cover is a tautology iff it contains the
/// universal cube; otherwise the check splits on the most binate variable.
///
/// # Example
///
/// ```
/// use als_logic::{Cover, Cube};
/// use als_logic::urp::tautology;
///
/// // a + a' is a tautology.
/// let t = Cover::from_cubes(1, [
///     Cube::from_literals(&[(0, true)])?,
///     Cube::from_literals(&[(0, false)])?,
/// ]);
/// assert!(tautology(&t));
/// # Ok::<(), als_logic::LogicError>(())
/// ```
pub fn tautology(cover: &Cover) -> bool {
    if cover.has_universe_cube() {
        return true;
    }
    if cover.is_empty() {
        return false;
    }
    match most_binate_variable(cover) {
        None => {
            // Unate cover without the universal cube: never a tautology
            // (the all-against-phase minterm is uncovered).
            false
        }
        Some(var) => {
            tautology(&cover.cofactor(var, false)) && tautology(&cover.cofactor(var, true))
        }
    }
}

/// The variable appearing in both phases in the most cubes, or `None` if
/// the cover is unate.
fn most_binate_variable(cover: &Cover) -> Option<usize> {
    let occ = cover.literal_occurrences();
    occ.iter()
        .enumerate()
        .filter(|(_, &(p, n))| p > 0 && n > 0)
        .max_by_key(|(_, &(p, n))| p + n)
        .map(|(v, _)| v)
}

/// The complement of a cover, computed by Shannon recursion with single-cube
/// De Morgan at the leaves.
///
/// # Example
///
/// ```
/// use als_logic::{Cover, Cube};
/// use als_logic::urp::complement;
///
/// let f = Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)])?]);
/// let g = complement(&f); // (ab)' = a' + b'
/// assert_eq!(g.to_truth_table(), !&f.to_truth_table());
/// # Ok::<(), als_logic::LogicError>(())
/// ```
pub fn complement(cover: &Cover) -> Cover {
    let nv = cover.num_vars();
    if cover.is_empty() {
        return Cover::constant_one(nv);
    }
    if cover.has_universe_cube() {
        return Cover::constant_zero(nv);
    }
    if cover.len() == 1 {
        return complement_cube(&cover.cubes()[0], nv);
    }
    // Split on the most frequent variable (binate preferred).
    let var = most_binate_variable(cover).unwrap_or_else(|| {
        let occ = cover.literal_occurrences();
        occ.iter()
            .enumerate()
            .max_by_key(|(_, &(p, n))| p + n)
            .map(|(v, _)| v)
            .expect("non-empty cover mentions variables") // lint:allow(panic): internal invariant; the message states it
    });
    let c0 = complement(&cover.cofactor(var, false));
    let c1 = complement(&cover.cofactor(var, true));
    let mut out = Cover::new(nv);
    let lit0 = Cube::from_literals(&[(var, false)]).expect("single literal"); // lint:allow(panic): cube literals are valid by construction
    let lit1 = Cube::from_literals(&[(var, true)]).expect("single literal"); // lint:allow(panic): cube literals are valid by construction
    for c in c0.cubes() {
        out.push(c.intersect(&lit0).expect("cofactor freed the variable")); // lint:allow(panic): internal invariant; the message states it
    }
    for c in c1.cubes() {
        out.push(c.intersect(&lit1).expect("cofactor freed the variable")); // lint:allow(panic): internal invariant; the message states it
    }
    out.remove_contained_cubes();
    out
}

fn complement_cube(cube: &Cube, num_vars: usize) -> Cover {
    let mut out = Cover::new(num_vars);
    for (var, phase) in cube.literals() {
        out.push(Cube::from_literals(&[(var, !phase)]).expect("single literal"));
        // lint:allow(panic): cube literals are valid by construction
    }
    out
}

/// Whether `cover` contains `cube` (i.e. `cube ⇒ cover`), by the classical
/// cofactor-tautology reduction.
pub fn cover_contains_cube(cover: &Cover, cube: &Cube) -> bool {
    // Cofactor the cover against the cube and check tautology.
    let mut cof = cover.clone();
    for (var, phase) in cube.literals() {
        cof = cof.cofactor(var, phase);
    }
    tautology(&cof)
}

/// Removes cubes that are *Boolean*-redundant (covered by the rest of the
/// cover) — stronger than single-cube containment. Preserves the function.
pub fn make_irredundant(cover: &Cover) -> Cover {
    let mut kept: Vec<Cube> = cover.cubes().to_vec();
    let mut i = 0;
    while i < kept.len() {
        let candidate = kept[i];
        let rest = Cover::from_cubes(
            cover.num_vars(),
            kept.iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, c)| *c),
        );
        if cover_contains_cube(&rest, &candidate) {
            kept.remove(i);
        } else {
            i += 1;
        }
    }
    Cover::from_cubes(cover.num_vars(), kept)
}

/// Boolean (not just algebraic) division check: `divisor` divides `f`
/// evenly iff `f = q · divisor` for the algebraic quotient `q` with an
/// empty remainder after Boolean redundancy removal.
pub fn divides_exactly(f: &Cover, divisor: &Cover) -> Option<Division> {
    let div = crate::division::divide(f, divisor);
    if div.remainder.is_empty() && !div.quotient.is_empty() {
        Some(div)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TruthTable;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    #[test]
    fn tautology_detection() {
        let t = Cover::from_cubes(1, [cube(&[(0, true)]), cube(&[(0, false)])]);
        assert!(tautology(&t));
        let f = Cover::from_cubes(1, [cube(&[(0, true)])]);
        assert!(!tautology(&f));
        assert!(tautology(&Cover::constant_one(3)));
        assert!(!tautology(&Cover::constant_zero(3)));
        // ab + a'b + ab' + a'b' over 2 vars.
        let full = Cover::from_cubes(
            2,
            [
                cube(&[(0, true), (1, true)]),
                cube(&[(0, false), (1, true)]),
                cube(&[(0, true), (1, false)]),
                cube(&[(0, false), (1, false)]),
            ],
        );
        assert!(tautology(&full));
    }

    #[test]
    fn tautology_matches_truth_table_on_random_covers() {
        let mut state = 0x7777u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state
        };
        for _ in 0..200 {
            let nv = 4;
            let mut f = Cover::new(nv);
            for _ in 0..=(next() % 8) {
                let r = next();
                let mut lits = Vec::new();
                for v in 0..nv {
                    match r >> (2 * v) & 3 {
                        0 => lits.push((v, true)),
                        1 => lits.push((v, false)),
                        _ => {}
                    }
                }
                if let Ok(c) = Cube::from_literals(&lits) {
                    f.push(c);
                }
            }
            assert_eq!(tautology(&f), f.to_truth_table().is_one(), "cover {f}");
        }
    }

    #[test]
    fn complement_matches_truth_table_on_random_covers() {
        let mut state = 0xc0_ffeeu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state
        };
        for _ in 0..120 {
            let nv = 5;
            let mut f = Cover::new(nv);
            for _ in 0..(next() % 7) {
                let r = next();
                let mut lits = Vec::new();
                for v in 0..nv {
                    match r >> (2 * v) & 3 {
                        0 => lits.push((v, true)),
                        1 => lits.push((v, false)),
                        _ => {}
                    }
                }
                if let Ok(c) = Cube::from_literals(&lits) {
                    f.push(c);
                }
            }
            let g = complement(&f);
            assert_eq!(g.to_truth_table(), !&f.to_truth_table(), "cover {f}");
        }
    }

    #[test]
    fn containment_check() {
        // f = a + b contains cube ab but not a'b'.
        let f = Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]);
        assert!(cover_contains_cube(&f, &cube(&[(0, true), (1, true)])));
        assert!(!cover_contains_cube(&f, &cube(&[(0, false), (1, false)])));
        assert!(cover_contains_cube(
            &Cover::constant_one(2),
            &Cube::UNIVERSE
        ));
    }

    #[test]
    fn irredundant_removes_consensus_cube() {
        // ab + a'c + bc: bc is redundant (consensus of the others).
        let f = Cover::from_cubes(
            3,
            [
                cube(&[(0, true), (1, true)]),
                cube(&[(0, false), (2, true)]),
                cube(&[(1, true), (2, true)]),
            ],
        );
        let g = make_irredundant(&f);
        assert_eq!(g.len(), 2);
        assert_eq!(g.to_truth_table(), f.to_truth_table());
    }

    #[test]
    fn exact_division() {
        // f = ac + bc = (a + b)·c.
        let f = Cover::from_cubes(
            3,
            [cube(&[(0, true), (2, true)]), cube(&[(1, true), (2, true)])],
        );
        let d = Cover::from_cubes(3, [cube(&[(0, true)]), cube(&[(1, true)])]);
        let div = divides_exactly(&f, &d).expect("divides evenly");
        assert_eq!(div.quotient.cubes(), &[cube(&[(2, true)])]);
        let not_div = Cover::from_cubes(3, [cube(&[(0, true)]), cube(&[(2, false)])]);
        assert!(divides_exactly(&f, &not_div).is_none());
    }

    #[test]
    fn complement_twice_is_identity_functionally() {
        let f = Cover::from_cubes(3, [cube(&[(0, true), (1, false)]), cube(&[(2, true)])]);
        let ff = complement(&complement(&f));
        assert_eq!(ff.to_truth_table(), f.to_truth_table());
    }

    #[test]
    fn complement_of_empty_and_universe() {
        assert!(tautology(&complement(&Cover::constant_zero(2))));
        assert!(complement(&Cover::constant_one(2)).is_empty());
        let tt = TruthTable::zero(0).unwrap();
        let _ = tt; // zero-variable edge handled by Cover::new(0) paths
    }
}
