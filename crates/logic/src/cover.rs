use crate::{Cube, LogicError, TruthTable, MAX_VARS};
use std::fmt;

/// A sum-of-products (SOP) cover: a disjunction of [`Cube`]s over a fixed
/// number of local variables.
///
/// This is the two-level node representation of MIS/SIS-style Boolean
/// networks. The empty cover is the constant-0 function; a cover containing
/// the universal cube is the constant-1 function.
///
/// # Example
///
/// ```
/// use als_logic::{Cover, Cube};
///
/// // f = x0·x1 + x2'
/// let mut f = Cover::new(3);
/// f.push(Cube::from_literals(&[(0, true), (1, true)])?);
/// f.push(Cube::from_literals(&[(2, false)])?);
/// assert!(f.eval(0b011)); // x0=x1=1
/// assert!(f.eval(0b000)); // x2=0
/// assert!(!f.eval(0b100)); // only x2=1
/// assert_eq!(f.literal_count(), 3);
/// # Ok::<(), als_logic::LogicError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Cover {
    num_vars: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// Creates an empty (constant-0) cover over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > MAX_VARS`; use [`Cover::try_new`] to handle the
    /// error instead.
    pub fn new(num_vars: usize) -> Self {
        Self::try_new(num_vars).expect("num_vars exceeds MAX_VARS") // lint:allow(panic): documented panic contract; the `try_` twin is the fallible entry
    }

    /// Creates an empty (constant-0) cover over `num_vars` variables.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TooManyVars`] if `num_vars > MAX_VARS`.
    pub fn try_new(num_vars: usize) -> Result<Self, LogicError> {
        if num_vars > MAX_VARS {
            return Err(LogicError::TooManyVars {
                requested: num_vars,
            });
        }
        Ok(Cover {
            num_vars,
            cubes: Vec::new(),
        })
    }

    /// The constant-0 cover (no cubes).
    pub fn constant_zero(num_vars: usize) -> Self {
        Self::new(num_vars)
    }

    /// The constant-1 cover (single universal cube).
    pub fn constant_one(num_vars: usize) -> Self {
        let mut c = Self::new(num_vars);
        c.push(Cube::UNIVERSE);
        c
    }

    /// A cover consisting of the single literal `var` with the given phase.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn literal(num_vars: usize, var: usize, phase: bool) -> Self {
        assert!(var < num_vars, "literal variable out of range");
        let mut c = Self::new(num_vars);
        c.push(
            Cube::from_literals(&[(var, phase)]).expect("single literal is never contradictory"), // lint:allow(panic): cube literals are valid by construction
        );
        c
    }

    /// Builds a cover from an iterator of cubes.
    pub fn from_cubes<I: IntoIterator<Item = Cube>>(num_vars: usize, cubes: I) -> Self {
        let mut c = Self::new(num_vars);
        c.extend(cubes);
        c
    }

    /// The number of local variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The cubes of the cover.
    #[inline]
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// The number of cubes.
    #[inline]
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Whether the cover has no cubes (constant 0).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Appends a cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube mentions a variable `>= num_vars`.
    pub fn push(&mut self, cube: Cube) {
        let limit = if self.num_vars >= 64 {
            u64::MAX
        } else {
            (1u64 << self.num_vars) - 1
        };
        assert!(
            cube.support_mask() & !limit == 0,
            "cube mentions variable outside cover support"
        );
        self.cubes.push(cube);
    }

    /// The total number of literals over all cubes (SOP literal count).
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// The union of cube supports.
    pub fn support_mask(&self) -> u64 {
        self.cubes.iter().fold(0, |acc, c| acc | c.support_mask())
    }

    /// Evaluates the cover on a minterm.
    pub fn eval(&self, assignment: u64) -> bool {
        self.cubes.iter().any(|c| c.eval(assignment))
    }

    /// Whether the cover contains the universal cube (syntactic constant-1
    /// check; for a semantic check use [`TruthTable::is_one`]).
    pub fn has_universe_cube(&self) -> bool {
        self.cubes.iter().any(Cube::is_universe)
    }

    /// The truth table of the cover.
    pub fn to_truth_table(&self) -> TruthTable {
        TruthTable::from_cover(self)
    }

    /// Removes cubes that are single-cube-contained by another cube of the
    /// cover, and duplicate cubes. Preserves the function.
    pub fn remove_contained_cubes(&mut self) {
        let mut keep = vec![true; self.cubes.len()];
        for i in 0..self.cubes.len() {
            if !keep[i] {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // the index is semantic here
            for j in 0..self.cubes.len() {
                if i == j || !keep[j] {
                    continue;
                }
                // Drop j if i contains j; ties broken by index to keep one copy.
                if self.cubes[i].contains(&self.cubes[j])
                    && (self.cubes[i] != self.cubes[j] || i < j)
                {
                    keep[j] = false;
                }
            }
        }
        let mut idx = 0;
        self.cubes.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }

    /// The Shannon cofactor of the cover with respect to a literal.
    ///
    /// Cubes contradicting the literal are dropped; the variable is removed
    /// from the remaining cubes. The variable numbering is preserved.
    pub fn cofactor(&self, var: usize, phase: bool) -> Cover {
        Cover {
            num_vars: self.num_vars,
            cubes: self
                .cubes
                .iter()
                .filter_map(|c| c.cofactor(var, phase))
                .collect(),
        }
    }

    /// Algebraic-model literal occurrence counts: for each variable, how many
    /// cubes contain its positive / negative literal.
    pub fn literal_occurrences(&self) -> Vec<(usize, usize)> {
        let mut counts = vec![(0usize, 0usize); self.num_vars];
        for cube in &self.cubes {
            for (var, phase) in cube.literals() {
                if phase {
                    counts[var].0 += 1;
                } else {
                    counts[var].1 += 1;
                }
            }
        }
        counts
    }

    /// Whether the cover is *cube-free*: no single literal divides every cube.
    ///
    /// A cover with at most one cube is not cube-free unless it is the
    /// universal cube alone (by the standard algebraic-division convention a
    /// single non-trivial cube always has a cube factor: itself).
    pub fn is_cube_free(&self) -> bool {
        if self.cubes.is_empty() {
            return false;
        }
        let common_pos = self.cubes.iter().fold(u64::MAX, |a, c| a & c.pos_mask());
        let common_neg = self.cubes.iter().fold(u64::MAX, |a, c| a & c.neg_mask());
        if self.cubes.len() == 1 {
            return self.cubes[0].is_universe();
        }
        common_pos == 0 && common_neg == 0
    }

    /// The largest cube dividing every cube of the cover (the common cube),
    /// and the cover made cube-free by dividing it out.
    pub fn make_cube_free(&self) -> (Cube, Cover) {
        if self.cubes.is_empty() {
            return (Cube::UNIVERSE, self.clone());
        }
        let common_pos = self.cubes.iter().fold(u64::MAX, |a, c| a & c.pos_mask());
        let common_neg = self.cubes.iter().fold(u64::MAX, |a, c| a & c.neg_mask());
        let common =
            Cube::from_masks(common_pos, common_neg).expect("intersection of valid cubes is valid"); // lint:allow(panic): cube literals are valid by construction
        let quotient = Cover {
            num_vars: self.num_vars,
            cubes: self
                .cubes
                .iter()
                .map(|c| c.divide(&common).expect("common cube divides every cube")) // lint:allow(panic): internal invariant; the message states it
                .collect(),
        };
        (common, quotient)
    }

    /// Returns a cover for the same function sorted canonically (useful for
    /// comparisons in tests).
    pub fn sorted(&self) -> Cover {
        let mut c = self.clone();
        c.cubes.sort();
        c.cubes.dedup();
        c
    }
}

impl Extend<Cube> for Cover {
    fn extend<I: IntoIterator<Item = Cube>>(&mut self, iter: I) {
        for cube in iter {
            self.push(cube);
        }
    }
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cover[{} vars](", self.num_vars)?;
        fmt::Display::fmt(self, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, cube) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{cube}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    #[test]
    fn constants_eval() {
        let z = Cover::constant_zero(3);
        let o = Cover::constant_one(3);
        for m in 0..8 {
            assert!(!z.eval(m));
            assert!(o.eval(m));
        }
        assert!(z.is_empty());
        assert!(o.has_universe_cube());
    }

    #[test]
    fn literal_cover() {
        let l = Cover::literal(3, 1, false);
        for m in 0..8u64 {
            assert_eq!(l.eval(m), m >> 1 & 1 == 0);
        }
        assert_eq!(l.literal_count(), 1);
    }

    #[test]
    #[should_panic(expected = "outside cover support")]
    fn push_rejects_foreign_vars() {
        let mut c = Cover::new(2);
        c.push(cube(&[(5, true)]));
    }

    #[test]
    fn contained_cube_removal() {
        let mut c = Cover::new(3);
        c.push(cube(&[(0, true)]));
        c.push(cube(&[(0, true), (1, true)])); // contained
        c.push(cube(&[(2, false)]));
        c.push(cube(&[(0, true)])); // duplicate
        let before = c.to_truth_table();
        c.remove_contained_cubes();
        assert_eq!(c.len(), 2);
        assert_eq!(c.to_truth_table(), before);
    }

    #[test]
    fn cofactor_semantics() {
        // f = x0 x1 + x0' x2
        let f = Cover::from_cubes(
            3,
            [
                cube(&[(0, true), (1, true)]),
                cube(&[(0, false), (2, true)]),
            ],
        );
        let f1 = f.cofactor(0, true);
        let tt = f1.to_truth_table();
        let x1 = TruthTable::var(3, 1).unwrap();
        assert_eq!(tt, x1);
        let f0 = f.cofactor(0, false);
        let x2 = TruthTable::var(3, 2).unwrap();
        assert_eq!(f0.to_truth_table(), x2);
    }

    #[test]
    fn cube_free_detection() {
        // x0 x1 + x0 x2 has common literal x0 — not cube-free.
        let f = Cover::from_cubes(
            3,
            [cube(&[(0, true), (1, true)]), cube(&[(0, true), (2, true)])],
        );
        assert!(!f.is_cube_free());
        let (common, quot) = f.make_cube_free();
        assert_eq!(common, cube(&[(0, true)]));
        assert!(quot.is_cube_free());
        assert_eq!(
            quot.sorted().cubes(),
            &[cube(&[(1, true)]), cube(&[(2, true)])]
        );
    }

    #[test]
    fn single_cube_is_not_cube_free() {
        let f = Cover::from_cubes(3, [cube(&[(0, true), (1, true)])]);
        assert!(!f.is_cube_free());
        let (common, quot) = f.make_cube_free();
        assert_eq!(common, cube(&[(0, true), (1, true)]));
        assert!(quot.cubes()[0].is_universe());
    }

    #[test]
    fn literal_occurrences() {
        let f = Cover::from_cubes(
            3,
            [
                cube(&[(0, true), (1, false)]),
                cube(&[(0, true), (2, true)]),
                cube(&[(1, false)]),
            ],
        );
        let occ = f.literal_occurrences();
        assert_eq!(occ[0], (2, 0));
        assert_eq!(occ[1], (0, 2));
        assert_eq!(occ[2], (1, 0));
    }

    #[test]
    fn display() {
        let f = Cover::from_cubes(3, [cube(&[(0, true)]), cube(&[(1, false), (2, true)])]);
        assert_eq!(f.to_string(), "x0 + x1'·x2");
        assert_eq!(Cover::constant_zero(2).to_string(), "0");
    }
}
