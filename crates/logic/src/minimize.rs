//! Two-level minimization of node functions.
//!
//! The paper's classical baseline flow calls ESPRESSO per node. We provide
//! the same service with two engines:
//!
//! * [`minimize_exactish`] — Minato–Morreale ISOP over truth tables
//!   (irredundant by construction; exact for the supports that occur at
//!   network nodes), optionally honouring a don't-care set.
//! * [`espresso_lite`] — a cube-based EXPAND / IRREDUNDANT loop in the
//!   ESPRESSO style that works directly on covers, used when a caller wants
//!   to improve an existing cover in place without rebuilding it.

use crate::isop::isop;
use crate::{Cover, Cube, TruthTable};

/// Minimizes `f` under the don't-care set `dc` (may be empty), returning an
/// irredundant cover `C` with `f \ dc ⊆ C ⊆ f ∪ dc`.
///
/// # Panics
///
/// Panics if the supports differ.
pub fn minimize_exactish(f: &TruthTable, dc: &TruthTable) -> Cover {
    let on = f & &!dc;
    let upper = f | dc;
    isop(&on, &upper)
}

/// Minimizes a cover with no external don't-cares; a drop-in "simplify"
/// for node functions.
pub fn minimize_cover(cover: &Cover) -> Cover {
    let tt = cover.to_truth_table();
    let dc = TruthTable::zero(cover.num_vars()).expect("cover support validated"); // lint:allow(panic): variable count validated by the caller
    let out = minimize_exactish(&tt, &dc);
    // Keep whichever form is cheaper; ISOP is irredundant but not always
    // minimum-literal.
    if out.literal_count() < cover.literal_count() {
        out
    } else {
        let mut kept = cover.clone();
        kept.remove_contained_cubes();
        kept
    }
}

/// ESPRESSO-style EXPAND + IRREDUNDANT passes over a cover, honouring a
/// don't-care set. Each cube is expanded literal-by-literal against the
/// off-set, then redundant cubes are removed.
///
/// Unlike full ESPRESSO there is no REDUCE/iterate loop; one pass is enough
/// for the small node functions of a multi-level network.
///
/// # Panics
///
/// Panics if `dc` has a different support than the cover.
pub fn espresso_lite(cover: &Cover, dc: &TruthTable) -> Cover {
    assert_eq!(cover.num_vars(), dc.num_vars(), "dc support mismatch");
    let on = cover.to_truth_table();
    let care_off = &!&on & &!dc;
    let upper = &on | dc;

    // EXPAND: for each cube, greedily drop literals while staying inside
    // on ∪ dc (equivalently: not intersecting the care off-set).
    let mut expanded: Vec<Cube> = Vec::with_capacity(cover.len());
    for &cube in cover.cubes() {
        let mut current = cube;
        let lits: Vec<(usize, bool)> = cube.literals().collect();
        for (var, _) in lits {
            let candidate = current.without_var(var);
            if !cube_intersects(&candidate, &care_off) {
                current = candidate;
            }
        }
        expanded.push(current);
    }

    // IRREDUNDANT: greedily keep cubes that still cover new on-set minterms.
    let nv = cover.num_vars();
    expanded.sort_by_key(super::cube::Cube::literal_count);
    let mut covered = TruthTable::zero(nv).expect("support validated"); // lint:allow(panic): variable count validated by the caller
    let mut kept: Vec<Cube> = Vec::new();
    for cube in expanded {
        let ct = cube_truth_table(&cube, nv);
        let new_on = &(&ct & &on) & &!&covered;
        if !new_on.is_zero() {
            covered = &covered | &ct;
            kept.push(cube);
        }
        if on.implies(&covered) {
            break;
        }
    }
    let result = Cover::from_cubes(nv, kept);
    debug_assert!(on.implies(&result.to_truth_table()));
    debug_assert!(result.to_truth_table().implies(&upper));
    result
}

/// The full ESPRESSO loop: EXPAND → IRREDUNDANT → REDUCE, iterated until the
/// literal count stops improving (or `max_rounds` passes). REDUCE shrinks
/// each cube to the smallest cube still covering the on-set minterms no
/// other cube covers, opening new expansion directions for the next round.
///
/// # Panics
///
/// Panics if `dc` has a different support than the cover.
pub fn espresso(cover: &Cover, dc: &TruthTable, max_rounds: usize) -> Cover {
    let mut best = espresso_lite(cover, dc);
    let on = cover.to_truth_table();
    for _ in 0..max_rounds {
        let reduced = reduce(&best, &on);
        let candidate = espresso_lite(&reduced, dc);
        if candidate.literal_count() < best.literal_count() {
            best = candidate;
        } else {
            break;
        }
    }
    debug_assert!({
        let upper = &on | dc;
        let bt = best.to_truth_table();
        on.implies(&bt) && bt.implies(&upper)
    });
    best
}

/// The REDUCE step, in the classical *sequential* discipline: cube `i` is
/// replaced by the smallest cube containing the on-set minterms it covers
/// that are covered neither by the already-reduced cubes before it nor by
/// the original cubes after it. This keeps the running cover an exact cover
/// of `on` at every step (shared minterms stay with the first cube that
/// claims them); cubes reduced to nothing are dropped as redundant.
fn reduce(cover: &Cover, on: &TruthTable) -> Cover {
    let nv = cover.num_vars();
    let mut kept: Vec<Cube> = Vec::with_capacity(cover.len());
    for (i, &cube) in cover.cubes().iter().enumerate() {
        let mut essential: Option<Cube> = None;
        'minterms: for m in on.minterms() {
            if !cube.eval(m) {
                continue;
            }
            // Covered by an already-reduced predecessor?
            if kept.iter().any(|k| k.eval(m)) {
                continue 'minterms;
            }
            // Covered by an original successor?
            if cover.cubes()[i + 1..].iter().any(|c| c.eval(m)) {
                continue 'minterms;
            }
            let point =
                Cube::from_literals(&(0..nv).map(|v| (v, m >> v & 1 == 1)).collect::<Vec<_>>())
                    .expect("minterm cube is contradiction-free"); // lint:allow(panic): internal invariant; the message states it
            essential = Some(match essential {
                None => point,
                Some(e) => e.supercube(&point),
            });
        }
        if let Some(e) = essential {
            kept.push(e);
        }
    }
    Cover::from_cubes(nv, kept)
}

fn cube_truth_table(cube: &Cube, num_vars: usize) -> TruthTable {
    TruthTable::from_fn(num_vars, |m| cube.eval(m)).expect("support validated") // lint:allow(panic): variable count validated by the caller
}

fn cube_intersects(cube: &Cube, set: &TruthTable) -> bool {
    set.minterms().any(|m| cube.eval(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    #[test]
    fn minimize_removes_redundancy() {
        // ab + ab' + a'b = a + b
        let f = Cover::from_cubes(
            2,
            [
                cube(&[(0, true), (1, true)]),
                cube(&[(0, true), (1, false)]),
                cube(&[(0, false), (1, true)]),
            ],
        );
        let m = minimize_cover(&f);
        assert_eq!(m.to_truth_table(), f.to_truth_table());
        assert_eq!(m.literal_count(), 2);
    }

    #[test]
    fn minimize_with_dont_cares_expands() {
        // on = ab, dc = ab' → can become just a.
        let on = TruthTable::from_fn(2, |m| m == 3).unwrap();
        let dc = TruthTable::from_fn(2, |m| m == 1).unwrap();
        let m = minimize_exactish(&on, &dc);
        assert_eq!(m.literal_count(), 1);
    }

    #[test]
    fn espresso_lite_expand_drops_literals() {
        let f = Cover::from_cubes(
            2,
            [
                cube(&[(0, true), (1, true)]),
                cube(&[(0, true), (1, false)]),
            ],
        );
        let dc = TruthTable::zero(2).unwrap();
        let m = espresso_lite(&f, &dc);
        assert_eq!(m.to_truth_table(), f.to_truth_table());
        assert_eq!(m.literal_count(), 1); // just x0
    }

    #[test]
    fn espresso_lite_respects_dc_bound() {
        let f = Cover::from_cubes(3, [cube(&[(0, true), (1, true), (2, true)])]);
        let dc = TruthTable::from_fn(3, |m| m == 0b011).unwrap();
        let m = espresso_lite(&f, &dc);
        let on = f.to_truth_table();
        let upper = &on | &dc;
        assert!(on.implies(&m.to_truth_table()));
        assert!(m.to_truth_table().implies(&upper));
    }

    #[test]
    fn espresso_loop_preserves_function_on_random_covers() {
        let mut state = 0x5eed_5eedu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state
        };
        for _ in 0..60 {
            let nv = 4;
            let mut f = Cover::new(nv);
            for _ in 0..=(next() % 6) {
                let r = next();
                let mut lits = Vec::new();
                for v in 0..nv {
                    match r >> (2 * v) & 3 {
                        0 => lits.push((v, true)),
                        1 => lits.push((v, false)),
                        _ => {}
                    }
                }
                if let Ok(c) = Cube::from_literals(&lits) {
                    f.push(c);
                }
            }
            let dc = TruthTable::zero(nv).unwrap();
            let m = espresso(&f, &dc, 4);
            assert_eq!(m.to_truth_table(), f.to_truth_table(), "cover {f}");
            assert!(m.literal_count() <= f.literal_count() || f.is_empty());
        }
    }

    #[test]
    fn reduce_round_escapes_a_local_minimum() {
        // The classic motivation: a cover where one round of expand alone
        // stalls, but reduce + re-expand finds a cheaper cover. At minimum,
        // the looped result is never worse than one pass.
        let f = Cover::from_cubes(
            3,
            [
                cube(&[(0, true), (1, true)]),
                cube(&[(1, true), (2, true)]),
                cube(&[(0, true), (2, false)]),
                cube(&[(0, false), (1, false), (2, false)]),
            ],
        );
        let dc = TruthTable::zero(3).unwrap();
        let one_pass = espresso_lite(&f, &dc);
        let looped = espresso(&f, &dc, 4);
        assert!(looped.literal_count() <= one_pass.literal_count());
        assert_eq!(looped.to_truth_table(), f.to_truth_table());
    }

    #[test]
    fn espresso_respects_dont_cares() {
        let f = Cover::from_cubes(
            3,
            [
                cube(&[(0, true), (1, true), (2, true)]),
                cube(&[(0, true), (1, true), (2, false)]),
            ],
        );
        let dc = TruthTable::from_fn(3, |m| m == 0b001 || m == 0b101).unwrap();
        let m = espresso(&f, &dc, 4);
        let on = f.to_truth_table();
        let upper = &on | &dc;
        assert!(on.implies(&m.to_truth_table()));
        assert!(m.to_truth_table().implies(&upper));
        // With those don't-cares, f = ab(c + c') + dc → can expand to a.
        assert!(m.literal_count() <= 2, "got {m}");
    }

    #[test]
    fn minimizers_agree_on_random_functions() {
        let mut state = 0x600d_f00du64;
        for _ in 0..40 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let bits = state;
            let tt = TruthTable::from_fn(4, |m| bits >> (m % 64) & 1 == 1).unwrap();
            let dc = TruthTable::zero(4).unwrap();
            let a = minimize_exactish(&tt, &dc);
            assert_eq!(a.to_truth_table(), tt);
            let b = espresso_lite(&a, &dc);
            assert_eq!(b.to_truth_table(), tt);
        }
    }
}
