use std::error::Error;
use std::fmt;

/// Error type for fallible operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// A variable index exceeded [`crate::MAX_VARS`] or the declared support.
    VarOutOfRange {
        /// The offending variable index.
        var: usize,
        /// The number of variables in scope.
        num_vars: usize,
    },
    /// A cube contained both polarities of the same variable.
    ContradictoryCube {
        /// The variable appearing in both polarities.
        var: usize,
    },
    /// An operation combined objects over different variable counts.
    SupportMismatch {
        /// Left-hand-side variable count.
        lhs: usize,
        /// Right-hand-side variable count.
        rhs: usize,
    },
    /// The requested number of variables is too large to enumerate.
    TooManyVars {
        /// The requested variable count.
        requested: usize,
    },
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::VarOutOfRange { var, num_vars } => {
                write!(f, "variable {var} out of range for {num_vars} variables")
            }
            LogicError::ContradictoryCube { var } => {
                write!(f, "cube contains variable {var} in both polarities")
            }
            LogicError::SupportMismatch { lhs, rhs } => {
                write!(f, "support mismatch: {lhs} vs {rhs} variables")
            }
            LogicError::TooManyVars { requested } => {
                write!(
                    f,
                    "{requested} variables exceeds the enumerable maximum of {}",
                    crate::MAX_VARS
                )
            }
        }
    }
}

impl Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LogicError::VarOutOfRange {
            var: 9,
            num_vars: 4,
        };
        assert_eq!(e.to_string(), "variable 9 out of range for 4 variables");
        let e = LogicError::ContradictoryCube { var: 2 };
        assert!(e.to_string().contains("both polarities"));
        let e = LogicError::SupportMismatch { lhs: 3, rhs: 5 };
        assert!(e.to_string().contains("3 vs 5"));
        let e = LogicError::TooManyVars { requested: 99 };
        assert!(e.to_string().contains("99"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LogicError>();
    }
}
