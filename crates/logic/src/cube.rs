use crate::{LogicError, MAX_VARS};
use std::fmt;

/// A product term (cube) over at most [`MAX_VARS`] local variables.
///
/// A cube is a conjunction of literals. Variable `v` appears as a positive
/// literal when bit `v` of `pos` is set, and as a negative literal when bit
/// `v` of `neg` is set. The two masks are disjoint by construction.
///
/// The number of variables in scope is carried by the enclosing [`Cover`];
/// a `Cube` by itself only knows which literals it mentions.
///
/// # Example
///
/// ```
/// use als_logic::Cube;
///
/// // a·b'·c  over vars a=0, b=1, c=2
/// let cube = Cube::from_literals(&[(0, true), (1, false), (2, true)])?;
/// assert_eq!(cube.literal_count(), 3);
/// assert!(cube.eval(0b101)); // a=1, b=0, c=1
/// assert!(!cube.eval(0b111)); // b=1 contradicts b'
/// # Ok::<(), als_logic::LogicError>(())
/// ```
///
/// [`Cover`]: crate::Cover
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Cube {
    pos: u64,
    neg: u64,
}

impl Cube {
    /// The universal cube (no literals; the constant-1 product term).
    pub const UNIVERSE: Cube = Cube { pos: 0, neg: 0 };

    /// Creates a cube from raw positive/negative literal masks.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ContradictoryCube`] if a variable appears in both
    /// masks.
    pub fn from_masks(pos: u64, neg: u64) -> Result<Self, LogicError> {
        if pos & neg != 0 {
            let var = (pos & neg).trailing_zeros() as usize; // lint:allow(as-cast): u32 bit index fits usize
            return Err(LogicError::ContradictoryCube { var });
        }
        Ok(Cube { pos, neg })
    }

    /// Creates a cube from `(variable, phase)` pairs, where `phase == true`
    /// denotes the positive literal.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::VarOutOfRange`] if a variable index is at least
    /// [`MAX_VARS`], or [`LogicError::ContradictoryCube`] if the same variable
    /// appears with both phases.
    pub fn from_literals(literals: &[(usize, bool)]) -> Result<Self, LogicError> {
        let mut pos = 0u64;
        let mut neg = 0u64;
        for &(var, phase) in literals {
            if var >= MAX_VARS {
                return Err(LogicError::VarOutOfRange {
                    var,
                    num_vars: MAX_VARS,
                });
            }
            let bit = 1u64 << var;
            if phase {
                pos |= bit;
            } else {
                neg |= bit;
            }
        }
        Self::from_masks(pos, neg)
    }

    /// The mask of variables appearing as positive literals.
    #[inline]
    pub fn pos_mask(&self) -> u64 {
        self.pos
    }

    /// The mask of variables appearing as negative literals.
    #[inline]
    pub fn neg_mask(&self) -> u64 {
        self.neg
    }

    /// The mask of variables appearing in this cube (either phase).
    #[inline]
    pub fn support_mask(&self) -> u64 {
        self.pos | self.neg
    }

    /// The number of literals in this cube.
    #[inline]
    pub fn literal_count(&self) -> usize {
        (self.pos.count_ones() + self.neg.count_ones()) as usize // lint:allow(as-cast): u32 bit index fits usize
    }

    /// Whether this is the universal (empty-product) cube.
    #[inline]
    pub fn is_universe(&self) -> bool {
        self.pos == 0 && self.neg == 0
    }

    /// Returns the phase of `var` in this cube, or `None` if `var` is absent.
    pub fn phase(&self, var: usize) -> Option<bool> {
        let bit = 1u64 << var;
        if self.pos & bit != 0 {
            Some(true)
        } else if self.neg & bit != 0 {
            Some(false)
        } else {
            None
        }
    }

    /// Iterates over the `(variable, phase)` literals of the cube in
    /// ascending variable order.
    pub fn literals(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        let mut mask = self.support_mask();
        let pos = self.pos;
        std::iter::from_fn(move || {
            if mask == 0 {
                return None;
            }
            let var = mask.trailing_zeros() as usize; // lint:allow(as-cast): u32 bit index fits usize
            mask &= mask - 1;
            Some((var, pos >> var & 1 == 1))
        })
    }

    /// Evaluates the cube on a minterm given as a bit-vector (bit `v` is the
    /// value of variable `v`).
    #[inline]
    pub fn eval(&self, assignment: u64) -> bool {
        (assignment & self.pos) == self.pos && (assignment & self.neg) == 0
    }

    /// Returns whether `self` contains `other` as a product term
    /// (i.e. `other ⇒ self`: every minterm of `other` is a minterm of `self`).
    #[inline]
    pub fn contains(&self, other: &Cube) -> bool {
        (self.pos & other.pos) == self.pos && (self.neg & other.neg) == self.neg
    }

    /// Intersects two cubes, returning `None` if they are disjoint
    /// (some variable appears with opposite phases).
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        let pos = self.pos | other.pos;
        let neg = self.neg | other.neg;
        if pos & neg != 0 {
            None
        } else {
            Some(Cube { pos, neg })
        }
    }

    /// The number of variables in which the two cubes have opposite phases.
    ///
    /// Distance 0 means the cubes intersect; distance 1 means they can be
    /// merged by the consensus rule.
    pub fn distance(&self, other: &Cube) -> usize {
        ((self.pos & other.neg) | (self.neg & other.pos)).count_ones() as usize // lint:allow(as-cast): u32 bit index fits usize
    }

    /// The smallest cube containing both inputs (bitwise literal
    /// intersection).
    pub fn supercube(&self, other: &Cube) -> Cube {
        Cube {
            pos: self.pos & other.pos,
            neg: self.neg & other.neg,
        }
    }

    /// Removes variable `var` from the cube (both phases), widening it.
    pub fn without_var(&self, var: usize) -> Cube {
        let bit = !(1u64 << var);
        Cube {
            pos: self.pos & bit,
            neg: self.neg & bit,
        }
    }

    /// The positive cofactor with respect to `var` if the cube does not
    /// contain `var'`; `None` (empty) otherwise.
    pub fn cofactor(&self, var: usize, phase: bool) -> Option<Cube> {
        let bit = 1u64 << var;
        let blocked = if phase { self.neg } else { self.pos };
        if blocked & bit != 0 {
            None
        } else {
            Some(self.without_var(var))
        }
    }

    /// Algebraic cube division `self / divisor`: if `divisor`'s literals are a
    /// subset of `self`'s, returns the quotient cube with them removed.
    pub fn divide(&self, divisor: &Cube) -> Option<Cube> {
        if (self.pos & divisor.pos) == divisor.pos && (self.neg & divisor.neg) == divisor.neg {
            Some(Cube {
                pos: self.pos & !divisor.pos,
                neg: self.neg & !divisor.neg,
            })
        } else {
            None
        }
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube(")?;
        fmt::Display::fmt(self, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_universe() {
            return write!(f, "1");
        }
        let mut first = true;
        for (var, phase) in self.literals() {
            if !first {
                write!(f, "·")?;
            }
            first = false;
            write!(f, "x{var}{}", if phase { "" } else { "'" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    #[test]
    fn universe_cube_accepts_everything() {
        let u = Cube::UNIVERSE;
        assert!(u.is_universe());
        assert_eq!(u.literal_count(), 0);
        for a in 0..16u64 {
            assert!(u.eval(a));
        }
    }

    #[test]
    fn contradictory_cube_rejected() {
        let err = Cube::from_literals(&[(1, true), (1, false)]).unwrap_err();
        assert_eq!(err, LogicError::ContradictoryCube { var: 1 });
    }

    #[test]
    fn var_out_of_range_rejected() {
        assert!(Cube::from_literals(&[(64, true)]).is_err());
        assert!(Cube::from_literals(&[(MAX_VARS, true)]).is_err());
    }

    #[test]
    fn eval_matches_literal_semantics() {
        let c = cube(&[(0, true), (2, false)]); // x0 · x2'
        assert!(c.eval(0b001));
        assert!(c.eval(0b011));
        assert!(!c.eval(0b101)); // x2 = 1
        assert!(!c.eval(0b000)); // x0 = 0
    }

    #[test]
    fn containment() {
        let wide = cube(&[(0, true)]);
        let narrow = cube(&[(0, true), (1, false)]);
        assert!(wide.contains(&narrow));
        assert!(!narrow.contains(&wide));
        assert!(wide.contains(&wide));
        assert!(Cube::UNIVERSE.contains(&narrow));
    }

    #[test]
    fn intersect_disjoint_and_overlapping() {
        let a = cube(&[(0, true)]);
        let b = cube(&[(0, false)]);
        assert_eq!(a.intersect(&b), None);
        let c = cube(&[(1, true)]);
        let i = a.intersect(&c).unwrap();
        assert_eq!(i, cube(&[(0, true), (1, true)]));
    }

    #[test]
    fn distance_counts_phase_conflicts() {
        let a = cube(&[(0, true), (1, true)]);
        let b = cube(&[(0, false), (1, false)]);
        assert_eq!(a.distance(&b), 2);
        assert_eq!(a.distance(&a), 0);
        let c = cube(&[(0, false), (1, true)]);
        assert_eq!(a.distance(&c), 1);
    }

    #[test]
    fn supercube_is_smallest_common_container() {
        let a = cube(&[(0, true), (1, true)]);
        let b = cube(&[(0, true), (1, false)]);
        let s = a.supercube(&b);
        assert_eq!(s, cube(&[(0, true)]));
        assert!(s.contains(&a));
        assert!(s.contains(&b));
    }

    #[test]
    fn cube_division() {
        let c = cube(&[(0, true), (1, false), (2, true)]);
        let d = cube(&[(0, true), (2, true)]);
        assert_eq!(c.divide(&d), Some(cube(&[(1, false)])));
        let e = cube(&[(3, true)]);
        assert_eq!(c.divide(&e), None);
    }

    #[test]
    fn cofactor_drops_or_kills() {
        let c = cube(&[(0, true), (1, false)]);
        assert_eq!(c.cofactor(0, true), Some(cube(&[(1, false)])));
        assert_eq!(c.cofactor(0, false), None);
        assert_eq!(c.cofactor(2, true), Some(c));
    }

    #[test]
    fn literal_iteration_in_order() {
        let c = cube(&[(3, false), (1, true), (5, true)]);
        let lits: Vec<_> = c.literals().collect();
        assert_eq!(lits, vec![(1, true), (3, false), (5, true)]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cube::UNIVERSE.to_string(), "1");
        assert_eq!(cube(&[(0, true), (1, false)]).to_string(), "x0·x1'");
    }
}
