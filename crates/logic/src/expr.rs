use crate::{Cover, LogicError, TruthTable};
use std::fmt;

/// A factored-form expression tree over local variables.
///
/// This is the representation the DAC'16 algorithms shrink: an *approximate
/// simplified expression* (ASE) is obtained by deleting literal leaves from
/// this tree (see [`Expr::remove_literals`]).
///
/// Invariants maintained by the simplifying constructors [`Expr::and`] and [`Expr::or`]:
/// `And`/`Or` nodes have at least two children and contain no constant
/// children (except transiently during construction).
///
/// # Example
///
/// ```
/// use als_logic::Expr;
///
/// // (a + b)(c + d) with a=0, b=1, c=2, d=3
/// let e = Expr::and(vec![
///     Expr::or(vec![Expr::lit(0, true), Expr::lit(1, true)]),
///     Expr::or(vec![Expr::lit(2, true), Expr::lit(3, true)]),
/// ]);
/// assert_eq!(e.literal_count(), 4);
/// // Removing literal index 0 (the leaf `a`) yields b(c + d).
/// let ase = e.remove_literals(&[0]).expect("literals remain");
/// assert_eq!(ase.literal_count(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A constant function.
    Const(bool),
    /// A literal leaf: variable index and phase (`true` = positive).
    Lit {
        /// The local variable index.
        var: usize,
        /// The phase; `true` for the positive literal.
        phase: bool,
    },
    /// A conjunction of sub-expressions.
    And(Vec<Expr>),
    /// A disjunction of sub-expressions.
    Or(Vec<Expr>),
}

/// A stable reference to a literal leaf inside an [`Expr`], produced by
/// [`Expr::literal_refs`]. The `index` is the leaf's position in DFS
/// (left-to-right) order; removal APIs address leaves by this index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LiteralRef {
    /// DFS index of the leaf within the expression.
    pub index: usize,
    /// The leaf's variable.
    pub var: usize,
    /// The leaf's phase.
    pub phase: bool,
}

impl Expr {
    /// The constant-0 expression.
    pub const FALSE: Expr = Expr::Const(false);
    /// The constant-1 expression.
    pub const TRUE: Expr = Expr::Const(true);

    /// A literal leaf.
    pub fn lit(var: usize, phase: bool) -> Expr {
        Expr::Lit { var, phase }
    }

    /// A conjunction, simplified (constants folded, single child unwrapped,
    /// nested `And`s flattened).
    pub fn and(children: Vec<Expr>) -> Expr {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                Expr::Const(true) => {}
                Expr::Const(false) => return Expr::FALSE,
                Expr::And(gs) => flat.extend(gs),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Expr::TRUE,
            1 => flat.pop().expect("len checked"), // lint:allow(panic): internal invariant; the message states it
            _ => Expr::And(flat),
        }
    }

    /// A disjunction, simplified (constants folded, single child unwrapped,
    /// nested `Or`s flattened).
    pub fn or(children: Vec<Expr>) -> Expr {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                Expr::Const(false) => {}
                Expr::Const(true) => return Expr::TRUE,
                Expr::Or(gs) => flat.extend(gs),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Expr::FALSE,
            1 => flat.pop().expect("len checked"), // lint:allow(panic): internal invariant; the message states it
            _ => Expr::Or(flat),
        }
    }

    /// Builds the (flat, two-level) expression of an SOP cover.
    pub fn from_cover(cover: &Cover) -> Expr {
        if cover.is_empty() {
            return Expr::FALSE;
        }
        Expr::or(
            cover
                .cubes()
                .iter()
                .map(|cube| {
                    Expr::and(
                        cube.literals()
                            .map(|(var, phase)| Expr::lit(var, phase))
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    /// Returns `Some(value)` for constant expressions.
    pub fn as_constant(&self) -> Option<bool> {
        match self {
            Expr::Const(b) => Some(*b),
            _ => None,
        }
    }

    /// The number of literal leaves — the factored-form literal count, which
    /// the paper uses as the area estimate of a node.
    pub fn literal_count(&self) -> usize {
        match self {
            Expr::Const(_) => 0,
            Expr::Lit { .. } => 1,
            Expr::And(gs) | Expr::Or(gs) => gs.iter().map(Expr::literal_count).sum(),
        }
    }

    /// Enumerates the literal leaves in DFS order with their removal indices.
    pub fn literal_refs(&self) -> Vec<LiteralRef> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs(&self, out: &mut Vec<LiteralRef>) {
        match self {
            Expr::Const(_) => {}
            Expr::Lit { var, phase } => out.push(LiteralRef {
                index: out.len(),
                var: *var,
                phase: *phase,
            }),
            Expr::And(gs) | Expr::Or(gs) => {
                for g in gs {
                    g.collect_refs(out);
                }
            }
        }
    }

    /// The mask of variables mentioned in the expression.
    pub fn support_mask(&self) -> u64 {
        match self {
            Expr::Const(_) => 0,
            Expr::Lit { var, .. } => 1 << var,
            Expr::And(gs) | Expr::Or(gs) => gs.iter().fold(0, |a, g| a | g.support_mask()),
        }
    }

    /// Removes the literal leaves with the given DFS indices, producing the
    /// simplified remainder.
    ///
    /// Removal semantics follow the paper: deleting a child from an `And`
    /// keeps the remaining conjuncts, deleting a child from an `Or` keeps the
    /// remaining disjuncts, and a group whose children are all removed
    /// disappears from its parent — removing `{a, b}` from `(a+b)(c+d)`
    /// yields `(c+d)`.
    ///
    /// Indices not referring to a literal leaf are ignored.
    ///
    /// Returns `None` when *every* literal of the expression was removed: the
    /// paper treats that case specially (§3.1), generating both the constant-0
    /// and the constant-1 ASE, so the caller must decide which constant(s) to
    /// emit.
    pub fn remove_literals(&self, indices: &[usize]) -> Option<Expr> {
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut counter = 0usize;
        self.remove_rec(&sorted, &mut counter)
    }

    /// `None` signals "this subtree was removed entirely": a group whose
    /// children are all removed disappears from its parent rather than
    /// becoming a constant, so removing `{a, b}` from `(a+b)(c+d)` yields
    /// `(c+d)`.
    fn remove_rec(&self, sorted: &[usize], counter: &mut usize) -> Option<Expr> {
        match self {
            Expr::Const(b) => Some(Expr::Const(*b)),
            Expr::Lit { var, phase } => {
                let idx = *counter;
                *counter += 1;
                if sorted.binary_search(&idx).is_ok() {
                    None
                } else {
                    Some(Expr::lit(*var, *phase))
                }
            }
            Expr::And(gs) => {
                let kept: Vec<Expr> = gs
                    .iter()
                    .filter_map(|g| g.remove_rec(sorted, counter))
                    .collect();
                if kept.is_empty() {
                    None
                } else {
                    Some(Expr::and(kept))
                }
            }
            Expr::Or(gs) => {
                let kept: Vec<Expr> = gs
                    .iter()
                    .filter_map(|g| g.remove_rec(sorted, counter))
                    .collect();
                if kept.is_empty() {
                    None
                } else {
                    Some(Expr::or(kept))
                }
            }
        }
    }

    /// Evaluates the expression on a minterm (bit `v` = value of variable `v`).
    pub fn eval(&self, assignment: u64) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Lit { var, phase } => (assignment >> var & 1 == 1) == *phase,
            Expr::And(gs) => gs.iter().all(|g| g.eval(assignment)),
            Expr::Or(gs) => gs.iter().any(|g| g.eval(assignment)),
        }
    }

    /// The truth table of the expression over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if the expression mentions a variable `>= num_vars` or
    /// `num_vars` exceeds [`crate::MAX_VARS`].
    pub fn to_truth_table(&self, num_vars: usize) -> TruthTable {
        self.try_to_truth_table(num_vars)
            .expect("expression support exceeds requested variable count") // lint:allow(panic): internal invariant; the message states it
    }

    /// Fallible version of [`Expr::to_truth_table`].
    ///
    /// # Errors
    ///
    /// Returns an error if `num_vars` exceeds [`crate::MAX_VARS`] or the
    /// expression mentions a variable `>= num_vars`.
    pub fn try_to_truth_table(&self, num_vars: usize) -> Result<TruthTable, LogicError> {
        if num_vars < 64 && self.support_mask() >> num_vars != 0 {
            let var = (self.support_mask() >> num_vars).trailing_zeros() as usize + num_vars; // lint:allow(as-cast): u32 bit index fits usize
            return Err(LogicError::VarOutOfRange { var, num_vars });
        }
        match self {
            Expr::Const(b) => TruthTable::constant(num_vars, *b),
            Expr::Lit { var, phase } => {
                let t = TruthTable::var(num_vars, *var)?;
                Ok(if *phase { t } else { !&t })
            }
            Expr::And(gs) => {
                let mut acc = TruthTable::one(num_vars)?;
                for g in gs {
                    acc = &acc & &g.try_to_truth_table(num_vars)?;
                }
                Ok(acc)
            }
            Expr::Or(gs) => {
                let mut acc = TruthTable::zero(num_vars)?;
                for g in gs {
                    acc = &acc | &g.try_to_truth_table(num_vars)?;
                }
                Ok(acc)
            }
        }
    }

    /// Flattens the expression to an SOP cover over `num_vars` variables by
    /// algebraic multiplication (no Boolean simplification beyond
    /// single-cube containment removal).
    ///
    /// # Panics
    ///
    /// Panics if the expression mentions a variable `>= num_vars`.
    pub fn to_cover(&self, num_vars: usize) -> Cover {
        let mut cover = match self {
            Expr::Const(false) => Cover::constant_zero(num_vars),
            Expr::Const(true) => Cover::constant_one(num_vars),
            Expr::Lit { var, phase } => Cover::literal(num_vars, *var, *phase),
            Expr::Or(gs) => {
                let mut acc = Cover::new(num_vars);
                for g in gs {
                    acc.extend(g.to_cover(num_vars).cubes().iter().copied());
                }
                acc
            }
            Expr::And(gs) => {
                let mut acc = Cover::constant_one(num_vars);
                for g in gs {
                    let rhs = g.to_cover(num_vars);
                    let mut next = Cover::new(num_vars);
                    for a in acc.cubes() {
                        for b in rhs.cubes() {
                            if let Some(c) = a.intersect(b) {
                                next.push(c);
                            }
                        }
                    }
                    acc = next;
                }
                acc
            }
        };
        cover.remove_contained_cubes();
        cover
    }

    /// Structural depth of the tree (constants and literals have depth 0).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Lit { .. } => 0,
            Expr::And(gs) | Expr::Or(gs) => 1 + gs.iter().map(Expr::depth).max().unwrap_or(0),
        }
    }

    /// Renumbers variables through `map` (old variable `v` becomes
    /// `map[v]`).
    ///
    /// # Panics
    ///
    /// Panics if a mentioned variable has no entry in `map`.
    pub fn remap(&self, map: &[usize]) -> Expr {
        match self {
            Expr::Const(b) => Expr::Const(*b),
            Expr::Lit { var, phase } => Expr::lit(map[*var], *phase),
            Expr::And(gs) => Expr::And(gs.iter().map(|g| g.remap(map)).collect()),
            Expr::Or(gs) => Expr::Or(gs.iter().map(|g| g.remap(map)).collect()),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(b) => write!(f, "{}", u8::from(*b)),
            Expr::Lit { var, phase } => write!(f, "x{var}{}", if *phase { "" } else { "'" }),
            Expr::And(gs) => {
                for g in gs {
                    match g {
                        Expr::Or(_) => write!(f, "({g})")?,
                        _ => write!(f, "{g}")?,
                    }
                }
                Ok(())
            }
            Expr::Or(gs) => {
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{g}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cube;

    /// (a + b)(c + d)
    fn paper_example() -> Expr {
        Expr::and(vec![
            Expr::or(vec![Expr::lit(0, true), Expr::lit(1, true)]),
            Expr::or(vec![Expr::lit(2, true), Expr::lit(3, true)]),
        ])
    }

    #[test]
    fn constructors_simplify() {
        assert_eq!(Expr::and(vec![]), Expr::TRUE);
        assert_eq!(Expr::or(vec![]), Expr::FALSE);
        assert_eq!(Expr::and(vec![Expr::lit(0, true)]), Expr::lit(0, true));
        assert_eq!(
            Expr::and(vec![Expr::TRUE, Expr::lit(0, true)]),
            Expr::lit(0, true)
        );
        assert_eq!(
            Expr::and(vec![Expr::FALSE, Expr::lit(0, true)]),
            Expr::FALSE
        );
        assert_eq!(Expr::or(vec![Expr::TRUE, Expr::lit(0, true)]), Expr::TRUE);
        // Nested flattening.
        let e = Expr::and(vec![
            Expr::and(vec![Expr::lit(0, true), Expr::lit(1, true)]),
            Expr::lit(2, true),
        ]);
        assert_eq!(e.literal_count(), 3);
        assert!(matches!(e, Expr::And(ref gs) if gs.len() == 3));
    }

    #[test]
    fn literal_count_and_refs() {
        let e = paper_example();
        assert_eq!(e.literal_count(), 4);
        let refs = e.literal_refs();
        assert_eq!(refs.len(), 4);
        assert_eq!(
            refs.iter().map(|r| (r.var, r.phase)).collect::<Vec<_>>(),
            vec![(0, true), (1, true), (2, true), (3, true)]
        );
        assert_eq!(refs[2].index, 2);
    }

    #[test]
    fn removing_single_literals_matches_paper() {
        // Paper §3.1: n = (a+b)(c+d); removing a → b(c+d), etc.
        let e = paper_example();
        let cases = [
            (0usize, "x1(x2 + x3)"),
            (1, "x0(x2 + x3)"),
            (2, "(x0 + x1)x3"),
            (3, "(x0 + x1)x2"),
        ];
        for (idx, expect) in cases {
            let ase = e.remove_literals(&[idx]).unwrap();
            assert_eq!(ase.to_string(), expect);
            assert_eq!(ase.literal_count(), 3);
        }
    }

    #[test]
    fn removing_all_literals_returns_none() {
        let e = paper_example();
        // Removing every literal: the caller (ASE layer) must emit the
        // constant-0/constant-1 pair of §3.1.
        assert_eq!(e.remove_literals(&[0, 1, 2, 3]), None);
        let o = Expr::or(vec![Expr::lit(0, true), Expr::lit(1, true)]);
        assert_eq!(o.remove_literals(&[0, 1]), None);
        assert_eq!(Expr::lit(0, true).remove_literals(&[0]), None);
    }

    #[test]
    fn removing_one_side_of_and() {
        let e = paper_example();
        // Remove both a and b: (a+b) disappears → (c + d).
        let ase = e.remove_literals(&[0, 1]).unwrap();
        assert_eq!(ase.to_string(), "x2 + x3");
    }

    #[test]
    fn removal_ignores_out_of_range_indices() {
        let e = paper_example();
        assert_eq!(e.remove_literals(&[99]), Some(e.clone()));
    }

    #[test]
    fn eval_and_truth_table_agree() {
        let e = paper_example();
        let t = e.to_truth_table(4);
        for m in 0..16u64 {
            assert_eq!(e.eval(m), t.get(m), "minterm {m}");
        }
    }

    #[test]
    fn to_cover_is_function_preserving() {
        let e = paper_example();
        let c = e.to_cover(4);
        assert_eq!(c.to_truth_table(), e.to_truth_table(4));
        assert_eq!(c.len(), 4); // ac + ad + bc + bd
    }

    #[test]
    fn from_cover_roundtrip() {
        let mut c = Cover::new(3);
        c.push(Cube::from_literals(&[(0, true), (1, false)]).unwrap());
        c.push(Cube::from_literals(&[(2, true)]).unwrap());
        let e = Expr::from_cover(&c);
        assert_eq!(e.to_truth_table(3), c.to_truth_table());
        assert_eq!(e.literal_count(), 3);
    }

    #[test]
    fn depth_measures_alternation() {
        assert_eq!(Expr::lit(0, true).depth(), 0);
        assert_eq!(paper_example().depth(), 2);
    }

    #[test]
    fn remap_renames_support() {
        let e = Expr::and(vec![Expr::lit(0, true), Expr::lit(1, false)]);
        let r = e.remap(&[5, 3]);
        assert_eq!(r.support_mask(), (1 << 5) | (1 << 3));
        let t = r.to_truth_table(6);
        for m in 0..64u64 {
            assert_eq!(t.get(m), (m >> 5 & 1 == 1) && (m >> 3 & 1 == 0));
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(paper_example().to_string(), "(x0 + x1)(x2 + x3)");
        assert_eq!(Expr::TRUE.to_string(), "1");
        assert_eq!(Expr::FALSE.to_string(), "0");
        assert_eq!(Expr::lit(2, false).to_string(), "x2'");
    }

    #[test]
    fn truth_table_rejects_small_support() {
        let e = Expr::lit(5, true);
        assert!(e.try_to_truth_table(3).is_err());
    }
}
