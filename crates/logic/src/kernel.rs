//! Kernel and co-kernel extraction for algebraic factoring.
//!
//! A *kernel* of a cover `F` is a cube-free quotient of `F` by a cube (its
//! *co-kernel*). Kernels are the canonical source of good algebraic divisors
//! (Brayton & McMullen): every multiple-cube common divisor of two
//! expressions contains a kernel intersection.

use crate::division::divide;
use crate::{Cover, Cube};

/// A kernel together with the co-kernel cube that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Kernel {
    /// The cube-free quotient.
    pub kernel: Cover,
    /// The dividing cube.
    pub cokernel: Cube,
}

impl Kernel {
    /// A kernel is *level-0* if it contains no kernels other than itself
    /// (equivalently: no literal appears in two or more of its cubes).
    pub fn is_level0(&self) -> bool {
        is_level0_cover(&self.kernel)
    }
}

/// Whether no literal of `cover` appears in more than one cube.
pub fn is_level0_cover(cover: &Cover) -> bool {
    let occ = cover.literal_occurrences();
    occ.iter().all(|&(p, n)| p <= 1 && n <= 1)
}

/// Computes all kernels of `f` (including, per convention, `f` itself when it
/// is cube-free), with their co-kernels.
///
/// Duplicate kernels reached through different literal orders are pruned.
///
/// # Example
///
/// ```
/// use als_logic::{Cover, Cube};
/// use als_logic::kernel::kernels;
///
/// // f = ac + ad + bc + bd: kernels include (a + b) and (c + d).
/// let f = Cover::from_cubes(4, [
///     Cube::from_literals(&[(0, true), (2, true)])?,
///     Cube::from_literals(&[(0, true), (3, true)])?,
///     Cube::from_literals(&[(1, true), (2, true)])?,
///     Cube::from_literals(&[(1, true), (3, true)])?,
/// ]);
/// let ks = kernels(&f);
/// assert!(ks.iter().any(|k| k.kernel.len() == 2));
/// # Ok::<(), als_logic::LogicError>(())
/// ```
pub fn kernels(f: &Cover) -> Vec<Kernel> {
    let mut out: Vec<Kernel> = Vec::new();
    let (common, cube_free) = f.make_cube_free();
    if cube_free.len() >= 2 {
        out.push(Kernel {
            kernel: cube_free.clone(),
            cokernel: common,
        });
    }
    kernels_rec(&cube_free, common, 0, &mut out);
    // Deduplicate by kernel cover (sorted form).
    let mut seen: Vec<Cover> = Vec::new();
    out.retain(|k| {
        let s = k.kernel.sorted();
        if seen.contains(&s) {
            false
        } else {
            seen.push(s);
            true
        }
    });
    out
}

fn kernels_rec(f: &Cover, cokernel_so_far: Cube, min_var: usize, out: &mut Vec<Kernel>) {
    let occ = f.literal_occurrences();
    #[allow(clippy::needless_range_loop)] // the index is semantic here
    for var in min_var..f.num_vars() {
        for (phase, count) in [(true, occ[var].0), (false, occ[var].1)] {
            if count < 2 {
                continue;
            }
            let lit = Cover::literal(f.num_vars(), var, phase);
            let q = divide(f, &lit).quotient;
            if q.len() < 2 {
                continue;
            }
            let (common, cube_free) = q.make_cube_free();
            let lit_cube = Cube::from_literals(&[(var, phase)]).expect("single literal is valid"); // lint:allow(panic): cube literals are valid by construction
            let new_cokernel = cokernel_so_far
                .intersect(&lit_cube)
                .and_then(|c| c.intersect(&common));
            let Some(new_cokernel) = new_cokernel else {
                continue;
            };
            // Standard pruning: if the common cube touches a variable below
            // `var`, this kernel was (or will be) found from that variable.
            if !common.is_universe() && (common.support_mask().trailing_zeros() as usize) < var {
                // lint:allow(as-cast): u32 bit index fits usize
                continue;
            }
            out.push(Kernel {
                kernel: cube_free.clone(),
                cokernel: new_cokernel,
            });
            kernels_rec(&cube_free, new_cokernel, var + 1, out);
        }
    }
}

/// Returns one level-0 kernel of `f`, or `None` if `f` has no kernel with at
/// least two cubes (e.g. a single cube or a level-0 cover itself without
/// multi-cube quotients).
///
/// This is the `quick_divisor` of MIS-style quick factoring: cheap to find
/// and good enough as a divisor.
pub fn one_level0_kernel(f: &Cover) -> Option<Cover> {
    let (_, cube_free) = f.make_cube_free();
    if cube_free.len() < 2 {
        return None;
    }
    one_level0_rec(&cube_free)
}

fn one_level0_rec(f: &Cover) -> Option<Cover> {
    if is_level0_cover(f) {
        return if f.len() >= 2 { Some(f.clone()) } else { None };
    }
    let occ = f.literal_occurrences();
    #[allow(clippy::needless_range_loop)] // the index is semantic here
    for var in 0..f.num_vars() {
        for (phase, count) in [(true, occ[var].0), (false, occ[var].1)] {
            if count < 2 {
                continue;
            }
            let q = divide(&f.clone(), &Cover::literal(f.num_vars(), var, phase)).quotient;
            if q.len() < 2 {
                continue;
            }
            let (_, cube_free) = q.make_cube_free();
            if cube_free.len() >= 2 {
                if let Some(k) = one_level0_rec(&cube_free) {
                    return Some(k);
                }
            }
        }
    }
    // f is not level-0 but has no multi-cube quotient: f itself is its only
    // kernel at this point.
    Some(f.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    fn classic() -> Cover {
        // f = ac + ad + bc + bd
        Cover::from_cubes(
            4,
            [
                cube(&[(0, true), (2, true)]),
                cube(&[(0, true), (3, true)]),
                cube(&[(1, true), (2, true)]),
                cube(&[(1, true), (3, true)]),
            ],
        )
    }

    #[test]
    fn kernels_of_classic_example() {
        let ks = kernels(&classic());
        let kernel_strings: Vec<String> =
            ks.iter().map(|k| k.kernel.sorted().to_string()).collect();
        // (c + d) from cokernels a and b; (a + b) from cokernels c and d;
        // the whole cover is cube-free hence also a kernel.
        assert!(
            kernel_strings.iter().any(|s| s == "x2 + x3"),
            "{kernel_strings:?}"
        );
        assert!(
            kernel_strings.iter().any(|s| s == "x0 + x1"),
            "{kernel_strings:?}"
        );
        assert!(ks.iter().any(|k| k.kernel.len() == 4));
    }

    #[test]
    fn kernel_covers_are_cube_free() {
        for k in kernels(&classic()) {
            assert!(
                k.kernel.is_cube_free() || k.kernel.len() >= 2,
                "kernel must be cube-free: {}",
                k.kernel
            );
        }
    }

    #[test]
    fn single_cube_has_no_kernels() {
        let f = Cover::from_cubes(3, [cube(&[(0, true), (1, true)])]);
        assert!(kernels(&f).is_empty());
        assert!(one_level0_kernel(&f).is_none());
    }

    #[test]
    fn level0_detection() {
        // a + b is level-0; ac + ad is not (a appears twice).
        let l0 = Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]);
        assert!(is_level0_cover(&l0));
        let not = Cover::from_cubes(
            3,
            [cube(&[(0, true), (1, true)]), cube(&[(0, true), (2, true)])],
        );
        assert!(!is_level0_cover(&not));
    }

    #[test]
    fn quick_divisor_is_level0_multicube() {
        let k = one_level0_kernel(&classic()).unwrap();
        assert!(k.len() >= 2);
        assert!(is_level0_cover(&k));
    }

    #[test]
    fn kernels_with_negative_literals() {
        // f = a'c + a'd → kernel (c + d), cokernel a'.
        let f = Cover::from_cubes(
            4,
            [
                cube(&[(0, false), (2, true)]),
                cube(&[(0, false), (3, true)]),
            ],
        );
        let ks = kernels(&f);
        assert!(ks.iter().any(
            |k| k.kernel.sorted().to_string() == "x2 + x3" && k.cokernel == cube(&[(0, false)])
        ));
    }
}
