use crate::{Cover, LogicError, MAX_VARS};
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

const WORD_BITS: usize = 64;

/// Bit patterns of the first six variables within a 64-bit word.
const VAR_WORDS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// A complete truth table over `num_vars ≤ MAX_VARS` variables.
///
/// Minterm `m` (where bit `v` of `m` is the value of variable `v`) is stored
/// at bit `m % 64` of word `m / 64`. Unused high bits of the last word are
/// kept zero so that equality and popcount are meaningful.
///
/// # Example
///
/// ```
/// use als_logic::TruthTable;
///
/// let a = TruthTable::var(3, 0)?;
/// let b = TruthTable::var(3, 1)?;
/// let f = &a & &b; // a AND b
/// assert_eq!(f.count_ones(), 2); // minterms 011 and 111
/// # Ok::<(), als_logic::LogicError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_vars: usize,
    words: Vec<u64>,
}

impl TruthTable {
    fn word_count(num_vars: usize) -> usize {
        if num_vars >= 6 {
            1 << (num_vars - 6)
        } else {
            1
        }
    }

    /// Mask of the valid bits in the (single) word of a small table.
    fn tail_mask(num_vars: usize) -> u64 {
        if num_vars >= 6 {
            u64::MAX
        } else {
            (1u64 << (1usize << num_vars)) - 1
        }
    }

    fn check_vars(num_vars: usize) -> Result<(), LogicError> {
        if num_vars > MAX_VARS {
            Err(LogicError::TooManyVars {
                requested: num_vars,
            })
        } else {
            Ok(())
        }
    }

    /// The constant-0 function over `num_vars` variables.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TooManyVars`] if `num_vars > MAX_VARS`.
    pub fn zero(num_vars: usize) -> Result<Self, LogicError> {
        Self::check_vars(num_vars)?;
        Ok(TruthTable {
            num_vars,
            words: vec![0; Self::word_count(num_vars)],
        })
    }

    /// The constant-1 function over `num_vars` variables.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TooManyVars`] if `num_vars > MAX_VARS`.
    pub fn one(num_vars: usize) -> Result<Self, LogicError> {
        let mut t = Self::zero(num_vars)?;
        for w in &mut t.words {
            *w = u64::MAX;
        }
        t.mask_tail();
        Ok(t)
    }

    /// The constant function with the given value.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TooManyVars`] if `num_vars > MAX_VARS`.
    pub fn constant(num_vars: usize, value: bool) -> Result<Self, LogicError> {
        if value {
            Self::one(num_vars)
        } else {
            Self::zero(num_vars)
        }
    }

    /// The projection function of variable `var` over `num_vars` variables.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::VarOutOfRange`] if `var >= num_vars`, or
    /// [`LogicError::TooManyVars`] if `num_vars > MAX_VARS`.
    pub fn var(num_vars: usize, var: usize) -> Result<Self, LogicError> {
        Self::check_vars(num_vars)?;
        if var >= num_vars {
            return Err(LogicError::VarOutOfRange { var, num_vars });
        }
        let mut t = Self::zero(num_vars)?;
        if var < 6 {
            for w in &mut t.words {
                *w = VAR_WORDS[var];
            }
        } else {
            // Variable lives in the word index: blocks of 2^(var-6) words
            // alternate 0-run / 1-run.
            let block = 1usize << (var - 6);
            for (i, w) in t.words.iter_mut().enumerate() {
                if (i / block) % 2 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        t.mask_tail();
        Ok(t)
    }

    /// Builds a truth table from a function of the minterm index.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TooManyVars`] if `num_vars > MAX_VARS`.
    pub fn from_fn<F: FnMut(u64) -> bool>(num_vars: usize, mut f: F) -> Result<Self, LogicError> {
        let mut t = Self::zero(num_vars)?;
        for m in 0..(1u64 << num_vars) {
            if f(m) {
                t.set(m, true);
            }
        }
        Ok(t)
    }

    /// Builds the truth table of a [`Cover`] interpreted over the cover's
    /// variable count.
    ///
    /// # Panics
    ///
    /// Panics if the cover has more than [`MAX_VARS`] variables (covers are
    /// validated at construction, so this cannot happen for covers built
    /// through the public API).
    pub fn from_cover(cover: &Cover) -> Self {
        let mut t =
            Self::zero(cover.num_vars()).expect("cover variable count validated at construction"); // lint:allow(panic): variable count validated by the caller
        for cube in cover.cubes() {
            for m in 0..(1u64 << cover.num_vars()) {
                if cube.eval(m) {
                    t.set(m, true);
                }
            }
        }
        t
    }

    fn mask_tail(&mut self) {
        if self.num_vars < 6 {
            self.words[0] &= Self::tail_mask(self.num_vars);
        }
    }

    /// The number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The number of minterms (`2^num_vars`).
    #[inline]
    pub fn num_minterms(&self) -> u64 {
        1u64 << self.num_vars
    }

    /// The raw 64-bit words backing the table.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The value of the function at minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^num_vars`.
    #[inline]
    pub fn get(&self, m: u64) -> bool {
        assert!(m < self.num_minterms(), "minterm {m} out of range");
        self.words[(m as usize) / WORD_BITS] >> (m as usize % WORD_BITS) & 1 == 1
        // lint:allow(as-cast): minterm index < num_bits <= 2^MAX_TT_VARS
    }

    /// Sets the value of the function at minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^num_vars`.
    #[inline]
    pub fn set(&mut self, m: u64, value: bool) {
        assert!(m < self.num_minterms(), "minterm {m} out of range");
        let bit = 1u64 << (m as usize % WORD_BITS); // lint:allow(as-cast): minterm index < num_bits <= 2^MAX_TT_VARS
        let w = &mut self.words[(m as usize) / WORD_BITS]; // lint:allow(as-cast): minterm index < num_bits <= 2^MAX_TT_VARS
        if value {
            *w |= bit;
        } else {
            *w &= !bit;
        }
    }

    /// The number of on-set minterms.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Whether the function is constant 0.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the function is constant 1.
    pub fn is_one(&self) -> bool {
        self.count_ones() == self.num_minterms()
    }

    /// Returns `Some(value)` if the function is constant.
    pub fn as_constant(&self) -> Option<bool> {
        if self.is_zero() {
            Some(false)
        } else if self.is_one() {
            Some(true)
        } else {
            None
        }
    }

    /// Whether `self ⇒ other` (the on-set of `self` is contained in the
    /// on-set of `other`).
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn implies(&self, other: &TruthTable) -> bool {
        self.assert_same_vars(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    fn assert_same_vars(&self, other: &TruthTable) {
        assert_eq!(
            self.num_vars, other.num_vars,
            "truth-table operation on mismatched supports"
        );
    }

    /// The cofactor of the function with `var` fixed to `phase`.
    ///
    /// The result still ranges over the same `num_vars` variables (the fixed
    /// variable becomes irrelevant).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactor(&self, var: usize, phase: bool) -> TruthTable {
        assert!(var < self.num_vars, "cofactor variable out of range");
        let mut out = self.clone();
        if var < 6 {
            let mask = VAR_WORDS[var];
            let shift = 1usize << var;
            for w in &mut out.words {
                if phase {
                    let hi = *w & mask;
                    *w = hi | (hi >> shift);
                } else {
                    let lo = *w & !mask;
                    *w = lo | (lo << shift);
                }
            }
        } else {
            let block = 1usize << (var - 6);
            let n = out.words.len();
            let mut i = 0;
            while i < n {
                // Words [i, i+block) are var=0; [i+block, i+2*block) are var=1.
                for k in 0..block {
                    if phase {
                        out.words[i + k] = out.words[i + block + k];
                    } else {
                        out.words[i + block + k] = out.words[i + k];
                    }
                }
                i += 2 * block;
            }
        }
        out.mask_tail();
        out
    }

    /// Whether the function depends on `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor(var, false) != self.cofactor(var, true)
    }

    /// The mask of variables the function actually depends on.
    pub fn support_mask(&self) -> u64 {
        let mut mask = 0u64;
        for v in 0..self.num_vars {
            if self.depends_on(v) {
                mask |= 1 << v;
            }
        }
        mask
    }

    /// Re-expresses the function over a wider variable set, mapping old
    /// variable `i` to new variable `map[i]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `new_num_vars > MAX_VARS` or a mapped index is out
    /// of range.
    ///
    /// # Panics
    ///
    /// Panics if `map.len() != self.num_vars()` or `map` repeats a target
    /// (repeats are legal in [`TruthTable::remap_merge`]).
    pub fn remap(&self, new_num_vars: usize, map: &[usize]) -> Result<TruthTable, LogicError> {
        for (i, &m) in map.iter().enumerate() {
            assert!(!map[..i].contains(&m), "remap target {m} repeated");
        }
        self.remap_merge(new_num_vars, map)
    }

    /// Like [`TruthTable::remap`] but allows several old variables to map to
    /// the *same* new variable — the corresponding inputs are tied together.
    /// Used when node substitution makes two fanins identical.
    ///
    /// # Errors
    ///
    /// Returns an error if `new_num_vars > MAX_VARS` or a mapped index is out
    /// of range.
    ///
    /// # Panics
    ///
    /// Panics if `map.len() != self.num_vars()`.
    pub fn remap_merge(
        &self,
        new_num_vars: usize,
        map: &[usize],
    ) -> Result<TruthTable, LogicError> {
        assert_eq!(map.len(), self.num_vars, "remap must cover every variable");
        Self::check_vars(new_num_vars)?;
        for &m in map {
            if m >= new_num_vars {
                return Err(LogicError::VarOutOfRange {
                    var: m,
                    num_vars: new_num_vars,
                });
            }
        }
        let mut out = TruthTable::zero(new_num_vars)?;
        for nm in 0..(1u64 << new_num_vars) {
            let mut old = 0u64;
            for (i, &m) in map.iter().enumerate() {
                if nm >> m & 1 == 1 {
                    old |= 1 << i;
                }
            }
            if self.get(old) {
                out.set(nm, true);
            }
        }
        Ok(out)
    }

    /// Iterates over the on-set minterms in ascending order.
    pub fn minterms(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.num_minterms()).filter(move |&m| self.get(m))
    }
}

impl BitAnd for &TruthTable {
    type Output = TruthTable;
    fn bitand(self, rhs: &TruthTable) -> TruthTable {
        self.assert_same_vars(rhs);
        TruthTable {
            num_vars: self.num_vars,
            words: self
                .words
                .iter()
                .zip(&rhs.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }
}

impl BitOr for &TruthTable {
    type Output = TruthTable;
    fn bitor(self, rhs: &TruthTable) -> TruthTable {
        self.assert_same_vars(rhs);
        TruthTable {
            num_vars: self.num_vars,
            words: self
                .words
                .iter()
                .zip(&rhs.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }
}

impl BitXor for &TruthTable {
    type Output = TruthTable;
    fn bitxor(self, rhs: &TruthTable) -> TruthTable {
        self.assert_same_vars(rhs);
        TruthTable {
            num_vars: self.num_vars,
            words: self
                .words
                .iter()
                .zip(&rhs.words)
                .map(|(a, b)| a ^ b)
                .collect(),
        }
    }
}

impl Not for &TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        let mut t = TruthTable {
            num_vars: self.num_vars,
            words: self.words.iter().map(|w| !w).collect(),
        };
        t.mask_tail();
        t
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars; ", self.num_vars)?;
        if self.num_vars <= 6 {
            let bits = 1usize << self.num_vars;
            for m in (0..bits as u64).rev() {
                // lint:allow(as-cast): usize fits u64 on all supported targets
                write!(f, "{}", u8::from(self.get(m)))?;
            }
        } else {
            write!(f, "{} ones", self.count_ones())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cube;

    #[test]
    fn constants() {
        let z = TruthTable::zero(3).unwrap();
        let o = TruthTable::one(3).unwrap();
        assert!(z.is_zero() && !z.is_one());
        assert!(o.is_one() && !o.is_zero());
        assert_eq!(z.as_constant(), Some(false));
        assert_eq!(o.as_constant(), Some(true));
        assert_eq!(o.count_ones(), 8);
    }

    #[test]
    fn var_projection_small_and_large() {
        for nv in [1, 3, 6, 8] {
            for v in 0..nv {
                let t = TruthTable::var(nv, v).unwrap();
                for m in 0..(1u64 << nv) {
                    assert_eq!(t.get(m), m >> v & 1 == 1, "nv={nv} v={v} m={m}");
                }
            }
        }
    }

    #[test]
    fn var_out_of_range() {
        assert!(TruthTable::var(3, 3).is_err());
        assert!(TruthTable::zero(MAX_VARS + 1).is_err());
    }

    #[test]
    fn bit_ops_match_semantics() {
        let a = TruthTable::var(4, 0).unwrap();
        let b = TruthTable::var(4, 3).unwrap();
        let and = &a & &b;
        let or = &a | &b;
        let xor = &a ^ &b;
        let na = !&a;
        for m in 0..16u64 {
            let (va, vb) = (m & 1 == 1, m >> 3 & 1 == 1);
            assert_eq!(and.get(m), va && vb);
            assert_eq!(or.get(m), va || vb);
            assert_eq!(xor.get(m), va ^ vb);
            assert_eq!(na.get(m), !va);
        }
    }

    #[test]
    fn not_keeps_tail_clean() {
        let z = TruthTable::zero(2).unwrap();
        let o = !&z;
        assert!(o.is_one());
        assert_eq!(o.words()[0], 0b1111);
    }

    #[test]
    fn cofactor_small_var() {
        // f = x0 x1 + x2
        let x0 = TruthTable::var(3, 0).unwrap();
        let x1 = TruthTable::var(3, 1).unwrap();
        let x2 = TruthTable::var(3, 2).unwrap();
        let f = &(&x0 & &x1) | &x2;
        let f_x0 = f.cofactor(0, true); // x1 + x2
        let expect = &x1 | &x2;
        assert_eq!(f_x0, expect);
        let f_nx0 = f.cofactor(0, false); // x2
        assert_eq!(f_nx0, x2);
    }

    #[test]
    fn cofactor_word_level_var() {
        // 8 vars: var 7 spans words.
        let x7 = TruthTable::var(8, 7).unwrap();
        let x0 = TruthTable::var(8, 0).unwrap();
        let f = &x7 & &x0;
        assert_eq!(f.cofactor(7, true), x0);
        assert!(f.cofactor(7, false).is_zero());
        assert!(!f.cofactor(7, true).depends_on(7));
    }

    #[test]
    fn depends_and_support() {
        let x1 = TruthTable::var(4, 1).unwrap();
        let x3 = TruthTable::var(4, 3).unwrap();
        let f = &x1 ^ &x3;
        assert!(f.depends_on(1));
        assert!(f.depends_on(3));
        assert!(!f.depends_on(0));
        assert_eq!(f.support_mask(), 0b1010);
    }

    #[test]
    fn implies_checks_containment() {
        let x0 = TruthTable::var(2, 0).unwrap();
        let x1 = TruthTable::var(2, 1).unwrap();
        let and = &x0 & &x1;
        let or = &x0 | &x1;
        assert!(and.implies(&or));
        assert!(!or.implies(&and));
        assert!(and.implies(&and));
    }

    #[test]
    fn from_cover_matches_cube_eval() {
        let mut c = Cover::new(3);
        c.push(Cube::from_literals(&[(0, true), (1, false)]).unwrap());
        c.push(Cube::from_literals(&[(2, true)]).unwrap());
        let t = TruthTable::from_cover(&c);
        for m in 0..8u64 {
            let expect = (m & 1 == 1 && m >> 1 & 1 == 0) || m >> 2 & 1 == 1;
            assert_eq!(t.get(m), expect);
        }
    }

    #[test]
    fn remap_widens_support() {
        let x0 = TruthTable::var(2, 0).unwrap();
        let x1 = TruthTable::var(2, 1).unwrap();
        let f = &x0 & &x1;
        // Place old var0 at 2 and old var1 at 0, inside 3 vars.
        let g = f.remap(3, &[2, 0]).unwrap();
        for m in 0..8u64 {
            let expect = (m >> 2 & 1 == 1) && (m & 1 == 1);
            assert_eq!(g.get(m), expect);
        }
    }

    #[test]
    fn minterm_iteration() {
        let x0 = TruthTable::var(2, 0).unwrap();
        let ms: Vec<u64> = x0.minterms().collect();
        assert_eq!(ms, vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "mismatched supports")]
    fn mismatched_ops_panic() {
        let a = TruthTable::zero(2).unwrap();
        let b = TruthTable::zero(3).unwrap();
        let _ = &a & &b;
    }
}
