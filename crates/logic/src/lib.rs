//! Boolean-function substrate for the ALS (approximate logic synthesis) stack.
//!
//! This crate provides the technology-independent function representations used
//! by every other crate in the workspace:
//!
//! * [`Cube`] / [`Cover`] — two-level sum-of-products (SOP) form, the per-node
//!   representation used by MIS/SIS-style multi-level networks.
//! * [`TruthTable`] — complete function representation for small supports
//!   (node local functions and window functions), with bitwise operations.
//! * [`mod@isop`] — the Minato–Morreale irredundant SOP generator, which doubles as
//!   our two-level minimizer for incompletely specified functions (the role
//!   ESPRESSO plays in the paper's flow).
//! * [`Expr`] — factored-form expression trees, the representation the DAC'16
//!   algorithms manipulate directly when generating *approximate simplified
//!   expressions* (ASEs).
//! * [`factor`] — algebraic factoring (kernels, algebraic division,
//!   quick-factor) that turns an SOP into a compact factored form, following
//!   the MIS lineage.
//!
//! # Example
//!
//! ```
//! use als_logic::{Cover, Cube, TruthTable, factor::factor_cover};
//!
//! // f = ac + ad + bc + bd  over vars a=0, b=1, c=2, d=3
//! let mut cover = Cover::new(4);
//! for (x, y) in [(0, 2), (0, 3), (1, 2), (1, 3)] {
//!     cover.push(Cube::from_literals(&[(x, true), (y, true)]).unwrap());
//! }
//! let expr = factor_cover(&cover);
//! // Factored form is (a + b)(c + d): 4 literals instead of 8.
//! assert_eq!(expr.literal_count(), 4);
//! assert_eq!(expr.to_truth_table(4), TruthTable::from_cover(&cover));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

mod cover;
mod cube;
mod error;
mod expr;
mod truth;

pub mod division;
pub mod factor;
pub mod isop;
pub mod kernel;
pub mod minimize;
pub mod urp;

pub use cover::Cover;
pub use cube::Cube;
pub use error::LogicError;
pub use expr::{Expr, LiteralRef};
pub use isop::isop;
pub use truth::TruthTable;

/// Maximum number of local variables supported by [`Cube`], [`Cover`] and
/// [`TruthTable`] operations that enumerate assignments.
///
/// Node local functions in a well-optimized multi-level network have small
/// supports (the paper notes factored forms usually have fewer than 5
/// literals), so this bound is generous.
pub const MAX_VARS: usize = 24;
