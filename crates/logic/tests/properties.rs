//! Property-based tests for the Boolean-function substrate.

use als_logic::division::divide;
use als_logic::factor::factor_cover;
use als_logic::isop::isop_exact;
use als_logic::minimize::{espresso_lite, minimize_exactish};
use als_logic::{Cover, Cube, Expr, TruthTable};
use proptest::prelude::*;

const NUM_VARS: usize = 5;

/// Strategy producing an arbitrary cube over `NUM_VARS` variables.
fn arb_cube() -> impl Strategy<Value = Cube> {
    proptest::collection::vec(0u8..3, NUM_VARS).prop_map(|codes| {
        let lits: Vec<(usize, bool)> = codes
            .iter()
            .enumerate()
            .filter_map(|(v, &c)| match c {
                0 => Some((v, true)),
                1 => Some((v, false)),
                _ => None,
            })
            .collect();
        Cube::from_literals(&lits).expect("phases are unique per variable")
    })
}

fn arb_cover() -> impl Strategy<Value = Cover> {
    proptest::collection::vec(arb_cube(), 0..8).prop_map(|cubes| Cover::from_cubes(NUM_VARS, cubes))
}

fn arb_truth_table() -> impl Strategy<Value = TruthTable> {
    proptest::collection::vec(any::<bool>(), 1 << NUM_VARS).prop_map(|bits| {
        TruthTable::from_fn(NUM_VARS, |m| bits[m as usize]).expect("support in range")
    })
}

proptest! {
    #[test]
    fn cover_eval_matches_truth_table(cover in arb_cover()) {
        let tt = cover.to_truth_table();
        for m in 0..(1u64 << NUM_VARS) {
            prop_assert_eq!(cover.eval(m), tt.get(m));
        }
    }

    #[test]
    fn contained_cube_removal_preserves_function(cover in arb_cover()) {
        let before = cover.to_truth_table();
        let mut c = cover.clone();
        c.remove_contained_cubes();
        prop_assert_eq!(c.to_truth_table(), before);
        // And is idempotent.
        let n = c.len();
        c.remove_contained_cubes();
        prop_assert_eq!(c.len(), n);
    }

    #[test]
    fn isop_is_exact_and_within_bounds(tt in arb_truth_table()) {
        let c = isop_exact(&tt);
        prop_assert_eq!(c.to_truth_table(), tt);
    }

    #[test]
    fn isop_respects_dont_care_interval(on in arb_truth_table(), dc in arb_truth_table()) {
        let on = &on & &!&dc; // make bounds consistent
        let upper = &on | &dc;
        let c = als_logic::isop(&on, &upper);
        let ct = c.to_truth_table();
        prop_assert!(on.implies(&ct));
        prop_assert!(ct.implies(&upper));
    }

    #[test]
    fn factoring_preserves_function_and_never_grows(cover in arb_cover()) {
        let e = factor_cover(&cover);
        prop_assert_eq!(e.to_truth_table(NUM_VARS), cover.to_truth_table());
        let mut dedup = cover.clone();
        dedup.remove_contained_cubes();
        prop_assert!(e.literal_count() <= dedup.literal_count());
    }

    #[test]
    fn division_identity(f in arb_cover(), idx in 0usize..8) {
        prop_assume!(!f.is_empty());
        let d = Cover::from_cubes(NUM_VARS, [f.cubes()[idx % f.len()]]);
        let div = divide(&f, &d);
        // Q·D + R == F as Boolean functions.
        let mut whole = Cover::new(NUM_VARS);
        for q in div.quotient.cubes() {
            for dc in d.cubes() {
                if let Some(c) = q.intersect(dc) {
                    whole.push(c);
                }
            }
        }
        whole.extend(div.remainder.cubes().iter().copied());
        prop_assert_eq!(whole.to_truth_table(), f.to_truth_table());
    }

    #[test]
    fn expr_removal_monotone_in_literal_count(cover in arb_cover(), mask in any::<u16>()) {
        let e = factor_cover(&cover);
        let n = e.literal_count();
        prop_assume!(n > 0);
        let indices: Vec<usize> = (0..n).filter(|i| mask >> (i % 16) & 1 == 1).collect();
        prop_assume!(indices.len() < n);
        if let Some(ase) = e.remove_literals(&indices) {
            prop_assert_eq!(ase.literal_count(), n - indices.len());
        }
    }

    #[test]
    fn minimizers_preserve_function(tt in arb_truth_table()) {
        let zero = TruthTable::zero(NUM_VARS).expect("in range");
        let a = minimize_exactish(&tt, &zero);
        prop_assert_eq!(a.to_truth_table(), tt.clone());
        let b = espresso_lite(&a, &zero);
        prop_assert_eq!(b.to_truth_table(), tt);
    }

    #[test]
    fn cofactor_shannon_expansion(tt in arb_truth_table(), var in 0usize..NUM_VARS) {
        let x = TruthTable::var(NUM_VARS, var).expect("in range");
        let f1 = tt.cofactor(var, true);
        let f0 = tt.cofactor(var, false);
        let rebuilt = &(&x & &f1) | &(&!&x & &f0);
        prop_assert_eq!(rebuilt, tt);
    }

    #[test]
    fn expr_cover_roundtrip(cover in arb_cover()) {
        let e = Expr::from_cover(&cover);
        prop_assert_eq!(e.to_truth_table(NUM_VARS), cover.to_truth_table());
        let back = e.to_cover(NUM_VARS);
        prop_assert_eq!(back.to_truth_table(), cover.to_truth_table());
    }

    #[test]
    fn supercube_contains_both(a in arb_cube(), b in arb_cube()) {
        let s = a.supercube(&b);
        prop_assert!(s.contains(&a));
        prop_assert!(s.contains(&b));
    }

    #[test]
    fn distance_zero_iff_intersecting(a in arb_cube(), b in arb_cube()) {
        prop_assert_eq!(a.distance(&b) == 0, a.intersect(&b).is_some());
    }
}
