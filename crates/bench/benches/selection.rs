//! Microbench: end-to-end algorithm cost on a small circuit — SASIMI vs.
//! single-selection vs. multi-selection, plus the don't-care ablation
//! (DESIGN.md §4.1 and §4.3). This is the runtime story of Table 4 in
//! miniature.

use als_circuits::ripple_carry_adder;
use als_core::{multi_selection, single_selection, AlsConfig, PatternPolicy};
use als_sasimi::sasimi;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn quick_config() -> AlsConfig {
    let mut config = AlsConfig::with_threshold(0.03);
    config.patterns = PatternPolicy::Fixed(1024);
    config.dont_care.method = als_dontcare::DontCareMethod::Enumerate;
    config
}

fn bench_selection(c: &mut Criterion) {
    let net = ripple_carry_adder(8);
    let config = quick_config();
    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    group.bench_function("single_selection/RCA8", |b| {
        b.iter(|| single_selection(black_box(&net), black_box(&config)));
    });
    group.bench_function("multi_selection/RCA8", |b| {
        b.iter(|| multi_selection(black_box(&net), black_box(&config)));
    });
    group.bench_function("sasimi/RCA8", |b| {
        b.iter(|| sasimi(black_box(&net), black_box(&config)));
    });
    let mut no_dc = config;
    no_dc.use_dont_cares = false;
    group.bench_function("single_selection_no_dontcares/RCA8", |b| {
        b.iter(|| single_selection(black_box(&net), black_box(&no_dc)));
    });
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
