//! Microbench: SDC/ODC computation cost — enumeration vs. SAT engines and
//! the window-size knob (DESIGN.md §4.4).

use als_circuits::ripple_carry_adder;
use als_dontcare::{compute_dont_cares, DontCareConfig, DontCareMethod};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_dontcare(c: &mut Criterion) {
    let net = ripple_carry_adder(16);
    let nodes: Vec<_> = net.internal_ids().take(24).collect();
    let mut group = c.benchmark_group("dontcare");
    for (label, method) in [
        ("enumerate", DontCareMethod::Enumerate),
        ("sat", DontCareMethod::Sat),
    ] {
        for levels in [1usize, 2] {
            let config = DontCareConfig {
                levels_in: levels,
                levels_out: levels,
                method,
                ..DontCareConfig::default()
            };
            group.bench_function(format!("{label}/window{levels}x{levels}"), |b| {
                b.iter(|| {
                    for &n in &nodes {
                        black_box(compute_dont_cares(black_box(&net), n, &config));
                    }
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dontcare);
criterion_main!(benches);
