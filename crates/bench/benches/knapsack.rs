//! Microbench: the multi-state knapsack DP, with and without dominance
//! pruning (the design-choice ablation called out in DESIGN.md §4.2).

use als_core::knapsack::{solve, KnapsackItem, KnapsackState};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn instance(num_items: usize, states_per_item: usize, seed: u64) -> Vec<KnapsackItem> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state
    };
    (0..num_items)
        .map(|_| KnapsackItem {
            states: (0..states_per_item)
                .map(|_| KnapsackState {
                    weight: next() % 50 + 1,
                    value: next() % 20 + 1,
                })
                .collect(),
        })
        .collect()
}

fn bench_knapsack(c: &mut Criterion) {
    let mut group = c.benchmark_group("knapsack");
    for &n in &[50usize, 200, 800] {
        let items = instance(n, 8, 42);
        group.bench_with_input(BenchmarkId::new("with_dominance", n), &items, |b, items| {
            b.iter(|| solve(black_box(items), 500, true));
        });
        group.bench_with_input(
            BenchmarkId::new("without_dominance", n),
            &items,
            |b, items| {
                b.iter(|| solve(black_box(items), 500, false));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_knapsack);
criterion_main!(benches);
