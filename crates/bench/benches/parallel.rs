//! Microbench: the candidate-evaluation engine's parallel speedup.
//!
//! A full engine refresh (every internal node priced from scratch) on a
//! 32-bit ripple-carry adder, swept over worker counts. The acceptance bar
//! for the engine is that some multi-threaded count beats one thread here;
//! `refresh` reduces worker results in node-id order, so the *candidates*
//! are identical at every count — only the wall clock moves.

use als_circuits::ripple_carry_adder;
use als_core::{AlsConfig, AlsContext, CandidateEngine, PatternPolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_parallel_refresh(c: &mut Criterion) {
    let net = ripple_carry_adder(32);
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let config = AlsConfig::builder()
            .threshold(0.05)
            .patterns(PatternPolicy::Fixed(2048))
            .threads(threads)
            .build()
            .expect("valid bench config");
        let ctx = AlsContext::new(&net, &config);
        group.bench_with_input(
            BenchmarkId::new("refresh/RCA32", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    // A fresh engine per iteration so every refresh re-prices
                    // all nodes (a warm cache would measure nothing).
                    let mut engine = CandidateEngine::new(black_box(&config), true);
                    engine.refresh(black_box(&net), black_box(&ctx));
                    black_box(engine.stats().evaluated)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_refresh);
criterion_main!(benches);
