//! Microbench: bit-parallel simulation throughput and error-rate
//! measurement on the Table 3 circuit classes.

use als_circuits::{array_multiplier, kogge_stone_adder, ripple_carry_adder};
use als_sim::{error_rate, simulate, PatternSet, DEFAULT_NUM_PATTERNS};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    let circuits = [
        ("RCA32", ripple_carry_adder(32)),
        ("KSA32", kogge_stone_adder(32)),
        ("MUL8", array_multiplier(8)),
    ];
    for (name, net) in &circuits {
        let patterns = PatternSet::random(net.num_pis(), DEFAULT_NUM_PATTERNS, 1);
        group.bench_function(format!("simulate_10k/{name}"), |b| {
            b.iter(|| simulate(black_box(net), black_box(&patterns)));
        });
    }
    // Error-rate measurement: golden vs. a slightly perturbed copy.
    let golden = ripple_carry_adder(32);
    let mut approx = golden.clone();
    let victim = approx.internal_ids().nth(20).expect("rca32 has many nodes");
    approx.replace_with_constant(victim, false);
    let patterns = PatternSet::random(golden.num_pis(), DEFAULT_NUM_PATTERNS, 1);
    group.bench_function("error_rate_10k/RCA32", |b| {
        b.iter(|| error_rate(black_box(&golden), black_box(&approx), black_box(&patterns)));
    });
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
