//! Microbench: the logic substrate — algebraic factoring, ISOP
//! minimization and kernel extraction on randomized covers.

use als_logic::factor::factor_cover;
use als_logic::isop::isop_exact;
use als_logic::kernel::kernels;
use als_logic::{Cover, Cube, TruthTable};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn random_covers(count: usize, num_vars: usize, cubes: usize, seed: u64) -> Vec<Cover> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state
    };
    (0..count)
        .map(|_| {
            let mut cover = Cover::new(num_vars);
            for _ in 0..cubes {
                let r = next();
                let mut lits = Vec::new();
                for v in 0..num_vars {
                    match r >> (2 * v) & 3 {
                        0 => lits.push((v, true)),
                        1 => lits.push((v, false)),
                        _ => {}
                    }
                }
                if let Ok(c) = Cube::from_literals(&lits) {
                    cover.push(c);
                }
            }
            cover
        })
        .collect()
}

fn bench_factoring(c: &mut Criterion) {
    let covers = random_covers(64, 8, 6, 7);
    let mut group = c.benchmark_group("logic");
    group.bench_function("factor_cover/8var_6cube_x64", |b| {
        b.iter(|| {
            for cover in &covers {
                black_box(factor_cover(black_box(cover)));
            }
        });
    });
    group.bench_function("kernels/8var_6cube_x64", |b| {
        b.iter(|| {
            for cover in &covers {
                black_box(kernels(black_box(cover)));
            }
        });
    });
    let tables: Vec<TruthTable> = covers.iter().map(Cover::to_truth_table).collect();
    group.bench_function("isop/8var_x64", |b| {
        b.iter(|| {
            for tt in &tables {
                black_box(isop_exact(black_box(tt)));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_factoring);
criterion_main!(benches);
