//! Regenerates the paper's **Table 4**: average mapped-area ratio and
//! average runtime over the seven thresholds, for SASIMI vs. the
//! single-selection vs. the multi-selection algorithm, with geometric means
//! and the headline speedups.
//!
//! Usage: `--quick` for a reduced run (3 thresholds, fewer patterns),
//! `--circuit <name>` to restrict to one benchmark, `--csv` for raw records,
//! `--json` for schema-versioned perf records on stdout (one JSON object
//! per circuit, the `BENCH_*.json` format of the `perfsuite` binary),
//! `--threads N` to size the candidate-evaluation worker pool (0 = all
//! cores; the reported results are identical for every thread count).

use als_bench::record::{BenchEntry, BenchRecord};
use als_bench::{
    exit_with_error, geometric_mean, run_one, Algorithm, PAPER_THRESHOLDS, QUICK_THRESHOLDS,
};

fn main() {
    let (quick, filter) = als_bench::parse_common_args();
    let threads = als_bench::parse_threads().unwrap_or_else(|e| exit_with_error(&e));
    let csv = std::env::args().any(|a| a == "--csv");
    let json = std::env::args().any(|a| a == "--json");
    let thresholds: Vec<f64> = if quick {
        QUICK_THRESHOLDS.to_vec()
    } else {
        PAPER_THRESHOLDS.to_vec()
    };

    let benches =
        als_bench::resolve_benchmarks(filter.as_deref()).unwrap_or_else(|e| exit_with_error(&e));

    if json {
        // Perf-record mode: one BENCH_*.json object per circuit on stdout.
        for bench in &benches {
            let golden = (bench.build)();
            let mut record = BenchRecord::new(bench.name, threads, quick);
            for &alg in &Algorithm::ALL {
                for &t in &thresholds {
                    let r = run_one(bench.name, &golden, alg, t, quick, threads);
                    record.entries.push(BenchEntry::from_run(&r));
                }
            }
            print!("{}", record.render());
        }
        return;
    }

    if csv {
        println!("circuit,algorithm,threshold,area_ratio,literal_ratio,error_rate,runtime_s");
    } else {
        println!(
            "Table 4: area ratio (avg over {} thresholds) and avg runtime/s",
            thresholds.len()
        );
        println!(
            "{:<8} | {:>10} {:>8} | {:>10} {:>8} | {:>10} {:>8}",
            "circuit", "SASIMI", "time/s", "single", "time/s", "multi", "time/s"
        );
    }

    let mut per_alg_ratios: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut per_alg_times: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut per_alg_delays: Vec<Vec<f64>> = vec![Vec::new(); 3];

    for bench in &benches {
        let golden = (bench.build)();
        let mut ratios = [0.0f64; 3];
        let mut times = [0.0f64; 3];
        for (ai, &alg) in Algorithm::ALL.iter().enumerate() {
            let mut ratio_sum = 0.0;
            let mut time_sum = 0.0;
            let mut delay_sum = 0.0;
            for &t in &thresholds {
                let r = run_one(bench.name, &golden, alg, t, quick, threads);
                delay_sum += r.delay_ratio;
                if csv {
                    println!(
                        "{},{},{},{:.4},{:.4},{:.5},{:.3}",
                        r.circuit,
                        r.algorithm,
                        r.threshold,
                        r.area_ratio,
                        r.literal_ratio,
                        r.error_rate,
                        r.runtime_s
                    );
                }
                ratio_sum += r.area_ratio;
                time_sum += r.runtime_s;
            }
            ratios[ai] = ratio_sum / thresholds.len() as f64;
            times[ai] = time_sum / thresholds.len() as f64;
            per_alg_ratios[ai].push(ratios[ai].max(1e-6));
            per_alg_times[ai].push(times[ai].max(1e-6));
            per_alg_delays[ai].push((delay_sum / thresholds.len() as f64).max(1e-6));
        }
        if !csv {
            println!(
                "{:<8} | {:>10.3} {:>8.2} | {:>10.3} {:>8.2} | {:>10.3} {:>8.2}",
                bench.name, ratios[0], times[0], ratios[1], times[1], ratios[2], times[2]
            );
        }
    }

    if !csv && !benches.is_empty() {
        let gm: Vec<f64> = per_alg_ratios.iter().map(|v| geometric_mean(v)).collect();
        let gt: Vec<f64> = per_alg_times.iter().map(|v| geometric_mean(v)).collect();
        println!(
            "{:<8} | {:>10.3} {:>8.2} | {:>10.3} {:>8.2} | {:>10.3} {:>8.2}",
            "Geomean", gm[0], gt[0], gm[1], gt[1], gm[2], gt[2]
        );
        println!();
        let gd: Vec<f64> = per_alg_delays.iter().map(|v| geometric_mean(v)).collect();
        println!(
            "speedup over SASIMI: single-selection {:.1}x, multi-selection {:.1}x",
            gt[0] / gt[1],
            gt[0] / gt[2]
        );
        println!(
            "delay ratio geomeans (approx/original): SASIMI {:.3}, single {:.3}, multi {:.3}",
            gd[0], gd[1], gd[2]
        );
        println!("(the paper observes delays do not degrade — shrinking nodes never");
        println!(" deepens the network; ratios at or below 1.0 reproduce that)");
        println!("paper reports 1.7x and 5.9x with better (smaller) area ratios for");
        println!("both proposed algorithms on nearly every circuit.");
    }
}
