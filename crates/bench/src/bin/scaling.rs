//! Runtime-scaling experiment backing the paper's complexity claim (§6):
//! SASIMI's candidate search is quadratic in the signal count while both
//! proposed algorithms are linear in the node count. We sweep one circuit
//! family (the adder/comparator) across widths and report runtime vs. size.
//!
//! Usage: `cargo run --release -p als-bench --bin scaling [--quick]
//! [--threads N]` (N = 0 uses all cores; timings change, results do not).

use als_bench::{run_one, Algorithm};
use als_circuits::alu::adder_comparator;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = als_bench::parse_threads().unwrap_or_else(|e| als_bench::exit_with_error(&e));
    let widths: &[usize] = if quick {
        &[8, 16, 32]
    } else {
        &[8, 16, 32, 48, 64]
    };

    println!("Runtime vs. circuit size (adder/comparator family, 5% threshold)");
    println!(
        "{:>6} {:>7} | {:>10} {:>10} {:>10}",
        "width", "nodes", "SASIMI/s", "single/s", "multi/s"
    );
    let mut prev: Option<(f64, [f64; 3])> = None;
    for &w in widths {
        let golden = adder_comparator(w);
        let nodes = golden.num_internal() as f64;
        let mut times = [0.0f64; 3];
        for (i, &alg) in Algorithm::ALL.iter().enumerate() {
            let r = run_one(&format!("ADDCMP{w}"), &golden, alg, 0.05, quick, threads);
            times[i] = r.runtime_s;
        }
        print!(
            "{:>6} {:>7} | {:>10.3} {:>10.3} {:>10.3}",
            w, nodes as usize, times[0], times[1], times[2]
        );
        if let Some((pn, pt)) = prev {
            let growth = nodes / pn;
            print!(
                "   (growth ×{:.1}: SASIMI ×{:.1}, single ×{:.1}, multi ×{:.1})",
                growth,
                times[0] / pt[0].max(1e-9),
                times[1] / pt[1].max(1e-9),
                times[2] / pt[2].max(1e-9)
            );
        }
        println!();
        prev = Some((nodes, times));
    }
    println!();
    println!("expected: SASIMI's runtime grows roughly quadratically with the node");
    println!("count (pairwise signature comparison), the proposed algorithms roughly");
    println!("linearly — the source of the paper's 1.7x/5.9x speedups at scale.");
}
