//! Ablation study for the design choices called out in DESIGN.md §4:
//! don't-care-aware estimation on/off, window size, and don't-care engine.
//!
//! Usage: `cargo run --release -p als-bench --bin ablation [--quick]`.

use als_circuits::registry::find_benchmark;
use als_core::{single_selection, AlsConfig, PatternPolicy};
use als_dontcare::DontCareMethod;
use als_mapper::{map_network, Library};

struct Variant {
    label: &'static str,
    configure: fn(&mut AlsConfig),
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let circuits = ["c1908", "alu4", "KSA32"];
    let variants: Vec<Variant> = vec![
        Variant {
            label: "baseline (2x2 SAT DCs)",
            configure: |_| {},
        },
        Variant {
            label: "no don't-cares",
            configure: |c| c.use_dont_cares = false,
        },
        Variant {
            label: "window 1x1",
            configure: |c| {
                c.dont_care.levels_in = 1;
                c.dont_care.levels_out = 1;
            },
        },
        Variant {
            label: "window 3x3",
            configure: |c| {
                c.dont_care.levels_in = 3;
                c.dont_care.levels_out = 3;
            },
        },
        Variant {
            label: "enumeration engine",
            configure: |c| c.dont_care.method = DontCareMethod::Enumerate,
        },
        Variant {
            label: "no preprocess",
            configure: |c| c.preprocess = false,
        },
        Variant {
            label: "exact BDD don't-cares",
            configure: |c| c.exact_dont_cares = true,
        },
    ];

    let lib = Library::mcnc_like();
    println!("Ablation: single-selection at a 5% threshold");
    print!("{:<24}", "variant");
    for c in &circuits {
        print!(" | {c:>8} ratio {:>7}", "time/s");
    }
    println!();
    for v in &variants {
        print!("{:<24}", v.label);
        for name in &circuits {
            let bench = find_benchmark(name).expect("registry circuit");
            let golden = (bench.build)();
            let base_area = map_network(&golden, &lib).area();
            let mut config = AlsConfig::with_threshold(0.05);
            if quick {
                config.patterns = PatternPolicy::Fixed(2048);
            }
            (v.configure)(&mut config);
            let outcome = single_selection(&golden, &config);
            let area = map_network(&outcome.network, &lib).area();
            print!(
                " | {:>14.3} {:>7.2}",
                area / base_area,
                outcome.runtime.as_secs_f64()
            );
        }
        println!();
    }
    println!();
    println!("expected: don't-cares and wider windows buy area at runtime cost;");
    println!("the preprocess matters on circuits with structural redundancy.");
}
