//! Regenerates the worked example of the paper's **Tables 1 and 2**: the
//! three-item multi-state knapsack and its dynamic-programming table.

use als_core::knapsack::{solve, KnapsackItem, KnapsackState};

fn paper_items() -> Vec<KnapsackItem> {
    vec![
        KnapsackItem {
            states: vec![
                KnapsackState {
                    weight: 2,
                    value: 1,
                },
                KnapsackState {
                    weight: 3,
                    value: 2,
                },
            ],
        },
        KnapsackItem {
            states: vec![
                KnapsackState {
                    weight: 4,
                    value: 2,
                },
                KnapsackState {
                    weight: 6,
                    value: 4,
                },
            ],
        },
        KnapsackItem {
            states: vec![KnapsackState {
                weight: 2,
                value: 1,
            }],
        },
    ]
}

fn main() {
    let items = paper_items();
    println!("Table 1: candidate items and their states");
    println!(
        "{:<6} {:<7} {:>7} {:>6}",
        "item", "state", "weight", "value"
    );
    for (i, item) in items.iter().enumerate() {
        for (j, s) in item.states.iter().enumerate() {
            println!(
                "c{:<5} s{}{:<5} {:>7} {:>6}",
                i + 1,
                i + 1,
                j + 1,
                s.weight,
                s.value
            );
        }
    }

    println!();
    println!("Table 2: DP table m[i, j] for capacity 9");
    print!("{:<11}", "up to item");
    for j in 0..=9 {
        print!("{j:>4}");
    }
    println!();
    for upto in 0..=items.len() {
        print!("{upto:<11}");
        for j in 0..=9u64 {
            let v = if upto == 0 {
                0
            } else {
                solve(&items[..upto], j, true).total_value
            };
            print!("{v:>4}");
        }
        println!();
    }

    let solution = solve(&items, 9, true);
    println!();
    println!(
        "optimal value: {} (weight {})",
        solution.total_value, solution.total_weight
    );
    for (i, choice) in solution.choices.iter().enumerate() {
        if let Some(s) = choice {
            println!("  pick item c{} in state s{}{}", i + 1, i + 1, s + 1);
        }
    }
    assert_eq!(solution.total_value, 6, "paper's optimum is 6");
    assert_eq!(
        solution.choices,
        vec![Some(1), Some(1), None],
        "paper picks c1@s12 and c2@s22"
    );
    println!("\nmatches the paper: c1 in s12, c2 in s22, optimum 6.");
}
