//! The perf gate: compares two `BENCH_<circuit>.json` or `SWEEP_<circuit>.json`
//! records (see the `perfsuite` binary and `als sweep`) and exits nonzero
//! when the new one regresses. Sweep records are detected by their
//! `"kind": "sweep"` discriminator and routed to the Pareto-frontier gate
//! (a point newly dominated by the baseline frontier fails).
//!
//! Usage: `als-bench --compare <baseline.json> <new.json>
//! [--max-slowdown PCT] [--max-quality PCT] [--warn-only]`
//!
//! * `--max-slowdown` — tolerated wall-time growth in percent (default 15;
//!   bench records only);
//! * `--max-quality` — tolerated literal-ratio growth in percent (default 2);
//! * `--warn-only` — print regressions but exit 0 (CI uses this on pull
//!   requests, where the comparison is advisory; pushes to main fail hard).

use als_bench::exit_with_error;
use als_bench::record::{compare, compare_sweep, BenchRecord, CompareOptions};
use als_core::sweep::SweepRecord;
use als_core::telemetry::Json;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if !argv.iter().any(|a| a == "--compare") {
        exit_with_error(
            "usage: als-bench --compare <baseline.json> <new.json> \
             [--max-slowdown PCT] [--max-quality PCT] [--warn-only]",
        );
    }

    let mut files: Vec<String> = Vec::new();
    let mut opts = CompareOptions::default();
    let mut warn_only = false;
    let mut i = 0;
    while i < argv.len() {
        let pct_of = |i: usize| -> Result<f64, String> {
            let value = argv
                .get(i + 1)
                .ok_or_else(|| format!("{} expects a percentage", argv[i]))?;
            value
                .parse()
                .map_err(|_| format!("{} expects a number, got `{value}`", argv[i]))
        };
        match argv[i].as_str() {
            "--compare" => {}
            "--warn-only" => warn_only = true,
            "--max-slowdown" => {
                opts.max_slowdown_pct = pct_of(i).unwrap_or_else(|e| exit_with_error(&e));
                i += 1;
            }
            "--max-quality" => {
                opts.max_quality_pct = pct_of(i).unwrap_or_else(|e| exit_with_error(&e));
                i += 1;
            }
            flag if flag.starts_with("--") => {
                exit_with_error(&format!("unknown flag `{flag}`"));
            }
            file => files.push(file.to_string()),
        }
        i += 1;
    }
    if files.len() != 2 {
        exit_with_error("--compare expects exactly two files: <baseline.json> <new.json>");
    }

    let read = |path: &str| -> String {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| exit_with_error(&format!("cannot read {path}: {e}")))
    };
    let is_sweep = |text: &str| {
        Json::parse(text)
            .ok()
            .and_then(|j| j.get("kind").map(|k| k.as_str() == Some("sweep")))
            .unwrap_or(false)
    };
    let old_text = read(&files[0]);
    let new_text = read(&files[1]);
    let (old_sweep, new_sweep) = (is_sweep(&old_text), is_sweep(&new_text));
    if old_sweep != new_sweep {
        exit_with_error("cannot compare a sweep record against a bench record");
    }

    let regressions;
    let (circuit, baseline_sha);
    if old_sweep {
        let load = |path: &str, text: &str| -> SweepRecord {
            SweepRecord::parse(text).unwrap_or_else(|e| exit_with_error(&format!("{path}: {e}")))
        };
        let old = load(&files[0], &old_text);
        let new = load(&files[1], &new_text);
        regressions = compare_sweep(&old, &new, &opts);
        circuit = new.circuit;
        baseline_sha = old.git_sha;
    } else {
        let load = |path: &str, text: &str| -> BenchRecord {
            BenchRecord::parse(text).unwrap_or_else(|e| exit_with_error(&format!("{path}: {e}")))
        };
        let old = load(&files[0], &old_text);
        let new = load(&files[1], &new_text);
        if old.nproc != new.nproc || old.threads != new.threads {
            println!(
                "note: environments differ (baseline {} threads on {} cores, \
                 new {} threads on {} cores) — timings may not be comparable",
                old.threads, old.nproc, new.threads, new.nproc
            );
        }
        regressions = compare(&old, &new, &opts);
        circuit = new.circuit;
        baseline_sha = old.git_sha;
    }

    if regressions.is_empty() {
        println!(
            "{}: no regression vs baseline {} (limits: +{:.0}% time, +{:.0}% quality)",
            circuit, baseline_sha, opts.max_slowdown_pct, opts.max_quality_pct
        );
        return;
    }
    for line in &regressions {
        println!("REGRESSION: {line}");
    }
    if warn_only {
        println!(
            "(--warn-only: exiting 0 despite {} regression(s))",
            regressions.len()
        );
    } else {
        std::process::exit(1);
    }
}
