//! Perf-record emitter: runs the three algorithms over benchmark circuits
//! and writes one schema-versioned `BENCH_<circuit>.json` per circuit, for
//! the CI perf gate (see `als-bench --compare`).
//!
//! Usage: `perfsuite [--quick] [--circuit <name>]... [--threads N]
//! [--out-dir DIR] [--notes TEXT]`
//!
//! * `--quick` — reduced setup (3 thresholds, fewer patterns); what CI runs;
//! * `--circuit` — may be repeated; default is all twelve Table 3 circuits;
//! * `--out-dir` — where the records are written (default `.`);
//! * `--notes` — free-form caveat stored in the record (e.g. host quirks).

use als_bench::record::BenchRecord;
use als_bench::{exit_with_error, run_one, Algorithm, PAPER_THRESHOLDS, QUICK_THRESHOLDS};
use als_circuits::Benchmark;
use std::path::PathBuf;

struct Args {
    quick: bool,
    circuits: Vec<String>,
    threads: usize,
    out_dir: PathBuf,
    notes: String,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        quick: false,
        circuits: Vec::new(),
        threads: als_bench::parse_threads()?,
        out_dir: PathBuf::from("."),
        notes: String::new(),
    };
    let mut i = 0;
    while i < argv.len() {
        let value_of = |i: usize| {
            argv.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{} expects a value", argv[i]))
        };
        match argv[i].as_str() {
            "--quick" => args.quick = true,
            "--circuit" => {
                args.circuits.push(value_of(i)?);
                i += 1;
            }
            "--out-dir" => {
                args.out_dir = PathBuf::from(value_of(i)?);
                i += 1;
            }
            "--notes" => {
                args.notes = value_of(i)?;
                i += 1;
            }
            "--threads" => i += 1, // parsed above
            other => return Err(format!("unknown flag `{other}` (see --help in the docs)")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| exit_with_error(&e));

    // Resolve every requested circuit up front so a typo fails before any
    // (slow) run starts.
    let benches: Vec<Benchmark> = if args.circuits.is_empty() {
        als_bench::resolve_benchmarks(None).unwrap_or_else(|e| exit_with_error(&e))
    } else {
        args.circuits
            .iter()
            .map(|name| {
                als_bench::resolve_benchmarks(Some(name))
                    .map_or_else(|e| exit_with_error(&e), |mut v| v.remove(0))
            })
            .collect()
    };
    let thresholds: &[f64] = if args.quick {
        &QUICK_THRESHOLDS
    } else {
        &PAPER_THRESHOLDS
    };

    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        exit_with_error(&format!(
            "cannot create out-dir {}: {e}",
            args.out_dir.display()
        ));
    }

    for bench in &benches {
        let golden = (bench.build)();
        let mut record = BenchRecord::new(bench.name, args.threads, args.quick);
        record.notes.clone_from(&args.notes);
        for &alg in &Algorithm::ALL {
            for &t in thresholds {
                let r = run_one(bench.name, &golden, alg, t, args.quick, args.threads);
                record
                    .entries
                    .push(als_bench::record::BenchEntry::from_run(&r));
            }
        }
        let path = args.out_dir.join(record.file_name());
        if let Err(e) = std::fs::write(&path, record.render()) {
            exit_with_error(&format!("cannot write {}: {e}", path.display()));
        }
        println!(
            "wrote {} ({} entries, git {})",
            path.display(),
            record.entries.len(),
            record.git_sha
        );
    }
}
