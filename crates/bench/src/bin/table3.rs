//! Regenerates the paper's **Table 3** (benchmark information): name, I/O,
//! function, node count, mapped area and delay — for our generated circuits,
//! side by side with the paper's reported numbers for the original netlists.

use als_circuits::all_benchmarks;
use als_mapper::{map_network, Library};

fn main() {
    let lib = Library::mcnc_like();
    println!("Table 3: benchmark information (ours vs. paper's originals)");
    println!(
        "{:<8} {:>9} {:<30} {:>7} {:>9} {:>7} | {:>9} {:>7} {:>7} {:>7}",
        "Name", "I/O", "Function", "#nodes", "Area", "Delay", "paper-IO", "#nodes", "Area", "Delay"
    );
    for bench in all_benchmarks() {
        let net = (bench.build)();
        let stats = net.stats();
        let mapped = map_network(&net, &lib);
        let marker = if bench.stand_in { "*" } else { " " };
        println!(
            "{:<7}{} {:>9} {:<30} {:>7} {:>9.0} {:>7.1} | {:>9} {:>7} {:>7.0} {:>7.1}",
            bench.name,
            marker,
            format!("{}/{}", stats.num_pis, stats.num_pos),
            bench.function,
            stats.num_nodes,
            mapped.area(),
            mapped.delay(),
            format!("{}/{}", bench.paper.io.0, bench.paper.io.1),
            bench.paper.nodes,
            bench.paper.area,
            bench.paper.delay,
        );
    }
    println!();
    println!("* generated stand-in for an unavailable MCNC/ISCAS netlist;");
    println!("  absolute sizes differ, circuit class and I/O semantics match.");
    println!("  Area/delay: our MCNC-like library units vs. the paper's SIS units.");
}
