//! `lint` — in-tree source lint: no panicking constructs in library code.
//!
//! Walks every workspace library crate's `src/` tree and flags
//! `unwrap()`, `expect(`, `panic!(`, `unreachable!(`, `todo!(` and
//! `unimplemented!(` outside the places where aborting is acceptable:
//!
//! * `#[cfg(test)]` modules and `tests/` trees (asserting is the point);
//! * `src/bin/` CLI entry points (a process abort is a process abort);
//! * the in-tree `proptest`/`criterion` shims (they mirror upstream APIs);
//! * lines carrying a `// lint:allow(panic)` marker with a justification.
//!
//! Exit code 0 when clean, 1 with a findings listing otherwise — wired
//! into CI next to `cargo fmt --check` and clippy.
//!
//! The scan is textual (a line-based brace tracker finds `mod tests`
//! blocks), which is exactly as precise as it needs to be for a curated
//! codebase: false positives are silenced with the marker, and the CI
//! gate keeps new unmarked hits out.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Panicking constructs that must not appear in library code.
const BANNED: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// The justification marker: a line carrying it — or directly adjacent to
/// it, since rustfmt may move a trailing comment onto its own line — is
/// exempt.
const ALLOW_MARKER: &str = "lint:allow(panic)";

/// Crate `src/` trees that are exempt wholesale: API-compatible shims of
/// external crates whose interfaces are panic-based.
const EXEMPT_CRATES: [&str; 2] = ["crates/proptest", "crates/criterion"];

struct Finding {
    path: PathBuf,
    line: usize,
    construct: &'static str,
    text: String,
}

fn main() -> std::process::ExitCode {
    let Some(root) = workspace_root() else {
        eprintln!("lint: cannot locate the workspace root (no Cargo.toml upwards)");
        return std::process::ExitCode::from(2);
    };
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for src_dir in library_src_dirs(&root) {
        for file in rust_files(&src_dir) {
            files_scanned += 1;
            scan_file(&file, &root, &mut findings);
        }
    }
    // Write errors (e.g. a closed pipe when the listing is piped through
    // `head`) must not turn into a panic in the lint itself.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if findings.is_empty() {
        let _ = writeln!(out, "lint: {files_scanned} file(s) clean");
        std::process::ExitCode::SUCCESS
    } else {
        for f in &findings {
            let _ = writeln!(
                out,
                "{}:{}: `{}` in library code: {}",
                f.path.display(),
                f.line,
                f.construct,
                f.text.trim()
            );
        }
        let _ = writeln!(
            out,
            "lint: {} finding(s) in {files_scanned} file(s); fix or justify with `// {ALLOW_MARKER}: why`",
            findings.len()
        );
        std::process::ExitCode::FAILURE
    }
}

/// Walks upward from the current directory to the workspace root (the
/// directory whose Cargo.toml declares `[workspace]`).
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Every library `src/` tree: the root crate plus each workspace member,
/// minus the exempt shims.
fn library_src_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut members: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let rel = member.strip_prefix(root).unwrap_or(&member);
            if EXEMPT_CRATES.iter().any(|e| Path::new(e) == rel) {
                continue;
            }
            let src = member.join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    dirs
}

/// All `.rs` files under `dir`, skipping `src/bin/` CLI trees.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        if d.file_name().is_some_and(|n| n == "bin") {
            continue;
        }
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn scan_file(path: &Path, root: &Path, findings: &mut Vec<Finding>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let mut in_tests = false;
    let mut depth_at_tests = 0usize;
    let mut depth = 0usize;
    let mut pending_cfg_test = false;
    let lines: Vec<&str> = text.lines().collect();
    for (idx, &line) in lines.iter().enumerate() {
        let code = strip_comment(line);
        // Track `#[cfg(test)] mod …` blocks: everything inside is test
        // code and exempt.
        if !in_tests && code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        if pending_cfg_test && code.contains("mod ") && code.contains('{') {
            in_tests = true;
            depth_at_tests = depth;
            pending_cfg_test = false;
        }
        depth += code.matches('{').count();
        depth = depth.saturating_sub(code.matches('}').count());
        if in_tests {
            if depth <= depth_at_tests {
                in_tests = false;
            }
            continue;
        }
        let marked = line.contains(ALLOW_MARKER)
            || (idx > 0 && lines[idx - 1].contains(ALLOW_MARKER))
            || lines.get(idx + 1).is_some_and(|l| l.contains(ALLOW_MARKER));
        if marked {
            continue;
        }
        for construct in BANNED {
            if code.contains(construct) {
                findings.push(Finding {
                    path: path.strip_prefix(root).unwrap_or(path).to_path_buf(),
                    line: idx + 1,
                    construct,
                    text: line.to_string(),
                });
            }
        }
    }
}

/// Drops `//` comments (so a construct *mentioned* in a doc comment is
/// not a finding) while keeping the code part of the line.
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}
