//! `lint` — in-tree source lint for library code, three passes:
//!
//! * **panic** — no panicking constructs: `unwrap()`, `expect(`,
//!   `panic!(`, `unreachable!(`, `todo!(` and `unimplemented!(`;
//! * **as-cast** — no `as`-casts to numeric types. `as` silently
//!   truncates, wraps and rounds; library code must use `From`/`try_from`
//!   (lossless or checked) or justify the cast with a marker;
//! * **map-iter** — no iteration over `HashMap`/`HashSet` contents.
//!   Hash-order iteration is nondeterministic across processes, and any
//!   such loop feeding ordered or emitted output silently breaks the
//!   byte-identity suites; iterate a sorted view or a side-car order
//!   vector instead, or justify order-independence with a marker.
//!
//! All passes skip the places where the constructs are acceptable:
//!
//! * `#[cfg(test)]` modules and `tests/` trees (asserting is the point);
//! * `src/bin/` CLI entry points (a process abort is a process abort);
//! * the in-tree `proptest`/`criterion` shims (they mirror upstream APIs);
//! * lines carrying a `// lint:allow(panic)` / `// lint:allow(as-cast)` /
//!   `// lint:allow(map-iter)` marker with a justification.
//!
//! Usage: `lint [--pass panic|as-cast|map-iter|all]` (default `all`).
//! Exit code 0 when clean, 1 with a findings listing otherwise — wired
//! into CI next to `cargo fmt --check` and clippy.
//!
//! The scan is textual (a line-based brace tracker finds `mod tests`
//! blocks), which is exactly as precise as it needs to be for a curated
//! codebase: false positives are silenced with the marker, and the CI
//! gate keeps new unmarked hits out.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Panicking constructs that must not appear in library code.
const BANNED: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Numeric types an `as`-cast can target; every one of them can lose
/// information from some source type, so all are flagged and the marker
/// records why each surviving cast is fine.
const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// The justification markers: a line carrying one — or directly adjacent
/// to it, since rustfmt may move a trailing comment onto its own line —
/// is exempt from the corresponding pass.
const PANIC_MARKER: &str = "lint:allow(panic)";
const AS_CAST_MARKER: &str = "lint:allow(as-cast)";
const MAP_ITER_MARKER: &str = "lint:allow(map-iter)";

/// Iteration methods that walk a hash container in hash order.
const ITER_METHODS: [&str; 8] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain()",
    ".retain(",
];

/// Crate `src/` trees that are exempt wholesale: API-compatible shims of
/// external crates whose interfaces are panic-based.
const EXEMPT_CRATES: [&str; 2] = ["crates/proptest", "crates/criterion"];

/// Which passes to run.
#[derive(Clone, Copy, PartialEq)]
enum PassSelect {
    Panic,
    AsCast,
    MapIter,
    All,
}

impl PassSelect {
    fn runs_panic(self) -> bool {
        matches!(self, PassSelect::Panic | PassSelect::All)
    }

    fn runs_as_cast(self) -> bool {
        matches!(self, PassSelect::AsCast | PassSelect::All)
    }

    fn runs_map_iter(self) -> bool {
        matches!(self, PassSelect::MapIter | PassSelect::All)
    }
}

struct Finding {
    path: PathBuf,
    line: usize,
    construct: String,
    marker: &'static str,
    text: String,
}

fn main() -> std::process::ExitCode {
    let select = match parse_pass_arg() {
        Ok(select) => select,
        Err(message) => {
            eprintln!("lint: {message}");
            return std::process::ExitCode::from(2);
        }
    };
    let Some(root) = workspace_root() else {
        eprintln!("lint: cannot locate the workspace root (no Cargo.toml upwards)");
        return std::process::ExitCode::from(2);
    };
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for src_dir in library_src_dirs(&root) {
        for file in rust_files(&src_dir) {
            files_scanned += 1;
            scan_file(&file, &root, select, &mut findings);
        }
    }
    // Write errors (e.g. a closed pipe when the listing is piped through
    // `head`) must not turn into a panic in the lint itself.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if findings.is_empty() {
        let _ = writeln!(out, "lint: {files_scanned} file(s) clean");
        std::process::ExitCode::SUCCESS
    } else {
        for f in &findings {
            let _ = writeln!(
                out,
                "{}:{}: `{}` in library code: {} (fix or justify with `// {}: why`)",
                f.path.display(),
                f.line,
                f.construct,
                f.text.trim(),
                f.marker,
            );
        }
        let _ = writeln!(
            out,
            "lint: {} finding(s) in {files_scanned} file(s)",
            findings.len()
        );
        std::process::ExitCode::FAILURE
    }
}

/// Parses `--pass panic|as-cast|map-iter|all` (default `all`).
fn parse_pass_arg() -> Result<PassSelect, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => Ok(PassSelect::All),
        Some("--pass") => match args.get(1).map(String::as_str) {
            Some("panic") => Ok(PassSelect::Panic),
            Some("as-cast") => Ok(PassSelect::AsCast),
            Some("map-iter") => Ok(PassSelect::MapIter),
            Some("all") => Ok(PassSelect::All),
            Some(other) => Err(format!(
                "unknown pass `{other}` (expected panic, as-cast, map-iter or all)"
            )),
            None => Err("--pass needs a value: panic, as-cast, map-iter or all".to_string()),
        },
        Some(other) => Err(format!("unknown argument `{other}` (try --pass)")),
    }
}

/// Walks upward from the current directory to the workspace root (the
/// directory whose Cargo.toml declares `[workspace]`).
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Every library `src/` tree: the root crate plus each workspace member,
/// minus the exempt shims.
fn library_src_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut members: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let rel = member.strip_prefix(root).unwrap_or(&member);
            if EXEMPT_CRATES.iter().any(|e| Path::new(e) == rel) {
                continue;
            }
            let src = member.join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    dirs
}

/// All `.rs` files under `dir`, skipping `src/bin/` CLI trees.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        if d.file_name().is_some_and(|n| n == "bin") {
            continue;
        }
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn scan_file(path: &Path, root: &Path, select: PassSelect, findings: &mut Vec<Finding>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let mut in_tests = false;
    let mut depth_at_tests = 0usize;
    let mut depth = 0usize;
    let mut pending_cfg_test = false;
    let lines: Vec<&str> = text.lines().collect();
    let hash_names = if select.runs_map_iter() {
        hash_container_names(&lines)
    } else {
        Vec::new()
    };
    for (idx, &line) in lines.iter().enumerate() {
        let code = strip_comment(line);
        // Track `#[cfg(test)] mod …` blocks: everything inside is test
        // code and exempt.
        if !in_tests && code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        if pending_cfg_test && code.contains("mod ") && code.contains('{') {
            in_tests = true;
            depth_at_tests = depth;
            pending_cfg_test = false;
        }
        depth += code.matches('{').count();
        depth = depth.saturating_sub(code.matches('}').count());
        if in_tests {
            if depth <= depth_at_tests {
                in_tests = false;
            }
            continue;
        }
        let marked = |marker: &str| {
            line.contains(marker)
                || (idx > 0 && lines[idx - 1].contains(marker))
                || lines.get(idx + 1).is_some_and(|l| l.contains(marker))
        };
        let push = |findings: &mut Vec<Finding>, construct: String, marker: &'static str| {
            findings.push(Finding {
                path: path.strip_prefix(root).unwrap_or(path).to_path_buf(),
                line: idx + 1,
                construct,
                marker,
                text: line.to_string(),
            });
        };
        if select.runs_panic() && !marked(PANIC_MARKER) {
            for construct in BANNED {
                if code.contains(construct) {
                    push(findings, construct.to_string(), PANIC_MARKER);
                }
            }
        }
        if select.runs_as_cast() && !marked(AS_CAST_MARKER) {
            if let Some(cast) = find_numeric_as_cast(code) {
                push(findings, cast, AS_CAST_MARKER);
            }
        }
        if select.runs_map_iter() && !marked(MAP_ITER_MARKER) {
            if let Some(it) = find_map_iteration(code, &hash_names) {
                push(findings, it, MAP_ITER_MARKER);
            }
        }
    }
}

/// Collects the identifiers a file binds to `HashMap`/`HashSet` values:
/// `let` bindings, function parameters, and struct fields (`name: …Hash…<`).
/// Textual like the rest of the lint — names the heuristic misses simply
/// stay unchecked, and CI keeps new unmarked iteration over the found ones
/// out.
fn hash_container_names(lines: &[&str]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let ident = |c: &char| c.is_alphanumeric() || *c == '_';
    for &line in lines {
        let code = strip_comment(line);
        if !code.contains("HashMap") && !code.contains("HashSet") {
            continue;
        }
        // `let [mut] name … = HashMap::new()` / `let name: HashSet<…>`.
        if let Some(rest) = code.trim_start().strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest.chars().take_while(ident).collect();
            if !name.is_empty() && !names.contains(&name) {
                names.push(name);
            }
        }
        // `name: [&['a ]][mut ]HashMap<` — parameters and struct fields.
        for key in ["HashMap<", "HashSet<"] {
            let mut from = 0;
            while let Some(p) = code[from..].find(key) {
                let abs = from + p;
                from = abs + key.len();
                let mut before = code[..abs].trim_end();
                for prefix in ["mut", "'_", "'a", "'b"] {
                    before = before.strip_suffix(prefix).unwrap_or(before).trim_end();
                }
                before = before.strip_suffix('&').unwrap_or(before).trim_end();
                let Some(before) = before.strip_suffix(':') else {
                    continue;
                };
                let rev: String = before.trim_end().chars().rev().take_while(ident).collect();
                let name: String = rev.chars().rev().collect();
                if !name.is_empty() && !names.contains(&name) {
                    names.push(name);
                }
            }
        }
    }
    names
}

/// Finds hash-order iteration on a (comment-stripped) line: one of the
/// [`ITER_METHODS`] called on a known hash-container name, or a `for` loop
/// directly over one. Returns the offending `name.method` text.
fn find_map_iteration(code: &str, names: &[String]) -> Option<String> {
    let boundary_ok = |code: &str, pos: usize| {
        code[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_')
    };
    for name in names {
        for method in ITER_METHODS {
            let pat = format!("{name}{method}");
            for (pos, _) in code.match_indices(&pat) {
                if boundary_ok(code, pos) {
                    return Some(format!("{name}{method}"));
                }
            }
        }
        // `for … in [&[mut ]]name {` — the implicit IntoIterator walk.
        if let Some(pos) = code.find(" in ") {
            let mut expr = code[pos + 4..].trim_start();
            expr = expr.strip_prefix('&').unwrap_or(expr);
            expr = expr.strip_prefix("mut ").unwrap_or(expr).trim_start();
            if let Some(rest) = expr.strip_prefix(name.as_str()) {
                let next = rest.chars().next();
                if code[..pos].contains("for ")
                    && next.is_none_or(|c| !c.is_alphanumeric() && c != '_' && c != '.')
                    && !rest.trim_start().starts_with('(')
                {
                    return Some(format!("for … in {name}"));
                }
            }
        }
    }
    None
}

/// Finds the first `… as <numeric-type>` cast on a (comment-stripped)
/// line, returning the `as <type>` text. One finding per line is enough:
/// a line is either triaged wholesale or rewritten.
fn find_numeric_as_cast(code: &str) -> Option<String> {
    let mut start = 0;
    while let Some(pos) = code[start..].find(" as ") {
        let abs = start + pos;
        let after = &code[abs + 4..];
        let token: String = after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        // `u64`-the-token, not `u64_extra`-the-identifier: the taken
        // prefix must be the whole token for the match to be a type.
        if NUMERIC_TYPES.contains(&token.as_str()) {
            return Some(format!("as {token}"));
        }
        start = abs + 4;
    }
    None
}

/// Drops `//` comments (so a construct *mentioned* in a doc comment is
/// not a finding) while keeping the code part of the line.
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}
