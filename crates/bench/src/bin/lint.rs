//! Deprecated alias for `als-lint`.
//!
//! The in-tree lint grew up and moved to its own crate (`crates/lint`,
//! binary `als-lint`) with a token-aware scanner, four more passes, a
//! stale-suppression audit and a ratcheted baseline. This shim keeps
//! existing `cargo run -p als-bench --bin lint -- --pass <p>` invocations
//! (CI scripts, muscle memory) working by forwarding the argument list
//! unchanged — the old pass names are a subset of the new ones.

fn main() -> std::process::ExitCode {
    eprintln!(
        "warning: `cargo run -p als-bench --bin lint` is deprecated; use \
         `cargo run -p als-lint` (same passes plus float-cmp, silent-result, \
         nondeterminism and the stale-allow suppression audit)"
    );
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::ExitCode::from(als_lint::cli_main(&args))
}
