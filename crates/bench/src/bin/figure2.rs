//! Regenerates the paper's **Figure 2**: area saving (%) of the
//! single-selection algorithm as a function of the error-rate threshold,
//! one series per benchmark.
//!
//! Usage: `table` output by default; pass `--csv` for machine-readable
//! series, `--quick` for a reduced run, `--circuit <name>` to restrict to
//! one benchmark.

use als_bench::{run_one, Algorithm, PAPER_THRESHOLDS, QUICK_THRESHOLDS};
use als_circuits::all_benchmarks;

fn main() {
    let (quick, filter) = als_bench::parse_common_args();
    let csv = std::env::args().any(|a| a == "--csv");
    // Figure 2 includes the zero-threshold point (where some circuits still
    // save area thanks to redundancy removal).
    let mut thresholds = vec![0.0];
    if quick {
        thresholds.extend(QUICK_THRESHOLDS);
    } else {
        thresholds.extend(PAPER_THRESHOLDS);
    }

    if csv {
        println!("circuit,threshold,area_saving_percent");
    } else {
        println!("Figure 2: area saving of the single-selection algorithm");
        print!("{:<8}", "circuit");
        for t in &thresholds {
            print!("{:>9}", format!("{:.1}%", t * 100.0));
        }
        println!();
    }

    for bench in all_benchmarks() {
        if let Some(f) = &filter {
            if !bench.name.eq_ignore_ascii_case(f) {
                continue;
            }
        }
        let golden = (bench.build)();
        let mut row = Vec::new();
        for &t in &thresholds {
            let r = run_one(bench.name, &golden, Algorithm::SingleSelection, t, quick, 1);
            let saving = (1.0 - r.area_ratio) * 100.0;
            if csv {
                println!("{},{},{:.2}", bench.name, t, saving);
            }
            row.push(saving);
        }
        if !csv {
            print!("{:<8}", bench.name);
            for s in row {
                print!("{s:>9.1}");
            }
            println!();
        }
    }
    if !csv {
        println!();
        println!("values are mapped-area savings (%) vs. the original circuit;");
        println!("expected shape: monotone growth with the threshold, 15–35% at 5%");
        println!("for most circuits, far more for the SEC/DED-class circuit.");
    }
}
