//! `servebench` — cold→warm throughput probe for the `als serve` daemon.
//!
//! Submits the same circuit twice over one connection — a cold job, then a
//! warm job at a *different* threshold — and records what the daemon
//! reported per job: phase timings, artifact-cache counters, result
//! quality. The record's audit is the gate: the warm job must show
//! non-vacuous cache hits and *zero* parse/signature phase time, or the
//! binary exits nonzero. CI runs this as the serve smoke.
//!
//! ```text
//! servebench [--addr HOST:PORT] [--circuit NAME] [-o FILE]
//!            [--events FILE] [--shutdown]
//! ```
//!
//! Without `--addr` an in-process daemon is started on a loopback port
//! (handy locally); with it, an already-running `als serve` is probed —
//! `--shutdown` then asks that daemon to exit afterwards, so CI can tear
//! down cleanly. `--events` (in-process mode only) writes the daemon's
//! JSONL telemetry transcript.

use als_bench::exit_with_error;
use als_bench::serve_record::{ServeEntry, ServeRecord};
use als_serve::{ServeConfig, Server};
use als_telemetry::{Json, JsonlSink, Telemetry};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// The job pair: (id, threshold, warm expectation). Different thresholds
/// force a real re-run of the selection loop; everything upstream of it
/// must come from the cache on the second job.
const JOBS: [(&str, f64, bool); 2] = [("cold", 0.01, false), ("warm", 0.05, true)];
const SEED: u64 = 7;
const PATTERNS: &str = "fixed:512";

struct Args {
    addr: Option<String>,
    circuit: String,
    out: Option<String>,
    events: Option<String>,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        circuit: "MUL8".to_string(),
        out: None,
        events: None,
        shutdown: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} expects a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => {
                args.addr = Some(value(&argv, i, "--addr")?);
                i += 2;
            }
            "--circuit" => {
                args.circuit = value(&argv, i, "--circuit")?;
                i += 2;
            }
            "-o" | "--out" => {
                args.out = Some(value(&argv, i, "-o")?);
                i += 2;
            }
            "--events" => {
                args.events = Some(value(&argv, i, "--events")?);
                i += 2;
            }
            "--shutdown" => {
                args.shutdown = true;
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.addr.is_some() && args.events.is_some() {
        return Err("--events writes the in-process daemon's transcript; \
                    it cannot be combined with --addr"
            .to_string());
    }
    Ok(args)
}

/// A synthesize frame for one job of the pair.
fn synth_line(id: &str, circuit: &str, threshold: f64) -> String {
    let mut source = Json::object();
    source.set("bench", circuit);
    let mut frame = Json::object();
    frame
        .set("v", 1u64)
        .set("type", "synthesize")
        .set("id", id)
        .set("circuit", source)
        .set("threshold", threshold)
        .set("algorithm", "multi")
        .set("seed", SEED)
        .set("patterns", PATTERNS);
    frame.render()
}

/// Reads frames until the job's `result`, failing loudly on `error`.
fn await_result(reader: &mut BufReader<TcpStream>, id: &str) -> Json {
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read from daemon") == 0 {
            exit_with_error(&format!("daemon hung up before job `{id}` finished"));
        }
        let frame = Json::parse(line.trim_end()).expect("daemon frames are valid JSON");
        match frame.get("type").and_then(Json::as_str).unwrap_or("") {
            "accepted" | "progress" | "pong" => {}
            "result" => return frame,
            "error" => exit_with_error(&format!("daemon rejected job `{id}`: {}", frame.render())),
            other => exit_with_error(&format!("unexpected `{other}` frame: {}", frame.render())),
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => exit_with_error(&e),
    };

    // Either probe an external daemon or raise a private in-process one.
    let mut in_process = None;
    let addr = if let Some(addr) = &args.addr {
        addr.clone()
    } else {
        let telemetry = match &args.events {
            Some(path) => {
                let sink = JsonlSink::create(path)
                    .unwrap_or_else(|e| exit_with_error(&format!("--events {path}: {e}")));
                Telemetry::new(Arc::new(sink))
            }
            None => Telemetry::disabled(),
        };
        let server = Server::bind(&ServeConfig::new("127.0.0.1:0"), telemetry)
            .unwrap_or_else(|e| exit_with_error(&format!("bind in-process daemon: {e}")));
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        in_process = Some((handle, thread));
        addr
    };

    let stream = TcpStream::connect(&addr)
        .unwrap_or_else(|e| exit_with_error(&format!("connect {addr}: {e}")));
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);

    let mut record = ServeRecord::new(&args.circuit);
    for (id, threshold, warm) in JOBS {
        writeln!(writer, "{}", synth_line(id, &args.circuit, threshold)).expect("send job");
        writer.flush().expect("flush job");
        let result = await_result(&mut reader, id);
        match ServeEntry::from_result_frame(&result, warm, threshold) {
            Ok(entry) => record.entries.push(entry),
            Err(e) => exit_with_error(&format!("malformed result frame for `{id}`: {e}")),
        }
    }

    if args.shutdown {
        writeln!(writer, r#"{{"v":1,"type":"shutdown"}}"#).expect("send shutdown");
        writer.flush().expect("flush shutdown");
    }
    drop(writer);
    drop(reader);
    if let Some((handle, thread)) = in_process {
        handle.shutdown();
        thread
            .join()
            .expect("daemon thread")
            .expect("daemon exits cleanly");
    }

    let rendered = record.render();
    match &args.out {
        Some(path) => {
            std::fs::write(path, &rendered)
                .unwrap_or_else(|e| exit_with_error(&format!("write {path}: {e}")));
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }

    let findings = record.audit();
    if findings.is_empty() {
        eprintln!(
            "serve smoke passed: warm job skipped parse/signature phases \
             ({} cache hits)",
            record.entries.last().map_or(0, |e| e.cache_hits)
        );
    } else {
        for f in &findings {
            eprintln!("finding: {f}");
        }
        std::process::exit(1);
    }
}
