//! Versioned perf records (`BENCH_<circuit>.json`) and the regression
//! comparator behind the CI perf gate.
//!
//! A [`BenchRecord`] captures one `perfsuite` run on one circuit: the
//! environment (git sha, thread count, host parallelism), and per
//! algorithm × threshold the quality (literal/area ratio, error rate) and
//! the timings (wall clock plus the engine's per-phase breakdown from
//! [`MetricsReport`](als_telemetry::MetricsReport)). Records are written as
//! schema-versioned JSON so baselines checked into the repository stay
//! comparable across revisions, and [`compare`] flags wall-time or quality
//! regressions between two records.

use crate::RunResult;
use als_telemetry::json::{Json, JsonError};

/// Version stamp of the `BENCH_*.json` format. Bump on breaking changes;
/// [`BenchRecord::parse`] rejects records from other versions rather than
/// mis-reading them.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// One algorithm × threshold measurement inside a [`BenchRecord`].
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Algorithm display name (`SASIMI`, `single-selection`, ...).
    pub algorithm: String,
    /// Error-rate threshold of the run.
    pub threshold: f64,
    /// Literal ratio (approx / original); lower is better.
    pub literal_ratio: f64,
    /// Mapped-area ratio (approx / original); lower is better.
    pub area_ratio: f64,
    /// Mapped delay ratio (approx / original); lower is better. Optional in
    /// the JSON — records predating the field read back as 0.
    pub delay_ratio: f64,
    /// Mapped critical-path delay of the approximated network, in library
    /// delay units. Optional in the JSON, defaulting to 0.
    pub mapped_delay: f64,
    /// Measured error rate of the result.
    pub error_rate: f64,
    /// Wall-clock runtime in seconds.
    pub runtime_s: f64,
    /// Local-pattern gathers skipped because static bounds pruned every
    /// candidate of a node (the abstract interpreter's simulations-avoided
    /// measure). Optional in the JSON — records predating the field read
    /// back as 0.
    pub simulations_avoided: u64,
    /// Nodes re-evaluated by incremental dirty-set resimulation across the
    /// run. Optional in the JSON — records predating the field read back
    /// as 0.
    pub resim_nodes: u64,
    /// Nodes full resimulation would have evaluated for the same updates;
    /// `resim_nodes` strictly below this is the incremental saving.
    /// Optional in the JSON, defaulting to 0.
    pub resim_full_equivalent: u64,
    /// Signature words written by simulation across the run (node
    /// evaluations × 64-pattern words) — the unit adaptive sampling saves
    /// in. Optional in the JSON, defaulting to 0.
    pub patterns_simulated_words: u64,
    /// Trials rejected from a pattern prefix by adaptive sampling before
    /// full-budget simulation. Optional in the JSON, defaulting to 0.
    pub adaptive_early_decisions: u64,
    /// Individual SAT queries (`solve_with_assumptions` calls) issued by
    /// the don't-care engine. Optional in the JSON, defaulting to 0.
    pub sat_queries: u64,
    /// SAT solver instances that served at least one query —
    /// `solver_instances ≪ sat_queries` is the incremental-reuse measure.
    /// Optional in the JSON, defaulting to 0.
    pub solver_instances: u64,
    /// Clauses physically reclaimed by clause-group retraction. Optional in
    /// the JSON, defaulting to 0.
    pub clauses_retracted: u64,
    /// Engine phase breakdown in seconds (`preprocess`, `simulate`, ...).
    pub phases: Vec<(String, f64)>,
}

impl BenchEntry {
    /// Builds an entry from a harness [`RunResult`] (phase timings come from
    /// the outcome's metrics).
    pub fn from_run(r: &RunResult) -> Self {
        BenchEntry {
            algorithm: r.algorithm.clone(),
            threshold: r.threshold,
            literal_ratio: r.literal_ratio,
            area_ratio: r.area_ratio,
            delay_ratio: r.delay_ratio,
            mapped_delay: r.metrics.mapped_delay,
            error_rate: r.error_rate,
            runtime_s: r.runtime_s,
            simulations_avoided: r.metrics.nodes_skipped,
            resim_nodes: r.metrics.resim_nodes,
            resim_full_equivalent: r.metrics.resim_full_equivalent,
            patterns_simulated_words: r.metrics.patterns_simulated_words,
            adaptive_early_decisions: r.metrics.adaptive_early_decisions,
            sat_queries: r.metrics.sat_queries,
            solver_instances: r.metrics.solver_instances,
            clauses_retracted: r.metrics.clauses_retracted,
            phases: r
                .metrics
                .phase_nanos
                .as_seconds()
                .iter()
                .map(|&(name, secs)| (name.to_string(), secs))
                .collect(),
        }
    }

    fn to_json(&self) -> Json {
        let mut phases = Json::object();
        for (name, secs) in &self.phases {
            phases.set(name.as_str(), *secs);
        }
        let mut obj = Json::object();
        obj.set("algorithm", self.algorithm.as_str())
            .set("threshold", self.threshold)
            .set("literal_ratio", self.literal_ratio)
            .set("area_ratio", self.area_ratio)
            .set("delay_ratio", self.delay_ratio)
            .set("mapped_delay", self.mapped_delay)
            .set("error_rate", self.error_rate)
            .set("runtime_s", self.runtime_s)
            .set("simulations_avoided", self.simulations_avoided)
            .set("resim_nodes", self.resim_nodes)
            .set("resim_full_equivalent", self.resim_full_equivalent)
            .set("patterns_simulated_words", self.patterns_simulated_words)
            .set("adaptive_early_decisions", self.adaptive_early_decisions)
            .set("sat_queries", self.sat_queries)
            .set("solver_instances", self.solver_instances)
            .set("clauses_retracted", self.clauses_retracted)
            .set("phases", phases);
        obj
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("entry is missing numeric field `{key}`"))
        };
        let mut phases = Vec::new();
        if let Some(Json::Obj(map)) = v.get("phases") {
            for (name, secs) in map {
                phases.push((name.clone(), secs.as_f64().unwrap_or(0.0)));
            }
        }
        Ok(BenchEntry {
            algorithm: v
                .get("algorithm")
                .and_then(Json::as_str)
                .ok_or("entry is missing `algorithm`")?
                .to_string(),
            threshold: num("threshold")?,
            literal_ratio: num("literal_ratio")?,
            area_ratio: num("area_ratio")?,
            delay_ratio: v.get("delay_ratio").and_then(Json::as_f64).unwrap_or(0.0),
            mapped_delay: v.get("mapped_delay").and_then(Json::as_f64).unwrap_or(0.0),
            error_rate: num("error_rate")?,
            runtime_s: num("runtime_s")?,
            simulations_avoided: v
                .get("simulations_avoided")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            resim_nodes: v.get("resim_nodes").and_then(Json::as_u64).unwrap_or(0),
            resim_full_equivalent: v
                .get("resim_full_equivalent")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            patterns_simulated_words: v
                .get("patterns_simulated_words")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            adaptive_early_decisions: v
                .get("adaptive_early_decisions")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            sat_queries: v.get("sat_queries").and_then(Json::as_u64).unwrap_or(0),
            solver_instances: v
                .get("solver_instances")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            clauses_retracted: v
                .get("clauses_retracted")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            phases,
        })
    }
}

/// One `perfsuite` run on one circuit: environment plus measurements.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchRecord {
    /// Format version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Benchmark circuit name (Table 3).
    pub circuit: String,
    /// Git revision the record was produced from (`unknown` outside a
    /// checkout).
    pub git_sha: String,
    /// Configured engine worker count (0 = all cores).
    pub threads: usize,
    /// Host parallelism when the record was produced (timings from hosts
    /// with different core counts are not directly comparable).
    pub nproc: usize,
    /// Whether the reduced `--quick` setup was used.
    pub quick: bool,
    /// Free-form caveats (e.g. "single-core container").
    pub notes: String,
    /// The measurements.
    pub entries: Vec<BenchEntry>,
}

impl BenchRecord {
    /// Creates an empty record stamped with the current environment.
    pub fn new(circuit: &str, threads: usize, quick: bool) -> Self {
        BenchRecord {
            schema_version: BENCH_SCHEMA_VERSION,
            circuit: circuit.to_string(),
            git_sha: git_sha(),
            threads,
            nproc: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            quick,
            notes: String::new(),
            entries: Vec::new(),
        }
    }

    /// Renders the record as pretty-printed JSON (the `BENCH_*.json` file
    /// content).
    pub fn render(&self) -> String {
        let mut obj = Json::object();
        obj.set("schema_version", self.schema_version)
            .set("circuit", self.circuit.as_str())
            .set("git_sha", self.git_sha.as_str())
            .set("threads", self.threads)
            .set("nproc", self.nproc)
            .set("quick", self.quick)
            .set("notes", self.notes.as_str())
            .set(
                "entries",
                self.entries
                    .iter()
                    .map(BenchEntry::to_json)
                    .collect::<Vec<_>>(),
            );
        obj.render_pretty()
    }

    /// Parses a record, rejecting unknown schema versions.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e: JsonError| e.to_string())?;
        let version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("record is missing `schema_version`")?;
        if version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this build reads {BENCH_SCHEMA_VERSION})"
            ));
        }
        let str_field = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record is missing `{key}`"))
        };
        let mut entries = Vec::new();
        if let Some(arr) = v.get("entries").and_then(Json::as_array) {
            for e in arr {
                entries.push(BenchEntry::from_json(e)?);
            }
        }
        Ok(BenchRecord {
            schema_version: version,
            circuit: str_field("circuit")?,
            git_sha: str_field("git_sha")?,
            threads: v.get("threads").and_then(Json::as_u64).unwrap_or(0) as usize, // lint:allow(as-cast): thread counts << 2^32
            nproc: v.get("nproc").and_then(Json::as_u64).unwrap_or(0) as usize, // lint:allow(as-cast): CPU counts << 2^32
            quick: v.get("quick").and_then(Json::as_bool).unwrap_or(false),
            notes: v
                .get("notes")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            entries,
        })
    }

    /// The conventional file name for this record.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.circuit)
    }
}

/// Tolerances for [`compare`].
#[derive(Clone, Copy, Debug)]
pub struct CompareOptions {
    /// Maximum tolerated wall-time growth in percent (default 15; the CI
    /// gate must trip well before a 20 % slowdown).
    pub max_slowdown_pct: f64,
    /// Maximum tolerated quality (literal/area ratio) growth in percent
    /// (default 2).
    pub max_quality_pct: f64,
    /// Wall-time floor in seconds: runs where both sides are faster than
    /// this are never flagged for time (timer noise dominates tiny runs).
    pub min_wall_s: f64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            max_slowdown_pct: 15.0,
            max_quality_pct: 2.0,
            min_wall_s: 0.010,
        }
    }
}

/// Compares `new` against the `old` baseline, returning one human-readable
/// line per regression (empty = pass). Entries are matched by
/// (algorithm, threshold); entries present on only one side are ignored
/// (coverage changes, not regressions). Besides the per-entry checks, the
/// *total* wall time over all matched entries is gated too — on fast hosts
/// each individual run may sit below the noise floor while a uniform
/// slowdown is still perfectly visible in the aggregate.
pub fn compare(old: &BenchRecord, new: &BenchRecord, opts: &CompareOptions) -> Vec<String> {
    let mut regressions = Vec::new();
    if old.circuit != new.circuit {
        regressions.push(format!(
            "circuit mismatch: baseline is {}, new record is {}",
            old.circuit, new.circuit
        ));
        return regressions;
    }
    let mut total_old = 0.0f64;
    let mut total_new = 0.0f64;
    for oe in &old.entries {
        let Some(ne) = new.entries.iter().find(|ne| {
            // Thresholds are grid keys round-tripped through JSON, so
            // matching is bit-exact identity, not numeric tolerance.
            ne.algorithm == oe.algorithm && ne.threshold.to_bits() == oe.threshold.to_bits()
        }) else {
            continue;
        };
        total_old += oe.runtime_s;
        total_new += ne.runtime_s;
        let slow_limit = oe.runtime_s * (1.0 + opts.max_slowdown_pct / 100.0);
        if ne.runtime_s > slow_limit && ne.runtime_s.max(oe.runtime_s) > opts.min_wall_s {
            regressions.push(format!(
                "{} {} @{}: wall time {:.3}s vs baseline {:.3}s (+{:.1}%, limit +{:.0}%)",
                new.circuit,
                oe.algorithm,
                oe.threshold,
                ne.runtime_s,
                oe.runtime_s,
                (ne.runtime_s / oe.runtime_s - 1.0) * 100.0,
                opts.max_slowdown_pct,
            ));
        }
        // The pruner going dark is a perf regression even when the wall
        // clock hasn't (yet) caught up with it: a baseline that avoided
        // simulations must keep avoiding them.
        if oe.simulations_avoided > 0 && ne.simulations_avoided == 0 {
            regressions.push(format!(
                "{} {} @{}: static pruning avoided {} simulations in the baseline but 0 now",
                new.circuit, oe.algorithm, oe.threshold, oe.simulations_avoided,
            ));
        }
        // Likewise for incremental resimulation degrading to full passes: a
        // baseline whose updates resimulated strictly fewer nodes than full
        // resimulation must keep that saving.
        if oe.resim_full_equivalent > 0
            && oe.resim_nodes < oe.resim_full_equivalent
            && ne.resim_full_equivalent > 0
            && ne.resim_nodes >= ne.resim_full_equivalent
        {
            regressions.push(format!(
                "{} {} @{}: incremental resimulation degraded to full passes \
                 ({} of {} nodes resimulated vs {} of {} in the baseline)",
                new.circuit,
                oe.algorithm,
                oe.threshold,
                ne.resim_nodes,
                ne.resim_full_equivalent,
                oe.resim_nodes,
                oe.resim_full_equivalent,
            ));
        }
        // And for incremental SAT solver reuse going dark: a baseline that
        // served many queries per solver instance must keep amortizing —
        // one instance per query means every window sweep re-encodes its
        // miter from scratch again.
        if oe.sat_queries > 0
            && oe.solver_instances < oe.sat_queries
            && ne.sat_queries > 0
            && ne.solver_instances >= ne.sat_queries
        {
            regressions.push(format!(
                "{} {} @{}: SAT solver reuse went dark \
                 ({} instance(s) for {} queries vs {} for {} in the baseline)",
                new.circuit,
                oe.algorithm,
                oe.threshold,
                ne.solver_instances,
                ne.sat_queries,
                oe.solver_instances,
                oe.sat_queries,
            ));
        }
        // And for adaptive sampling going dark: a baseline that rejected
        // trials from a pattern prefix must keep doing so, otherwise every
        // trial silently pays the full simulation budget again.
        if oe.adaptive_early_decisions > 0 && ne.adaptive_early_decisions == 0 {
            regressions.push(format!(
                "{} {} @{}: adaptive sampling rejected {} trials early in the baseline but 0 now",
                new.circuit, oe.algorithm, oe.threshold, oe.adaptive_early_decisions,
            ));
        }
        // Mapped delay is gated only when both records carry it: records
        // predating the field read back as 0 and must keep comparing clean.
        if oe.delay_ratio > 0.0 && ne.delay_ratio > 0.0 {
            let delay_limit = oe.delay_ratio * (1.0 + opts.max_quality_pct / 100.0);
            if ne.delay_ratio > delay_limit {
                regressions.push(format!(
                    "{} {} @{}: delay ratio {:.4} vs baseline {:.4} (+{:.1}%, limit +{:.0}%)",
                    new.circuit,
                    oe.algorithm,
                    oe.threshold,
                    ne.delay_ratio,
                    oe.delay_ratio,
                    (ne.delay_ratio / oe.delay_ratio - 1.0) * 100.0,
                    opts.max_quality_pct,
                ));
            }
        }
        let quality_limit = oe.literal_ratio * (1.0 + opts.max_quality_pct / 100.0);
        if ne.literal_ratio > quality_limit {
            regressions.push(format!(
                "{} {} @{}: literal ratio {:.4} vs baseline {:.4} (+{:.1}%, limit +{:.0}%)",
                new.circuit,
                oe.algorithm,
                oe.threshold,
                ne.literal_ratio,
                oe.literal_ratio,
                (ne.literal_ratio / oe.literal_ratio - 1.0) * 100.0,
                opts.max_quality_pct,
            ));
        }
    }
    let total_limit = total_old * (1.0 + opts.max_slowdown_pct / 100.0);
    if total_new > total_limit && total_new.max(total_old) > opts.min_wall_s {
        regressions.push(format!(
            "{}: total wall time {:.3}s vs baseline {:.3}s (+{:.1}%, limit +{:.0}%)",
            new.circuit,
            total_new,
            total_old,
            (total_new / total_old - 1.0) * 100.0,
            opts.max_slowdown_pct,
        ));
    }
    regressions
}

/// Compares a new sweep record against its checked-in baseline, returning
/// one human-readable line per regression (empty = pass).
///
/// Points are matched by their grid identity (algorithm, threshold,
/// pattern policy, delay weight); points present on only one side are
/// ignored (grid-coverage changes, not regressions). Two gates:
///
/// * **Frontier regression** — a point whose baseline twin was
///   *non-dominated* is now strictly dominated by some point of the
///   *baseline* frontier. Judging against the baseline frontier (not the
///   new record's own) makes the gate monotone: a uniformly improved sweep
///   can never fail it, while any point sliding behind the old frontier
///   always does.
/// * **Quality** — a point's literal count grew beyond
///   [`CompareOptions::max_quality_pct`].
pub fn compare_sweep(
    old: &als_core::sweep::SweepRecord,
    new: &als_core::sweep::SweepRecord,
    opts: &CompareOptions,
) -> Vec<String> {
    use als_core::sweep::dominates;
    let mut regressions = Vec::new();
    if old.circuit != new.circuit {
        regressions.push(format!(
            "circuit mismatch: baseline is {}, new record is {}",
            old.circuit, new.circuit
        ));
        return regressions;
    }
    let baseline_frontier: Vec<_> = old.frontier().collect();
    for op in &old.points {
        let Some(np) = new.points.iter().find(|np| np.key() == op.key()) else {
            continue;
        };
        if !op.dominated {
            if let Some(beater) = baseline_frontier
                .iter()
                .find(|bf| dominates(bf.objectives(), np.objectives()))
            {
                regressions.push(format!(
                    "{} {} @{} [{}]: frontier regression — point (lits {}, delay {:.3}, er {:.5}) \
                     is newly dominated by baseline frontier point {} @{} \
                     (lits {}, delay {:.3}, er {:.5})",
                    new.circuit,
                    np.algorithm,
                    np.threshold,
                    np.patterns,
                    np.literals,
                    np.delay,
                    np.error_rate,
                    beater.algorithm,
                    beater.threshold,
                    beater.literals,
                    beater.delay,
                    beater.error_rate,
                ));
            }
        }
        let quality_limit = op.literals as f64 * (1.0 + opts.max_quality_pct / 100.0); // lint:allow(as-cast): counts << 2^52, exact in f64
        if np.literals as f64 > quality_limit {
            // lint:allow(as-cast): counts << 2^52, exact in f64
            regressions.push(format!(
                "{} {} @{} [{}]: literals {} vs baseline {} (+{:.1}%, limit +{:.0}%)",
                new.circuit,
                np.algorithm,
                np.threshold,
                np.patterns,
                np.literals,
                op.literals,
                (np.literals as f64 / op.literals as f64 - 1.0) * 100.0, // lint:allow(as-cast): counts << 2^52, exact in f64
                opts.max_quality_pct,
            ));
        }
    }
    regressions
}

/// Best-effort git revision: `GITHUB_SHA` in CI, `git rev-parse` in a
/// checkout, `"unknown"` otherwise.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha.chars().take(12).collect();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_with_runtime(runtime_s: f64, literal_ratio: f64) -> BenchRecord {
        let mut rec = BenchRecord {
            schema_version: BENCH_SCHEMA_VERSION,
            circuit: "RCA32".into(),
            git_sha: "abc123".into(),
            threads: 1,
            nproc: 1,
            quick: true,
            notes: String::new(),
            entries: Vec::new(),
        };
        rec.entries.push(BenchEntry {
            algorithm: "multi-selection".into(),
            threshold: 0.05,
            literal_ratio,
            area_ratio: literal_ratio,
            delay_ratio: 0.0,
            mapped_delay: 0.0,
            error_rate: 0.04,
            runtime_s,
            simulations_avoided: 0,
            resim_nodes: 0,
            resim_full_equivalent: 0,
            patterns_simulated_words: 0,
            adaptive_early_decisions: 0,
            sat_queries: 0,
            solver_instances: 0,
            clauses_retracted: 0,
            phases: vec![("simulate".into(), runtime_s / 2.0)],
        });
        rec
    }

    #[test]
    fn json_round_trip() {
        let rec = record_with_runtime(1.25, 0.8);
        let parsed = BenchRecord::parse(&rec.render()).unwrap();
        assert_eq!(parsed, rec);
        assert_eq!(parsed.file_name(), "BENCH_RCA32.json");
    }

    #[test]
    fn rejects_future_schema() {
        let mut rec = record_with_runtime(1.0, 0.8);
        rec.schema_version = BENCH_SCHEMA_VERSION + 1;
        let err = BenchRecord::parse(&rec.render()).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn twenty_percent_slowdown_trips_default_gate() {
        let old = record_with_runtime(1.0, 0.8);
        let new = record_with_runtime(1.2, 0.8);
        let regs = compare(&old, &new, &CompareOptions::default());
        // Flagged per entry *and* in the aggregate.
        assert_eq!(regs.len(), 2, "{regs:?}");
        assert!(regs.iter().all(|r| r.contains("wall time")), "{regs:?}");
    }

    #[test]
    fn uniform_slowdown_of_tiny_runs_trips_aggregate_gate() {
        // Each run is below the 10ms noise floor, but ten of them at +20%
        // add up to a visible total regression (the CI quick-run case).
        let mut old = record_with_runtime(0.004, 0.8);
        let mut new = record_with_runtime(0.0048, 0.8);
        for i in 0..9 {
            let t = 0.01 + f64::from(i) / 100.0;
            let mut oe = old.entries[0].clone();
            oe.threshold = t;
            oe.runtime_s = 0.004;
            old.entries.push(oe);
            let mut ne = new.entries[0].clone();
            ne.threshold = t;
            ne.runtime_s = 0.0048;
            new.entries.push(ne);
        }
        let regs = compare(&old, &new, &CompareOptions::default());
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("total wall time"), "{regs:?}");
    }

    #[test]
    fn ten_percent_slowdown_passes_default_gate() {
        let old = record_with_runtime(1.0, 0.8);
        let new = record_with_runtime(1.1, 0.8);
        assert!(compare(&old, &new, &CompareOptions::default()).is_empty());
    }

    #[test]
    fn tiny_runs_are_never_flagged_for_time() {
        // 3ms → 6ms is a 100% slowdown but below the noise floor.
        let old = record_with_runtime(0.003, 0.8);
        let new = record_with_runtime(0.006, 0.8);
        assert!(compare(&old, &new, &CompareOptions::default()).is_empty());
    }

    #[test]
    fn records_without_simulations_avoided_parse_as_zero() {
        let rec = record_with_runtime(1.0, 0.8);
        let json = rec.render().replace("\"simulations_avoided\": 0,", "");
        let parsed = BenchRecord::parse(&json).unwrap();
        assert_eq!(parsed.entries[0].simulations_avoided, 0);
    }

    #[test]
    fn pruning_going_dark_trips_gate() {
        let mut old = record_with_runtime(1.0, 0.8);
        old.entries[0].simulations_avoided = 17;
        let new = record_with_runtime(1.0, 0.8);
        let regs = compare(&old, &new, &CompareOptions::default());
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("avoided 17 simulations"), "{regs:?}");
        // The reverse direction (pruning got *better*) is not a regression.
        assert!(compare(&new, &old, &CompareOptions::default()).is_empty());
    }

    #[test]
    fn records_without_resim_fields_parse_as_zero() {
        let rec = record_with_runtime(1.0, 0.8);
        let json = rec
            .render()
            .replace("\"resim_nodes\": 0,", "")
            .replace("\"resim_full_equivalent\": 0,", "");
        let parsed = BenchRecord::parse(&json).unwrap();
        assert_eq!(parsed.entries[0].resim_nodes, 0);
        assert_eq!(parsed.entries[0].resim_full_equivalent, 0);
    }

    #[test]
    fn resim_degrading_to_full_trips_gate() {
        let mut old = record_with_runtime(1.0, 0.8);
        old.entries[0].resim_nodes = 40;
        old.entries[0].resim_full_equivalent = 100;
        let mut new = record_with_runtime(1.0, 0.8);
        new.entries[0].resim_nodes = 100;
        new.entries[0].resim_full_equivalent = 100;
        let regs = compare(&old, &new, &CompareOptions::default());
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("degraded to full"), "{regs:?}");
        // The reverse direction (resim got *better*) is not a regression,
        // and neither are records that predate the counters (both zero).
        assert!(compare(&new, &old, &CompareOptions::default()).is_empty());
        let legacy = record_with_runtime(1.0, 0.8);
        assert!(compare(&legacy, &new, &CompareOptions::default()).is_empty());
        assert!(compare(&old, &legacy, &CompareOptions::default()).is_empty());
    }

    #[test]
    fn records_without_sampling_fields_parse_as_zero() {
        let rec = record_with_runtime(1.0, 0.8);
        let json = rec
            .render()
            .replace("\"patterns_simulated_words\": 0,", "")
            .replace("\"adaptive_early_decisions\": 0,", "");
        let parsed = BenchRecord::parse(&json).unwrap();
        assert_eq!(parsed.entries[0].patterns_simulated_words, 0);
        assert_eq!(parsed.entries[0].adaptive_early_decisions, 0);
    }

    #[test]
    fn adaptive_sampling_going_dark_trips_gate() {
        let mut old = record_with_runtime(1.0, 0.8);
        old.entries[0].adaptive_early_decisions = 9;
        old.entries[0].patterns_simulated_words = 1000;
        let mut new = record_with_runtime(1.0, 0.8);
        new.entries[0].patterns_simulated_words = 1400;
        let regs = compare(&old, &new, &CompareOptions::default());
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("rejected 9 trials early"), "{regs:?}");
        // The reverse direction (sampling got *better*) is not a regression,
        // and neither are legacy records without the counters.
        assert!(compare(&new, &old, &CompareOptions::default()).is_empty());
        let legacy = record_with_runtime(1.0, 0.8);
        assert!(compare(&legacy, &new, &CompareOptions::default()).is_empty());
    }

    #[test]
    fn records_without_sat_fields_parse_as_zero() {
        let rec = record_with_runtime(1.0, 0.8);
        let json = rec
            .render()
            .replace("\"sat_queries\": 0,", "")
            .replace("\"solver_instances\": 0,", "")
            .replace("\"clauses_retracted\": 0,", "");
        let parsed = BenchRecord::parse(&json).unwrap();
        assert_eq!(parsed.entries[0].sat_queries, 0);
        assert_eq!(parsed.entries[0].solver_instances, 0);
        assert_eq!(parsed.entries[0].clauses_retracted, 0);
    }

    #[test]
    fn sat_reuse_going_dark_trips_gate() {
        let mut old = record_with_runtime(1.0, 0.8);
        old.entries[0].sat_queries = 500;
        old.entries[0].solver_instances = 4;
        old.entries[0].clauses_retracted = 900;
        let mut new = record_with_runtime(1.0, 0.8);
        new.entries[0].sat_queries = 500;
        new.entries[0].solver_instances = 500;
        let regs = compare(&old, &new, &CompareOptions::default());
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("reuse went dark"), "{regs:?}");
        // The reverse direction (reuse got *better*) is not a regression,
        // and neither are legacy records without the counters.
        assert!(compare(&new, &old, &CompareOptions::default()).is_empty());
        let legacy = record_with_runtime(1.0, 0.8);
        assert!(compare(&legacy, &new, &CompareOptions::default()).is_empty());
        assert!(compare(&old, &legacy, &CompareOptions::default()).is_empty());
    }

    #[test]
    fn records_without_delay_fields_parse_as_zero() {
        let rec = record_with_runtime(1.0, 0.8);
        let json = rec
            .render()
            .replace("\"delay_ratio\": 0,", "")
            .replace("\"mapped_delay\": 0,", "");
        let parsed = BenchRecord::parse(&json).unwrap();
        assert_eq!(parsed.entries[0].delay_ratio, 0.0);
        assert_eq!(parsed.entries[0].mapped_delay, 0.0);
    }

    #[test]
    fn delay_regression_trips_gate_only_when_both_sides_carry_it() {
        let mut old = record_with_runtime(1.0, 0.8);
        old.entries[0].delay_ratio = 0.90;
        let mut new = record_with_runtime(1.0, 0.8);
        new.entries[0].delay_ratio = 0.95;
        let regs = compare(&old, &new, &CompareOptions::default());
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("delay ratio"), "{regs:?}");
        // Legacy records (delay 0 on either side) never trip the delay gate.
        let legacy = record_with_runtime(1.0, 0.8);
        assert!(compare(&legacy, &new, &CompareOptions::default()).is_empty());
        assert!(compare(&old, &legacy, &CompareOptions::default()).is_empty());
        // And a within-tolerance delay passes.
        new.entries[0].delay_ratio = 0.905;
        assert!(compare(&old, &new, &CompareOptions::default()).is_empty());
    }

    fn sweep_point(lits: u64, delay: f64, er: f64, threshold: f64) -> als_core::sweep::SweepPoint {
        als_core::sweep::SweepPoint {
            algorithm: "single-selection".into(),
            threshold,
            patterns: "fixed:512".into(),
            delay_weight: "off".into(),
            literals: lits,
            literal_ratio: 1.0,
            area: lits as f64, // lint:allow(as-cast): test helper
            area_ratio: 1.0,
            delay,
            delay_ratio: 1.0,
            error_rate: er,
            runtime_s: 0.0,
            dominated: false,
        }
    }

    fn sweep_record(points: Vec<als_core::sweep::SweepPoint>) -> als_core::sweep::SweepRecord {
        let mut points = points;
        als_core::sweep::mark_frontier(&mut points);
        als_core::sweep::SweepRecord {
            schema_version: als_core::sweep::SWEEP_SCHEMA_VERSION,
            circuit: "RCA32".into(),
            git_sha: "abc".into(),
            seed: 1,
            quick: true,
            sweep_workers: 1,
            notes: String::new(),
            golden_literals: 100,
            golden_area: 300.0,
            golden_delay: 20.0,
            absint_frechet_nodes: 0,
            absint_max_po_width: 0.0,
            points,
        }
    }

    #[test]
    fn sweep_identical_records_pass() {
        let rec = sweep_record(vec![
            sweep_point(10, 5.0, 0.01, 0.01),
            sweep_point(8, 6.0, 0.05, 0.05),
        ]);
        assert!(compare_sweep(&rec, &rec, &CompareOptions::default()).is_empty());
    }

    #[test]
    fn sweep_point_sliding_behind_baseline_frontier_trips_gate() {
        let old = sweep_record(vec![
            sweep_point(10, 5.0, 0.01, 0.01),
            sweep_point(8, 6.0, 0.05, 0.05),
        ]);
        // The 0.05 point degrades so badly the baseline 0.01-threshold
        // frontier point now dominates its twin outright.
        let new = sweep_record(vec![
            sweep_point(10, 5.0, 0.01, 0.01),
            sweep_point(12, 5.5, 0.05, 0.05),
        ]);
        let regs = compare_sweep(&old, &new, &CompareOptions::default());
        assert!(
            regs.iter().any(|r| r.contains("frontier regression")),
            "{regs:?}"
        );
    }

    #[test]
    fn sweep_uniform_improvement_never_trips_gate() {
        let old = sweep_record(vec![
            sweep_point(10, 5.0, 0.01, 0.01),
            sweep_point(8, 6.0, 0.05, 0.05),
        ]);
        let new = sweep_record(vec![
            sweep_point(9, 4.5, 0.01, 0.01),
            sweep_point(7, 5.5, 0.04, 0.05),
        ]);
        assert!(compare_sweep(&old, &new, &CompareOptions::default()).is_empty());
    }

    #[test]
    fn sweep_literal_growth_trips_quality_gate() {
        let old = sweep_record(vec![sweep_point(100, 5.0, 0.01, 0.01)]);
        let mut worse = sweep_point(103, 5.0, 0.01, 0.01);
        worse.dominated = false;
        let new = sweep_record(vec![worse]);
        let regs = compare_sweep(&old, &new, &CompareOptions::default());
        assert!(regs.iter().any(|r| r.contains("literals 103")), "{regs:?}");
    }

    #[test]
    fn sweep_circuit_mismatch_is_an_error() {
        let old = sweep_record(vec![sweep_point(10, 5.0, 0.01, 0.01)]);
        let mut new = sweep_record(vec![sweep_point(10, 5.0, 0.01, 0.01)]);
        new.circuit = "KSA32".into();
        assert_eq!(
            compare_sweep(&old, &new, &CompareOptions::default()).len(),
            1
        );
    }

    #[test]
    fn quality_regression_trips_gate() {
        let old = record_with_runtime(1.0, 0.80);
        let new = record_with_runtime(1.0, 0.85);
        let regs = compare(&old, &new, &CompareOptions::default());
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("literal ratio"), "{regs:?}");
    }

    #[test]
    fn circuit_mismatch_is_an_error() {
        let old = record_with_runtime(1.0, 0.8);
        let mut new = record_with_runtime(1.0, 0.8);
        new.circuit = "KSA32".into();
        assert_eq!(compare(&old, &new, &CompareOptions::default()).len(), 1);
    }
}
