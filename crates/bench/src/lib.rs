//! Shared harness for regenerating the paper's tables and figures.
//!
//! One binary per experiment (see `src/bin/`):
//!
//! * `table3` — benchmark information (I/O, nodes, mapped area/delay);
//! * `figure2` — area saving of the single-selection algorithm vs. the
//!   error-rate threshold;
//! * `table4` — area-ratio & runtime comparison of SASIMI vs. single- vs.
//!   multi-selection over the seven thresholds;
//! * `knapsack_example` — the worked multi-state-knapsack example of
//!   Tables 1 and 2;
//! * `ablation` — the design-choice study of DESIGN.md §4 (don't-cares,
//!   window size, engine, preprocess);
//! * `scaling` — runtime vs. circuit size, backing the §6 complexity claim;
//! * `servebench` — cold→warm job pair against an `als serve` daemon,
//!   auditing that the cross-job artifact cache actually skips phases.
//!
//! Criterion microbenches live under `benches/`.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

use als_circuits::{all_benchmarks, Benchmark};
use als_core::{approximate, AlsConfig, AlsOutcome, PatternPolicy, Strategy};
use als_mapper::{map_network, Library};
use als_network::Network;
use als_telemetry::MetricsReport;

pub mod record;
pub mod serve_record;

/// The seven error-rate thresholds of the paper's evaluation (§6).
pub const PAPER_THRESHOLDS: [f64; 7] = [0.001, 0.003, 0.005, 0.008, 0.01, 0.03, 0.05];

/// Reduced setup for `--quick` runs: four thresholds, fewer patterns. The
/// paper's tightest threshold is included so the perf smoke exercises the
/// static-pruning fast path (simulations-avoided stays nonzero there).
pub const QUICK_THRESHOLDS: [f64; 4] = [0.001, 0.005, 0.01, 0.05];

/// The three compared algorithms.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algorithm {
    /// The SASIMI baseline.
    Sasimi,
    /// Paper Algorithm 1.
    SingleSelection,
    /// Paper Algorithm 2.
    MultiSelection,
}

impl Algorithm {
    /// Display name as used in the paper's Table 4 header.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Sasimi => "SASIMI",
            Algorithm::SingleSelection => "single-selection",
            Algorithm::MultiSelection => "multi-selection",
        }
    }

    /// All three, in Table 4 column order.
    pub const ALL: [Algorithm; 3] = [
        Algorithm::Sasimi,
        Algorithm::SingleSelection,
        Algorithm::MultiSelection,
    ];

    /// The corresponding [`Strategy`] for [`als_core::approximate`].
    pub fn strategy(self) -> Strategy {
        match self {
            Algorithm::Sasimi => Strategy::Sasimi,
            Algorithm::SingleSelection => Strategy::Single,
            Algorithm::MultiSelection => Strategy::Multi,
        }
    }
}

/// One experiment record (circuit × algorithm × threshold).
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Benchmark name.
    pub circuit: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Error-rate threshold.
    pub threshold: f64,
    /// Technology-independent literal ratio (approx / original).
    pub literal_ratio: f64,
    /// Mapped-area ratio (approx / original) on the MCNC-like library.
    pub area_ratio: f64,
    /// Mapped delay ratio (approx / original).
    pub delay_ratio: f64,
    /// Measured error rate of the result.
    pub error_rate: f64,
    /// Wall-clock runtime in seconds.
    pub runtime_s: f64,
    /// Engine metrics of the run (phase timings, cache/simulation counters).
    pub metrics: MetricsReport,
}

/// Runs one algorithm on one circuit at one threshold, reporting mapped
/// ratios against the unmodified circuit.
///
/// `threads` sizes the candidate-evaluation engine's worker pool (`0` means
/// "use all available cores", see [`AlsConfig::threads`]).
pub fn run_one(
    circuit_name: &str,
    golden: &Network,
    algorithm: Algorithm,
    threshold: f64,
    quick: bool,
    threads: usize,
) -> RunResult {
    let mut config = AlsConfig::with_threshold(threshold);
    config.threads = threads;
    // Adaptive sampling in both modes: outcomes are byte-identical to the
    // fixed budget (see `AlsContext::update_and_accept`), and the recorded
    // `adaptive_early_decisions` / `patterns_simulated_words` counters feed
    // the perf-gate that keeps the escalation path alive.
    if quick {
        config.patterns = PatternPolicy::Adaptive {
            min: 256,
            max: 2048,
        };
        // The SAT method (the paper's configuration) in quick mode too:
        // classifications are identical to enumeration, and the recorded
        // `sat_queries` / `solver_instances` counters feed the perf gate
        // that keeps incremental solver reuse alive.
        config.dont_care.method = als_dontcare::DontCareMethod::Sat;
    } else {
        config.patterns = PatternPolicy::Adaptive {
            min: 1024,
            max: config.pattern_budget(),
        };
    }
    let outcome: AlsOutcome = approximate(golden, algorithm.strategy(), &config)
        .expect("benchmark configuration must be valid"); // lint:allow(panic): internal invariant; the message states it
    let lib = Library::mcnc_like();
    let golden_mapped = map_network(golden, &lib);
    let approx_mapped = map_network(&outcome.network, &lib);
    let mut metrics = outcome.metrics.clone();
    // Telemetry has no mapper dependency, so the mapped delay is stamped
    // here — the one place that already paid for the mapping.
    metrics.mapped_delay = approx_mapped.delay();
    RunResult {
        circuit: circuit_name.to_string(),
        algorithm: algorithm.name().to_string(),
        threshold,
        literal_ratio: outcome.literal_ratio(),
        area_ratio: approx_mapped.area() / golden_mapped.area(),
        delay_ratio: approx_mapped.delay() / golden_mapped.delay(),
        error_rate: outcome.measured_error_rate,
        runtime_s: outcome.runtime.as_secs_f64(),
        metrics,
    }
}

/// Geometric mean (for the Table 4 summary row).
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of an empty set");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp() // lint:allow(as-cast): counts << 2^52, exact in f64
}

/// Parses the common CLI flags of the bench binaries: `--quick`, and an
/// optional `--circuit <name>` filter. Returns `(quick, circuit_filter)`.
pub fn parse_common_args() -> (bool, Option<String>) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let circuit = args
        .iter()
        .position(|a| a == "--circuit")
        .and_then(|i| args.get(i + 1))
        .cloned();
    (quick, circuit)
}

/// Parses the `--threads N` flag shared by the bench binaries. Defaults to
/// `1` (the deterministic baseline); `0` means "all available cores".
///
/// A missing or non-integer value is an error (the binaries print it and
/// exit nonzero instead of panicking).
pub fn parse_threads() -> Result<usize, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(i) = args.iter().position(|a| a == "--threads") else {
        return Ok(1);
    };
    let Some(value) = args.get(i + 1) else {
        return Err("--threads expects a value (a worker count, 0 = all cores)".to_string());
    };
    value
        .parse()
        .map_err(|_| format!("--threads expects an integer, got `{value}` (0 = all cores)"))
}

/// Resolves an optional `--circuit` filter against the Table 3 registry.
/// An unknown name is an error that lists the valid names, so a typo fails
/// loudly instead of silently benchmarking nothing.
pub fn resolve_benchmarks(filter: Option<&str>) -> Result<Vec<Benchmark>, String> {
    let all = all_benchmarks();
    let Some(name) = filter else { return Ok(all) };
    let selected: Vec<Benchmark> = all
        .iter()
        .filter(|b| b.name.eq_ignore_ascii_case(name))
        .cloned()
        .collect();
    if selected.is_empty() {
        let names: Vec<&str> = all.iter().map(|b| b.name).collect();
        return Err(format!(
            "unknown circuit `{name}`; valid names: {}",
            names.join(", ")
        ));
    }
    Ok(selected)
}

/// Prints a bench-binary error to stderr and exits nonzero.
pub fn exit_with_error(err: &str) -> ! {
    eprintln!("error: {err}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_circuits::adders::ripple_carry_adder;

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean(&[4.0, 9.0]) - 6.0).abs() < 1e-12);
        assert!((geometric_mean(&[7.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn run_one_produces_consistent_ratios() {
        let net = ripple_carry_adder(4);
        let r = run_one("RCA4", &net, Algorithm::MultiSelection, 0.05, true, 1);
        assert!(r.literal_ratio <= 1.0);
        assert!(r.area_ratio <= 1.05);
        assert!(r.error_rate <= 0.05 + 1e-12);
        assert!(r.runtime_s >= 0.0);
    }

    #[test]
    fn resolve_benchmarks_rejects_unknown_names() {
        let err = resolve_benchmarks(Some("nonesuch")).unwrap_err();
        assert!(err.contains("nonesuch"));
        assert!(err.contains("RCA32"), "must list valid names: {err}");
        assert_eq!(resolve_benchmarks(None).unwrap().len(), 12);
        assert_eq!(resolve_benchmarks(Some("rca32")).unwrap().len(), 1);
    }

    #[test]
    fn run_one_populates_metrics() {
        let net = ripple_carry_adder(4);
        let r = run_one("RCA4", &net, Algorithm::SingleSelection, 0.05, true, 1);
        assert!(r.metrics.simulations > 0);
        assert!(r.metrics.measurements > 0);
        assert_eq!(r.metrics.algorithm, "single-selection");
        assert!(r.metrics.mapped_delay > 0.0);
        assert!(r.delay_ratio > 0.0);
    }

    #[test]
    fn paper_thresholds_match_section_6() {
        assert_eq!(PAPER_THRESHOLDS.len(), 7);
        assert_eq!(PAPER_THRESHOLDS[0], 0.001);
        assert_eq!(PAPER_THRESHOLDS[6], 0.05);
    }
}
