//! Shared harness for regenerating the paper's tables and figures.
//!
//! One binary per experiment (see `src/bin/`):
//!
//! * `table3` — benchmark information (I/O, nodes, mapped area/delay);
//! * `figure2` — area saving of the single-selection algorithm vs. the
//!   error-rate threshold;
//! * `table4` — area-ratio & runtime comparison of SASIMI vs. single- vs.
//!   multi-selection over the seven thresholds;
//! * `knapsack_example` — the worked multi-state-knapsack example of
//!   Tables 1 and 2;
//! * `ablation` — the design-choice study of DESIGN.md §4 (don't-cares,
//!   window size, engine, preprocess);
//! * `scaling` — runtime vs. circuit size, backing the §6 complexity claim.
//!
//! Criterion microbenches live under `benches/`.

#![warn(missing_docs)]

use als_core::{approximate, AlsConfig, AlsOutcome, Strategy};
use als_mapper::{map_network, Library};
use als_network::Network;

/// The seven error-rate thresholds of the paper's evaluation (§6).
pub const PAPER_THRESHOLDS: [f64; 7] = [0.001, 0.003, 0.005, 0.008, 0.01, 0.03, 0.05];

/// Reduced setup for `--quick` runs: three thresholds, fewer patterns.
pub const QUICK_THRESHOLDS: [f64; 3] = [0.005, 0.01, 0.05];

/// The three compared algorithms.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algorithm {
    /// The SASIMI baseline.
    Sasimi,
    /// Paper Algorithm 1.
    SingleSelection,
    /// Paper Algorithm 2.
    MultiSelection,
}

impl Algorithm {
    /// Display name as used in the paper's Table 4 header.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Sasimi => "SASIMI",
            Algorithm::SingleSelection => "single-selection",
            Algorithm::MultiSelection => "multi-selection",
        }
    }

    /// All three, in Table 4 column order.
    pub const ALL: [Algorithm; 3] = [
        Algorithm::Sasimi,
        Algorithm::SingleSelection,
        Algorithm::MultiSelection,
    ];

    /// The corresponding [`Strategy`] for [`als_core::approximate`].
    pub fn strategy(self) -> Strategy {
        match self {
            Algorithm::Sasimi => Strategy::Sasimi,
            Algorithm::SingleSelection => Strategy::Single,
            Algorithm::MultiSelection => Strategy::Multi,
        }
    }
}

/// One experiment record (circuit × algorithm × threshold).
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Benchmark name.
    pub circuit: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Error-rate threshold.
    pub threshold: f64,
    /// Technology-independent literal ratio (approx / original).
    pub literal_ratio: f64,
    /// Mapped-area ratio (approx / original) on the MCNC-like library.
    pub area_ratio: f64,
    /// Mapped delay ratio (approx / original).
    pub delay_ratio: f64,
    /// Measured error rate of the result.
    pub error_rate: f64,
    /// Wall-clock runtime in seconds.
    pub runtime_s: f64,
}

/// Runs one algorithm on one circuit at one threshold, reporting mapped
/// ratios against the unmodified circuit.
///
/// `threads` sizes the candidate-evaluation engine's worker pool (`0` means
/// "use all available cores", see [`AlsConfig::threads`]).
pub fn run_one(
    circuit_name: &str,
    golden: &Network,
    algorithm: Algorithm,
    threshold: f64,
    quick: bool,
    threads: usize,
) -> RunResult {
    let mut config = AlsConfig::with_threshold(threshold);
    config.threads = threads;
    if quick {
        config.num_patterns = 2048;
        config.dont_care.method = als_dontcare::DontCareMethod::Enumerate;
    }
    let outcome: AlsOutcome = approximate(golden, algorithm.strategy(), &config)
        .expect("benchmark configuration must be valid");
    let lib = Library::mcnc_like();
    let golden_mapped = map_network(golden, &lib);
    let approx_mapped = map_network(&outcome.network, &lib);
    RunResult {
        circuit: circuit_name.to_string(),
        algorithm: algorithm.name().to_string(),
        threshold,
        literal_ratio: outcome.literal_ratio(),
        area_ratio: approx_mapped.area() / golden_mapped.area(),
        delay_ratio: approx_mapped.delay() / golden_mapped.delay(),
        error_rate: outcome.measured_error_rate,
        runtime_s: outcome.runtime.as_secs_f64(),
    }
}

/// Geometric mean (for the Table 4 summary row).
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of an empty set");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Parses the common CLI flags of the bench binaries: `--quick`, and an
/// optional `--circuit <name>` filter. Returns `(quick, circuit_filter)`.
pub fn parse_common_args() -> (bool, Option<String>) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let circuit = args
        .iter()
        .position(|a| a == "--circuit")
        .and_then(|i| args.get(i + 1))
        .cloned();
    (quick, circuit)
}

/// Parses the `--threads N` flag shared by the bench binaries. Defaults to
/// `1` (the deterministic baseline); `0` means "all available cores".
///
/// # Panics
///
/// Panics (with a usage message) when the flag's value is not an integer.
pub fn parse_threads() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads expects an integer"))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_circuits::adders::ripple_carry_adder;

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean(&[4.0, 9.0]) - 6.0).abs() < 1e-12);
        assert!((geometric_mean(&[7.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn run_one_produces_consistent_ratios() {
        let net = ripple_carry_adder(4);
        let r = run_one("RCA4", &net, Algorithm::MultiSelection, 0.05, true, 1);
        assert!(r.literal_ratio <= 1.0);
        assert!(r.area_ratio <= 1.05);
        assert!(r.error_rate <= 0.05 + 1e-12);
        assert!(r.runtime_s >= 0.0);
    }

    #[test]
    fn paper_thresholds_match_section_6() {
        assert_eq!(PAPER_THRESHOLDS.len(), 7);
        assert_eq!(PAPER_THRESHOLDS[0], 0.001);
        assert_eq!(PAPER_THRESHOLDS[6], 0.05);
    }
}
