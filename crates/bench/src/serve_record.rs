//! Versioned throughput records for the `als serve` daemon
//! (`BENCH_SERVE_<circuit>.json`).
//!
//! A [`ServeRecord`] captures one cold→warm job pair (or any longer job
//! sequence) against a running daemon: per job the phase timings the
//! daemon reported (`parse_s`, `context_s`, `synth_s`), the artifact-cache
//! hit/miss counters, and the result quality. [`ServeRecord::audit`] is
//! the smoke gate: a job recorded as warm must have non-vacuous cache-hit
//! counters and *zero* parse and signature phase time — the daemon's whole
//! reason to exist — so CI fails the moment the cross-job cache goes dark.

use als_telemetry::json::{Json, JsonError};

/// Version stamp of the `BENCH_SERVE_*.json` format; parsers reject other
/// versions rather than mis-reading them.
pub const SERVE_SCHEMA_VERSION: u64 = 1;

/// The record `kind` discriminator, so serve records are never confused
/// with `BENCH_*.json` perf records sharing a directory.
pub const SERVE_RECORD_KIND: &str = "serve";

/// One job's slice of a [`ServeRecord`].
#[derive(Clone, Debug, PartialEq)]
pub struct ServeEntry {
    /// The request id the client chose.
    pub id: String,
    /// Error-rate threshold of the job.
    pub threshold: f64,
    /// Whether the client *expected* this job to be served warm (the audit
    /// enforces the expectation against the counters below).
    pub warm: bool,
    /// Terminal status the daemon reported (`done` / `cancelled`).
    pub status: String,
    /// Seconds spent resolving the circuit (parse + map + absint); zero
    /// when the circuit-level artifacts were cache hits.
    pub parse_s: f64,
    /// Seconds spent building golden signatures; zero on a context hit.
    pub context_s: f64,
    /// Seconds spent in the selection loop itself (never cached).
    pub synth_s: f64,
    /// Artifact-cache hits observed by this job.
    pub cache_hits: u64,
    /// Artifact-cache misses observed by this job.
    pub cache_misses: u64,
    /// Accepted iterations of the selection loop.
    pub iterations: u64,
    /// Literal count of the approximated network.
    pub final_literals: u64,
    /// Measured error rate of the result.
    pub error_rate: f64,
}

impl ServeEntry {
    /// Builds an entry from a daemon `"result"` frame (the JSONL line the
    /// client read back), tagging it with the client's warm expectation and
    /// the threshold the request asked for (the frame itself echoes only
    /// the *measured* error rate).
    pub fn from_result_frame(
        frame: &Json,
        warm: bool,
        threshold: f64,
    ) -> Result<ServeEntry, String> {
        let str_field = |key: &str| {
            frame
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("result frame is missing `{key}`"))
        };
        let num = |key: &str| {
            frame
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("result frame is missing numeric `{key}`"))
        };
        let timings = frame
            .get("timings")
            .ok_or("result frame is missing `timings`")?;
        let timing = |key: &str| {
            timings
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("result frame is missing timing `{key}`"))
        };
        let metrics = frame
            .get("metrics")
            .ok_or("result frame is missing `metrics`")?;
        let counter = |key: &str| {
            metrics
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("result frame is missing counter `{key}`"))
        };
        Ok(ServeEntry {
            id: str_field("id")?,
            threshold,
            warm,
            status: str_field("status")?,
            parse_s: timing("parse_s")?,
            context_s: timing("context_s")?,
            synth_s: timing("synth_s")?,
            cache_hits: counter("artifact_cache_hits")?,
            cache_misses: counter("artifact_cache_misses")?,
            iterations: frame
                .get("iterations")
                .and_then(Json::as_u64)
                .ok_or("result frame is missing `iterations`")?,
            final_literals: frame
                .get("final_literals")
                .and_then(Json::as_u64)
                .ok_or("result frame is missing `final_literals`")?,
            error_rate: num("error_rate")?,
        })
    }

    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("id", self.id.as_str())
            .set("threshold", self.threshold)
            .set("warm", self.warm)
            .set("status", self.status.as_str())
            .set("parse_s", self.parse_s)
            .set("context_s", self.context_s)
            .set("synth_s", self.synth_s)
            .set("cache_hits", self.cache_hits)
            .set("cache_misses", self.cache_misses)
            .set("iterations", self.iterations)
            .set("final_literals", self.final_literals)
            .set("error_rate", self.error_rate);
        obj
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("serve entry is missing numeric `{key}`"))
        };
        let count = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("serve entry is missing counter `{key}`"))
        };
        Ok(ServeEntry {
            id: v
                .get("id")
                .and_then(Json::as_str)
                .ok_or("serve entry is missing `id`")?
                .to_string(),
            threshold: num("threshold")?,
            warm: v
                .get("warm")
                .and_then(Json::as_bool)
                .ok_or("serve entry is missing `warm`")?,
            status: v
                .get("status")
                .and_then(Json::as_str)
                .ok_or("serve entry is missing `status`")?
                .to_string(),
            parse_s: num("parse_s")?,
            context_s: num("context_s")?,
            synth_s: num("synth_s")?,
            cache_hits: count("cache_hits")?,
            cache_misses: count("cache_misses")?,
            iterations: count("iterations")?,
            final_literals: count("final_literals")?,
            error_rate: num("error_rate")?,
        })
    }
}

/// One serve throughput measurement: environment plus a job sequence.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeRecord {
    /// Format version ([`SERVE_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Benchmark circuit the jobs ran on.
    pub circuit: String,
    /// Git revision the record was produced from.
    pub git_sha: String,
    /// The jobs, in submission order (cold first by convention).
    pub entries: Vec<ServeEntry>,
}

impl ServeRecord {
    /// Creates an empty record stamped with the current environment.
    pub fn new(circuit: &str) -> Self {
        ServeRecord {
            schema_version: SERVE_SCHEMA_VERSION,
            circuit: circuit.to_string(),
            git_sha: crate::record::git_sha(),
            entries: Vec::new(),
        }
    }

    /// Renders the record as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut obj = Json::object();
        obj.set("schema_version", self.schema_version)
            .set("kind", SERVE_RECORD_KIND)
            .set("circuit", self.circuit.as_str())
            .set("git_sha", self.git_sha.as_str())
            .set(
                "entries",
                self.entries
                    .iter()
                    .map(ServeEntry::to_json)
                    .collect::<Vec<_>>(),
            );
        obj.render_pretty()
    }

    /// Parses a record, rejecting unknown schema versions and wrong kinds.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e: JsonError| e.to_string())?;
        let version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("serve record is missing `schema_version`")?;
        if version != SERVE_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this build reads {SERVE_SCHEMA_VERSION})"
            ));
        }
        let kind = v.get("kind").and_then(Json::as_str).unwrap_or("");
        if kind != SERVE_RECORD_KIND {
            return Err(format!(
                "not a serve record (kind `{kind}`, wanted `{SERVE_RECORD_KIND}`)"
            ));
        }
        let mut entries = Vec::new();
        if let Some(arr) = v.get("entries").and_then(Json::as_array) {
            for e in arr {
                entries.push(ServeEntry::from_json(e)?);
            }
        }
        Ok(ServeRecord {
            schema_version: version,
            circuit: v
                .get("circuit")
                .and_then(Json::as_str)
                .ok_or("serve record is missing `circuit`")?
                .to_string(),
            git_sha: v
                .get("git_sha")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            entries,
        })
    }

    /// The conventional file name for this record.
    pub fn file_name(&self) -> String {
        format!("BENCH_SERVE_{}.json", self.circuit)
    }

    /// The smoke gate: one human-readable finding per violated contract
    /// (empty = pass). Every job must have finished; every job the client
    /// expected warm must show non-vacuous cache hits, zero misses, and
    /// zero parse/signature phase time.
    pub fn audit(&self) -> Vec<String> {
        let mut findings = Vec::new();
        if self.entries.is_empty() {
            findings.push("serve record holds no jobs".to_string());
        }
        if !self.entries.iter().any(|e| e.warm) {
            findings.push("serve record exercises no warm-cache job".to_string());
        }
        for e in &self.entries {
            if e.status != "done" {
                findings.push(format!(
                    "job `{}`: status `{}`, wanted `done`",
                    e.id, e.status
                ));
            }
            if e.warm {
                if e.cache_hits == 0 {
                    findings.push(format!(
                        "job `{}`: expected warm but observed zero cache hits",
                        e.id
                    ));
                }
                if e.cache_misses != 0 {
                    findings.push(format!(
                        "job `{}`: expected warm but observed {} cache misses",
                        e.id, e.cache_misses
                    ));
                }
                // lint:allow(float-cmp): a cache hit writes literal 0.0; any nonzero means the phase ran
                if e.parse_s != 0.0 {
                    findings.push(format!(
                        "job `{}`: expected warm but the parse phase ran ({}s)",
                        e.id, e.parse_s
                    ));
                }
                // lint:allow(float-cmp): a cache hit writes literal 0.0; any nonzero means the phase ran
                if e.context_s != 0.0 {
                    findings.push(format!(
                        "job `{}`: expected warm but the signature phase ran ({}s)",
                        e.id, e.context_s
                    ));
                }
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, warm: bool) -> ServeEntry {
        ServeEntry {
            id: id.to_string(),
            threshold: 0.05,
            warm,
            status: "done".to_string(),
            parse_s: if warm { 0.0 } else { 0.01 },
            context_s: if warm { 0.0 } else { 0.002 },
            synth_s: 0.2,
            cache_hits: if warm { 4 } else { 0 },
            cache_misses: if warm { 0 } else { 4 },
            iterations: 9,
            final_literals: 120,
            error_rate: 0.041,
        }
    }

    fn record() -> ServeRecord {
        ServeRecord {
            schema_version: SERVE_SCHEMA_VERSION,
            circuit: "RCA32".to_string(),
            git_sha: "abc123".to_string(),
            entries: vec![entry("cold", false), entry("warm", true)],
        }
    }

    #[test]
    fn json_round_trip() {
        let rec = record();
        let parsed = ServeRecord::parse(&rec.render()).unwrap();
        assert_eq!(parsed, rec);
        assert_eq!(parsed.file_name(), "BENCH_SERVE_RCA32.json");
    }

    #[test]
    fn rejects_future_schema_and_foreign_kinds() {
        let mut rec = record();
        rec.schema_version = SERVE_SCHEMA_VERSION + 1;
        assert!(ServeRecord::parse(&rec.render())
            .unwrap_err()
            .contains("schema_version"));
        let foreign = record().render().replace("\"serve\"", "\"perf\"");
        assert!(ServeRecord::parse(&foreign)
            .unwrap_err()
            .contains("not a serve record"));
    }

    #[test]
    fn clean_cold_warm_pair_passes_the_audit() {
        assert!(record().audit().is_empty());
    }

    #[test]
    fn vacuous_warm_jobs_trip_the_audit() {
        let mut rec = record();
        rec.entries[1].cache_hits = 0;
        rec.entries[1].cache_misses = 4;
        rec.entries[1].parse_s = 0.01;
        let findings = rec.audit();
        assert_eq!(findings.len(), 3, "{findings:?}");

        let mut rec = record();
        rec.entries[1].warm = false;
        assert!(rec.audit().iter().any(|f| f.contains("no warm-cache job")));

        let mut rec = record();
        rec.entries[0].status = "cancelled".to_string();
        assert!(rec.audit().iter().any(|f| f.contains("cancelled")));
    }

    #[test]
    fn entries_parse_from_daemon_result_frames() {
        let frame = Json::parse(
            r#"{"v":1,"type":"result","id":"warm","status":"done","iterations":7,
                "initial_literals":200,"final_literals":150,"error_rate":0.03,
                "cache":{"network":true,"signatures":true,"absint":true,"delay_map":true},
                "timings":{"parse_s":0,"context_s":0,"synth_s":0.5},
                "metrics":{"artifact_cache_hits":4,"artifact_cache_misses":0}}"#,
        )
        .unwrap();
        let e = ServeEntry::from_result_frame(&frame, true, 0.05).unwrap();
        assert_eq!(e.id, "warm");
        assert_eq!(e.threshold, 0.05);
        assert_eq!(e.cache_hits, 4);
        assert_eq!(e.cache_misses, 0);
        assert_eq!(e.parse_s, 0.0);
        assert_eq!(e.synth_s, 0.5);
        assert_eq!(e.iterations, 7);
        assert_eq!(e.final_literals, 150);
    }
}
