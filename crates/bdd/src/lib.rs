//! Reduced ordered binary decision diagrams (ROBDDs) for **exact** error
//! analysis of approximate circuits.
//!
//! The paper measures error rates by random simulation (10 000 vectors).
//! This crate provides the complementary exact path: build BDDs for the
//! golden and approximate networks over a shared variable order, form the
//! miter `∨ᵢ (fᵢ ⊕ f'ᵢ)`, and read the **exact** error rate off the BDD's
//! on-set density — no sampling noise, for any PI count the BDD can absorb.
//!
//! * [`BddManager`] — hash-consed node store with an ITE cache and a
//!   configurable node limit (graceful [`BddError::NodeLimit`] instead of
//!   memory blow-up on BDD-hostile structures like multipliers);
//! * [`network_bdds`] — compiles a Boolean network into one BDD per PO;
//! * [`exact_error_rate`] — the end-to-end miter construction.
//!
//! # Example
//!
//! ```
//! use als_bdd::{exact_error_rate, BddManager};
//! use als_circuits::adders::ripple_carry_adder;
//!
//! let golden = ripple_carry_adder(8);
//! let mut approx = golden.clone();
//! let victim = approx.internal_ids().next().expect("non-empty");
//! approx.replace_with_constant(victim, false);
//!
//! let rate = exact_error_rate(&golden, &approx, 1 << 20)?;
//! assert!(rate > 0.0 && rate < 1.0);
//! # Ok::<(), als_bdd::BddError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

use als_network::{Network, NodeKind};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A handle to a BDD node inside a [`BddManager`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Bdd(u32);

/// Errors from BDD construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BddError {
    /// The node limit was exceeded; the structure is BDD-hostile under the
    /// natural PI order.
    NodeLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// The two networks disagree in PI or PO count.
    InterfaceMismatch,
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NodeLimit { limit } => {
                write!(f, "bdd node limit of {limit} exceeded")
            }
            BddError::InterfaceMismatch => write!(f, "networks have mismatched interfaces"),
        }
    }
}

impl Error for BddError {}

#[derive(Clone, Copy, Debug)]
struct Node {
    var: u32, // u32::MAX for terminals
    lo: u32,
    hi: u32,
}

/// A hash-consed ROBDD manager with the natural variable order
/// `x0 < x1 < …`.
#[derive(Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), u32>,
    ite_cache: HashMap<(u32, u32, u32), u32>,
    num_vars: usize,
    node_limit: usize,
}

const TERMINAL: u32 = u32::MAX;

impl BddManager {
    /// Creates a manager for `num_vars` variables with a node-count limit.
    pub fn new(num_vars: usize, node_limit: usize) -> Self {
        BddManager {
            nodes: vec![
                Node {
                    var: TERMINAL,
                    lo: 0,
                    hi: 0,
                }, // 0 = false
                Node {
                    var: TERMINAL,
                    lo: 1,
                    hi: 1,
                }, // 1 = true
            ],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            num_vars,
            node_limit,
        }
    }

    /// The constant-false BDD.
    pub fn zero(&self) -> Bdd {
        Bdd(0)
    }

    /// The constant-true BDD.
    pub fn one(&self) -> Bdd {
        Bdd(1)
    }

    /// The number of allocated nodes (terminals and dead intermediates
    /// included — the manager does no garbage collection).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The number of nodes reachable from `f` (the size of that one BDD).
    pub fn reachable_count(&self, f: Bdd) -> usize {
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) || Self::is_terminal(x) {
                continue;
            }
            let n = self.node(x);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.len()
    }

    /// The projection BDD of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_vars`.
    pub fn var(&mut self, i: usize) -> Result<Bdd, BddError> {
        assert!(i < self.num_vars, "variable out of range");
        let id = self.mk(i as u32, 0, 1)?; // lint:allow(as-cast): var count <= node_limit < 2^32
        Ok(Bdd(id))
    }

    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> Result<u32, BddError> {
        if lo == hi {
            return Ok(lo);
        }
        if let Some(&id) = self.unique.get(&(var, lo, hi)) {
            return Ok(id);
        }
        if self.nodes.len() >= self.node_limit {
            return Err(BddError::NodeLimit {
                limit: self.node_limit,
            });
        }
        let id = self.nodes.len() as u32; // lint:allow(as-cast): node_limit keeps the arena < 2^32
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        Ok(id)
    }

    fn node(&self, id: u32) -> Node {
        self.nodes[id as usize] // lint:allow(as-cast): u32 index fits usize on all supported targets
    }

    fn is_terminal(id: u32) -> bool {
        id <= 1
    }

    /// If-then-else: `ite(f, g, h) = f·g + f'·h` — the universal connective.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(self.ite_rec(f.0, g.0, h.0)?))
    }

    fn ite_rec(&mut self, f: u32, g: u32, h: u32) -> Result<u32, BddError> {
        // Terminal shortcuts.
        if f == 1 {
            return Ok(g);
        }
        if f == 0 {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == 1 && h == 0 {
            return Ok(f);
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return Ok(r);
        }
        // Split on the top variable.
        let top = [f, g, h]
            .iter()
            .filter(|&&x| !Self::is_terminal(x))
            .map(|&x| self.node(x).var)
            .min()
            .expect("f is non-terminal here"); // lint:allow(panic): internal invariant; the message states it
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite_rec(f0, g0, h0)?;
        let hi = self.ite_rec(f1, g1, h1)?;
        let r = self.mk(top, lo, hi)?;
        self.ite_cache.insert((f, g, h), r);
        Ok(r)
    }

    fn cofactors(&self, x: u32, var: u32) -> (u32, u32) {
        if Self::is_terminal(x) {
            return (x, x);
        }
        let n = self.node(x);
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (x, x)
        }
    }

    /// Conjunction.
    pub fn and(&mut self, a: Bdd, b: Bdd) -> Result<Bdd, BddError> {
        self.ite(a, b, self.zero())
    }

    /// Disjunction.
    pub fn or(&mut self, a: Bdd, b: Bdd) -> Result<Bdd, BddError> {
        let one = self.one();
        self.ite(a, one, b)
    }

    /// Negation.
    pub fn not(&mut self, a: Bdd) -> Result<Bdd, BddError> {
        let (zero, one) = (self.zero(), self.one());
        self.ite(a, zero, one)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: Bdd, b: Bdd) -> Result<Bdd, BddError> {
        let nb = self.not(b)?;
        self.ite(a, nb, b)
    }

    /// Evaluates a BDD under a PI assignment (bit `i` = variable `i`).
    pub fn eval(&self, f: Bdd, assignment: u64) -> bool {
        let mut x = f.0;
        while !Self::is_terminal(x) {
            let n = self.node(x);
            x = if assignment >> n.var & 1 == 1 {
                n.hi
            } else {
                n.lo
            };
        }
        x == 1
    }

    /// The on-set density of `f`: the fraction of the `2^num_vars` input
    /// space mapped to 1. Exact up to `f64` precision (52 bits — beyond any
    /// simulation-based estimate).
    pub fn density(&self, f: Bdd) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        self.density_rec(f.0, &mut memo)
    }

    fn density_rec(&self, x: u32, memo: &mut HashMap<u32, f64>) -> f64 {
        if x == 0 {
            return 0.0;
        }
        if x == 1 {
            return 1.0;
        }
        if let Some(&d) = memo.get(&x) {
            return d;
        }
        let n = self.node(x);
        let d = 0.5 * self.density_rec(n.lo, memo) + 0.5 * self.density_rec(n.hi, memo);
        memo.insert(x, d);
        d
    }

    /// The number of on-set minterms (exact for `num_vars ≤ 127`).
    pub fn sat_count(&self, f: Bdd) -> u128 {
        assert!(self.num_vars <= 127, "sat_count limited to 127 variables");
        let mut memo: HashMap<u32, u128> = HashMap::new();
        // count(x) = number of on-assignments of ALL variables below x's
        // level; normalize at the root.
        let total_bits = self.num_vars as u32; // lint:allow(as-cast): PI count << 2^32

        self.count_rec(f.0, 0, total_bits, &mut memo)
    }

    fn count_rec(&self, x: u32, level: u32, total: u32, memo: &mut HashMap<u32, u128>) -> u128 {
        // Returns the count over variables level..total assuming x's top var
        // is ≥ level.
        if x == 0 {
            return 0;
        }
        if x == 1 {
            return 1u128 << (total - level);
        }
        let n = self.node(x);
        let key = x;
        let below = if let Some(&c) = memo.get(&key) {
            c
        } else {
            let c = self.count_rec(n.lo, n.var + 1, total, memo)
                + self.count_rec(n.hi, n.var + 1, total, memo);
            memo.insert(key, c);
            c
        };
        // Free variables between `level` and the node's variable double the
        // count.
        below << (n.var - level)
    }
}

/// A variable order for the network's PIs: `order[i]` is the BDD level of
/// PI `i`. Computed by a depth-first traversal from the primary outputs, so
/// structurally related inputs (e.g. the `a_i`/`b_i` pairs of an adder) end
/// up adjacent — the order under which adder/comparator BDDs stay linear,
/// where the naive declaration order is exponential.
pub fn structural_pi_order(net: &Network) -> Vec<usize> {
    let pi_index: HashMap<als_network::NodeId, usize> =
        net.pis().iter().enumerate().map(|(i, &p)| (p, i)).collect();
    let mut order = vec![usize::MAX; net.num_pis()];
    let mut next_level = 0usize;
    let mut seen = vec![
        false;
        net.node_ids()
            .map(als_network::NodeId::index)
            .max()
            .map_or(0, |m| m + 1)
    ];
    let mut stack: Vec<als_network::NodeId> = net.pos().iter().rev().map(|(_, d)| *d).collect();
    while let Some(n) = stack.pop() {
        if std::mem::replace(&mut seen[n.index()], true) {
            continue;
        }
        if let Some(&i) = pi_index.get(&n) {
            order[i] = next_level;
            next_level += 1;
            continue;
        }
        // Push fanins in reverse so the first fanin is visited first.
        for &f in net.node(n).fanins().iter().rev() {
            if !seen[f.index()] {
                stack.push(f);
            }
        }
    }
    // Unreachable PIs get the remaining levels.
    for slot in &mut order {
        if *slot == usize::MAX {
            *slot = next_level;
            next_level += 1;
        }
    }
    order
}

/// Compiles a network into one BDD per primary output. `pi_order[i]` gives
/// the BDD level of PI `i` (see [`structural_pi_order`]); pass
/// `(0..n).collect()` for the declaration order.
///
/// # Errors
///
/// Returns [`BddError::NodeLimit`] if construction exceeds the manager's
/// limit.
///
/// # Panics
///
/// Panics if `pi_order` is not a permutation of `0..num_pis`.
pub fn network_bdds(
    net: &Network,
    mgr: &mut BddManager,
    pi_order: &[usize],
) -> Result<Vec<Bdd>, BddError> {
    assert_eq!(pi_order.len(), net.num_pis(), "order must cover every PI");
    let mut of_node: HashMap<als_network::NodeId, Bdd> = HashMap::new();
    for (i, &pi) in net.pis().iter().enumerate() {
        of_node.insert(pi, mgr.var(pi_order[i])?);
    }
    for id in net.topo_order() {
        let node = net.node(id);
        if node.kind() != NodeKind::Internal {
            continue;
        }
        let mut acc = mgr.zero();
        for cube in node.cover().cubes() {
            let mut term = mgr.one();
            for (var, phase) in cube.literals() {
                let fanin = of_node[&node.fanins()[var]];
                let lit = if phase { fanin } else { mgr.not(fanin)? };
                term = mgr.and(term, lit)?;
            }
            acc = mgr.or(acc, term)?;
        }
        of_node.insert(id, acc);
    }
    Ok(net.pos().iter().map(|(_, d)| of_node[d]).collect())
}

/// The **exact** error rate between two networks: the density of the miter
/// `∨ᵢ (fᵢ ⊕ f'ᵢ)` over all `2^num_pis` input vectors.
///
/// # Errors
///
/// Returns [`BddError::InterfaceMismatch`] when the interfaces differ, or
/// [`BddError::NodeLimit`] when either network's BDD exceeds `node_limit`.
pub fn exact_error_rate(
    golden: &Network,
    approx: &Network,
    node_limit: usize,
) -> Result<f64, BddError> {
    if golden.num_pis() != approx.num_pis() || golden.num_pos() != approx.num_pos() {
        return Err(BddError::InterfaceMismatch);
    }
    let mut mgr = BddManager::new(golden.num_pis(), node_limit);
    let order = structural_pi_order(golden);
    let g = network_bdds(golden, &mut mgr, &order)?;
    let a = network_bdds(approx, &mut mgr, &order)?;
    let mut miter = mgr.zero();
    for (x, y) in g.iter().zip(&a) {
        let d = mgr.xor(*x, *y)?;
        miter = mgr.or(miter, d)?;
    }
    Ok(mgr.density(miter))
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_circuits::adders::ripple_carry_adder;
    use als_logic::{Cover, Cube};

    #[test]
    fn basic_algebra() {
        let mut m = BddManager::new(3, 10_000);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let ab = m.and(a, b).unwrap();
        let a_or_b = m.or(a, b).unwrap();
        let axb = m.xor(a, b).unwrap();
        for v in 0..8u64 {
            let (va, vb) = (v & 1 == 1, v >> 1 & 1 == 1);
            assert_eq!(m.eval(ab, v), va && vb);
            assert_eq!(m.eval(a_or_b, v), va || vb);
            assert_eq!(m.eval(axb, v), va ^ vb);
        }
        // Hash-consing: rebuilding the same function yields the same handle.
        let ab2 = m.and(a, b).unwrap();
        assert_eq!(ab, ab2);
        // De Morgan.
        let na = m.not(a).unwrap();
        let nb = m.not(b).unwrap();
        let lhs = m.not(ab).unwrap();
        let rhs = m.or(na, nb).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn density_and_sat_count() {
        let mut m = BddManager::new(4, 10_000);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let ab = m.and(a, b).unwrap();
        assert!((m.density(ab) - 0.25).abs() < 1e-15);
        assert_eq!(m.sat_count(ab), 4); // 4 of 16 minterms
        assert_eq!(m.sat_count(m.one()), 16);
        assert_eq!(m.sat_count(m.zero()), 0);
        // A lone variable high in the order still counts correctly.
        let d = m.var(3).unwrap();
        assert_eq!(m.sat_count(d), 8);
    }

    #[test]
    fn node_limit_is_graceful() {
        let mut m = BddManager::new(8, 6);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        let ab = m.and(a, b);
        let result = ab.and_then(|ab| m.and(ab, c));
        assert!(matches!(result, Err(BddError::NodeLimit { .. }) | Ok(_)));
        // With so few nodes allowed, an 8-variable chain must fail somewhere.
        let mut failed = false;
        let mut acc = m.one();
        for i in 0..8 {
            if let Ok(x) = m.var(i).and_then(|v| m.and(acc, v)) {
                acc = x;
            } else {
                failed = true;
                break;
            }
        }
        assert!(failed, "limit of 6 nodes cannot hold an 8-var conjunction");
    }

    #[test]
    fn network_bdds_match_eval() {
        let net = ripple_carry_adder(4);
        let mut m = BddManager::new(net.num_pis(), 1 << 20);
        let order: Vec<usize> = (0..net.num_pis()).collect();
        let pos = network_bdds(&net, &mut m, &order).unwrap();
        for v in (0..256u64).step_by(7) {
            let pis: Vec<bool> = (0..8).map(|i| v >> i & 1 == 1).collect();
            let expect = net.eval(&pis);
            for (bdd, e) in pos.iter().zip(&expect) {
                assert_eq!(m.eval(*bdd, v), *e, "vector {v:08b}");
            }
        }
    }

    #[test]
    fn exact_error_rate_matches_exhaustive_simulation() {
        use als_sim::{error_rate, PatternSet};
        let golden = ripple_carry_adder(4);
        let mut approx = golden.clone();
        let victim = approx.internal_ids().nth(3).unwrap();
        approx.replace_with_constant(victim, true);
        let exact = exact_error_rate(&golden, &approx, 1 << 20).unwrap();
        let patterns = PatternSet::exhaustive(8).unwrap();
        let sampled = error_rate(&golden, &approx, &patterns);
        assert!(
            (exact - sampled).abs() < 1e-12,
            "exact {exact} vs exhaustive {sampled}"
        );
    }

    #[test]
    fn structural_order_keeps_adders_linear() {
        // Declaration order (a0..a31 b0..b31) is exponential for the carry;
        // the structural order interleaves and must stay small.
        let net = ripple_carry_adder(32);
        let order = structural_pi_order(&net);
        let mut m = BddManager::new(64, 1 << 20);
        let pos = network_bdds(&net, &mut m, &order).unwrap();
        let worst = pos.iter().map(|&f| m.reachable_count(f)).max().unwrap();
        assert!(worst < 1000, "adder BDD should be linear, got {worst}");
        // Exact density of the carry-out of a uniform 32-bit add.
        let cout = pos[32];
        let d = m.density(cout);
        assert!((0.4..0.6).contains(&d), "cout density {d}");
    }

    #[test]
    fn identical_networks_have_zero_exact_error() {
        let net = ripple_carry_adder(6);
        assert_eq!(exact_error_rate(&net, &net.clone(), 1 << 20).unwrap(), 0.0);
    }

    #[test]
    fn interface_mismatch_detected() {
        let a = ripple_carry_adder(4);
        let b = ripple_carry_adder(5);
        assert_eq!(
            exact_error_rate(&a, &b, 1 << 20),
            Err(BddError::InterfaceMismatch)
        );
    }

    #[test]
    fn xor_tree_bdd_is_linear() {
        // XOR chains are the BDD-friendly case: size linear in variables.
        let mut net = als_network::Network::new("x");
        let pis: Vec<_> = (0..16).map(|i| net.add_pi(format!("x{i}"))).collect();
        let mut acc = pis[0];
        for (i, &p) in pis.iter().enumerate().skip(1) {
            acc = net.add_node(
                format!("t{i}"),
                vec![acc, p],
                Cover::from_cubes(
                    2,
                    [
                        Cube::from_literals(&[(0, true), (1, false)]).unwrap(),
                        Cube::from_literals(&[(0, false), (1, true)]).unwrap(),
                    ],
                ),
            );
        }
        net.add_po("p", acc);
        let mut m = BddManager::new(16, 10_000);
        let order: Vec<usize> = (0..16).collect();
        let pos = network_bdds(&net, &mut m, &order).unwrap();
        // The parity function's BDD is linear in the variable count.
        assert!(
            m.reachable_count(pos[0]) <= 2 * 16 + 2,
            "parity BDD must be linear, got {}",
            m.reachable_count(pos[0])
        );
        assert!((m.density(pos[0]) - 0.5).abs() < 1e-15);
    }
}
