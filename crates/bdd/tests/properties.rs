//! Property-based tests: BDD operations against truth tables, density vs.
//! sat-count consistency, and canonical hash-consing.

use als_bdd::{Bdd, BddManager};
use als_logic::TruthTable;
use proptest::prelude::*;

const NUM_VARS: usize = 5;

/// A tiny expression language for building the same function both as a BDD
/// and as a truth table.
#[derive(Clone, Debug)]
enum Op {
    Var(u8),
    And(Box<Op>, Box<Op>),
    Or(Box<Op>, Box<Op>),
    Xor(Box<Op>, Box<Op>),
    Not(Box<Op>),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let leaf = any::<u8>().prop_map(Op::Var);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Op::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Op::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Op::Xor(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Op::Not(Box::new(a))),
        ]
    })
}

fn build_bdd(op: &Op, mgr: &mut BddManager) -> Bdd {
    match op {
        Op::Var(v) => mgr.var(*v as usize % NUM_VARS).expect("in range"),
        Op::And(a, b) => {
            let (x, y) = (build_bdd(a, mgr), build_bdd(b, mgr));
            mgr.and(x, y).expect("limit generous")
        }
        Op::Or(a, b) => {
            let (x, y) = (build_bdd(a, mgr), build_bdd(b, mgr));
            mgr.or(x, y).expect("limit generous")
        }
        Op::Xor(a, b) => {
            let (x, y) = (build_bdd(a, mgr), build_bdd(b, mgr));
            mgr.xor(x, y).expect("limit generous")
        }
        Op::Not(a) => {
            let x = build_bdd(a, mgr);
            mgr.not(x).expect("limit generous")
        }
    }
}

fn build_tt(op: &Op) -> TruthTable {
    match op {
        Op::Var(v) => TruthTable::var(NUM_VARS, *v as usize % NUM_VARS).expect("in range"),
        Op::And(a, b) => &build_tt(a) & &build_tt(b),
        Op::Or(a, b) => &build_tt(a) | &build_tt(b),
        Op::Xor(a, b) => &build_tt(a) ^ &build_tt(b),
        Op::Not(a) => !&build_tt(a),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bdd_matches_truth_table(op in arb_op()) {
        let mut mgr = BddManager::new(NUM_VARS, 1 << 16);
        let f = build_bdd(&op, &mut mgr);
        let tt = build_tt(&op);
        for m in 0..(1u64 << NUM_VARS) {
            prop_assert_eq!(mgr.eval(f, m), tt.get(m), "minterm {}", m);
        }
    }

    #[test]
    fn density_equals_satcount_fraction(op in arb_op()) {
        let mut mgr = BddManager::new(NUM_VARS, 1 << 16);
        let f = build_bdd(&op, &mut mgr);
        let tt = build_tt(&op);
        let count = mgr.sat_count(f);
        prop_assert_eq!(count, u128::from(tt.count_ones()));
        let density = mgr.density(f);
        let expect = count as f64 / (1u64 << NUM_VARS) as f64;
        prop_assert!((density - expect).abs() < 1e-12);
    }

    #[test]
    fn hash_consing_is_canonical(op in arb_op()) {
        // Building the same function twice yields the identical handle —
        // the ROBDD canonicity property.
        let mut mgr = BddManager::new(NUM_VARS, 1 << 16);
        let f1 = build_bdd(&op, &mut mgr);
        let f2 = build_bdd(&op, &mut mgr);
        prop_assert_eq!(f1, f2);
        // And the double complement returns the original handle.
        let n = mgr.not(f1).expect("limit generous");
        let nn = mgr.not(n).expect("limit generous");
        prop_assert_eq!(nn, f1);
    }

    #[test]
    fn xor_with_self_is_zero(op in arb_op()) {
        let mut mgr = BddManager::new(NUM_VARS, 1 << 16);
        let f = build_bdd(&op, &mut mgr);
        let z = mgr.xor(f, f).expect("limit generous");
        prop_assert_eq!(z, mgr.zero());
    }
}
