//! Static analysis and certification for the ALS stack.
//!
//! Two analyzer families live here:
//!
//! * **Structural analysis** ([`NetworkAnalyzer`]): a configurable pass list
//!   over any [`Network`](als_network::Network) — reference/arity
//!   consistency, acyclicity, topological-order validity, SOP ↔
//!   factored-form functional equivalence, don't-care soundness,
//!   abstract-interpretation error-bound containment ([`Pass::ErrorBound`],
//!   backed by [`als_absint`]), and incremental SAT sweeping
//!   ([`Pass::SatSweep`]: signature-bucketed equivalence candidates
//!   confirmed by miter queries) — producing a structured
//!   [`AnalysisReport`] instead of panicking.
//! * **Certificate audit** ([`audit_certificates`]): every accepted
//!   approximate change records an [`ApproxCertificate`] (node, ASE, claimed
//!   apparent error rate, §3.2) in the telemetry JSONL stream; the auditor
//!   replays such a log and verifies the Theorem-1 inequality chain, the
//!   per-iteration error budget, containment of each claimed apparent rate
//!   in its recorded static interval, and — given the golden network —
//!   re-derives the real error rate of the final network from the logged
//!   seed. The informational full-space exact check runs on a selectable
//!   engine ([`CheckEngine`]): BDD miter density, #SAT disjoint-cube
//!   enumeration ([`exact_error_rate_sat`]), or automatic fallback from
//!   BDD to SAT when the node limit trips.
//!
//! The analyzer **never panics** on malformed networks: that is the point.
//! Tooling (the `als check` CLI subcommand, CI mutation tests) relies on
//! getting diagnostics back from inputs that the rest of the workspace
//! would assert on.
//!
//! # Example
//!
//! ```
//! use als_check::{AnalyzerConfig, NetworkAnalyzer};
//! use als_network::Network;
//!
//! let mut net = Network::new("buf");
//! let a = net.add_pi("a");
//! net.add_po("y", a);
//! let report = NetworkAnalyzer::new(AnalyzerConfig::full()).analyze(&net);
//! assert!(report.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

mod analyzer;
mod audit;
mod certificate;
mod diagnostic;
mod satcount;

pub use analyzer::{AnalyzerConfig, NetworkAnalyzer, Pass};
pub use audit::{audit_certificates, AuditConfig, CheckEngine};
pub use certificate::{ApproxCertificate, CertificateError, CertificateLog, IterationCert};
pub use diagnostic::{AnalysisReport, Diagnostic, Severity};
pub use satcount::{exact_error_rate_sat, SatCountError, SatErrorRate};
