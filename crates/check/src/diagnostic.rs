//! Structured findings: what a pass saw, where, and how bad it is.

use als_network::NodeId;
use std::fmt;

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Context worth reporting (e.g. the chained Theorem-1 bound).
    Info,
    /// Suspicious but not a proven violation (e.g. a node too large to
    /// verify functionally, or an exact rate exceeding a sampled budget).
    Warning,
    /// A proven invariant violation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding from an analysis or audit pass.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// The pass that produced it (e.g. `"acyclicity"`).
    pub pass: &'static str,
    /// The offending node, when the finding is node-local.
    pub node: Option<NodeId>,
    /// The offending node's name, when the finding is node-local and the
    /// node's metadata was still readable.
    pub node_name: Option<String>,
    /// What went wrong.
    pub message: String,
    /// How to fix it, when the pass knows.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// A new [`Severity::Error`] finding.
    pub fn error(pass: &'static str, message: impl Into<String>) -> Self {
        Self::new(Severity::Error, pass, message)
    }

    /// A new [`Severity::Warning`] finding.
    pub fn warning(pass: &'static str, message: impl Into<String>) -> Self {
        Self::new(Severity::Warning, pass, message)
    }

    /// A new [`Severity::Info`] finding.
    pub fn info(pass: &'static str, message: impl Into<String>) -> Self {
        Self::new(Severity::Info, pass, message)
    }

    fn new(severity: Severity, pass: &'static str, message: impl Into<String>) -> Self {
        Self {
            severity,
            pass,
            node: None,
            node_name: None,
            message: message.into(),
            hint: None,
        }
    }

    /// Attaches the offending node.
    #[must_use]
    pub fn with_node(mut self, node: NodeId, name: Option<String>) -> Self {
        self.node = Some(node);
        self.node_name = name;
        self
    }

    /// Attaches a fix hint.
    #[must_use]
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity, self.pass)?;
        if let Some(name) = &self.node_name {
            write!(f, " {name}")?;
        } else if let Some(node) = self.node {
            write!(f, " node#{node}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(hint) = &self.hint {
            write!(f, " (hint: {hint})")?;
        }
        Ok(())
    }
}

/// The outcome of running an analyzer or auditor: every finding, in pass
/// order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AnalysisReport {
    /// All findings, in the order the passes produced them.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no [`Severity::Error`] finding is present (warnings and
    /// info lines do not make a network dirty).
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Iterates over the error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Appends a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Appends every finding of `other`.
    pub fn extend(&mut self, other: AnalysisReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Drops findings identical to an earlier one, keeping first
    /// occurrences in order. Passes that walk overlapping structures (or
    /// are configured twice) can re-derive the same finding; one line per
    /// distinct fact reads better and keeps `--json` output minimal.
    pub fn dedupe(&mut self) {
        let mut seen: Vec<Diagnostic> = Vec::with_capacity(self.diagnostics.len());
        self.diagnostics.retain(|d| {
            if seen.contains(d) {
                false
            } else {
                seen.push(d.clone());
                true
            }
        });
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "clean: no findings");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        writeln!(
            f,
            "{} finding(s), {} error(s)",
            self.diagnostics.len(),
            self.error_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_puts_error_on_top() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn report_cleanliness_ignores_warnings() {
        let mut report = AnalysisReport::new();
        assert!(report.is_clean());
        report.push(Diagnostic::warning(
            "sop_equivalence",
            "too large to verify",
        ));
        report.push(Diagnostic::info("audit", "chained bound 0.01"));
        assert!(report.is_clean());
        report.push(Diagnostic::error("acyclicity", "cycle through n3"));
        assert!(!report.is_clean());
        assert_eq!(report.error_count(), 1);
    }

    #[test]
    fn dedupe_keeps_first_occurrences_in_order() {
        let mut report = AnalysisReport::new();
        report.push(Diagnostic::error("references", "fanin 7 is dead"));
        report.push(Diagnostic::warning("sop_equivalence", "too large"));
        report.push(Diagnostic::error("references", "fanin 7 is dead"));
        // Same message at a different severity is a distinct finding.
        report.push(Diagnostic::warning("references", "fanin 7 is dead"));
        report.dedupe();
        assert_eq!(report.diagnostics.len(), 3);
        assert_eq!(report.diagnostics[0].severity, Severity::Error);
        assert_eq!(report.diagnostics[1].pass, "sop_equivalence");
        assert_eq!(report.diagnostics[2].severity, Severity::Warning);
    }

    #[test]
    fn display_includes_pass_node_and_hint() {
        let d =
            Diagnostic::error("references", "fanin 7 is dead").with_hint("rebuild the fanin list");
        let text = d.to_string();
        assert!(text.contains("error [references]"));
        assert!(text.contains("hint: rebuild"));
    }
}
