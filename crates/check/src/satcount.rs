//! #SAT exact error-rate certification — the SAT-engine alternative to
//! [`als_bdd::exact_error_rate`].
//!
//! Builds a miter between the golden and approximate networks in one
//! incremental solver — with **structural hashing** across the two copies,
//! so any cone the approximation left untouched is encoded once and shared,
//! and output pairs that collapse to the same solver variable are provably
//! equal and excluded from the miter up front — and enumerates the error
//! set as **disjoint** primary-input cubes (projected model counting): each satisfying
//! assignment of the miter is greedily enlarged to a cube — PIs are freed
//! one at a time in ascending index order — and every enlargement step is
//! validated by a *second* solver holding the complementary query "some
//! vector of the cube has equal outputs or lies in an already-counted
//! cube". A freed PI is kept free only when that query is UNSAT, so every
//! counted cube consists entirely of fresh error minterms and the cube
//! weights sum to the exact error count.
//!
//! The already-counted cubes are referenced through one-directional
//! selector literals (`sel → cube`) so the secondary solver's clause
//! database only ever grows monotonically; the per-round disjunction over
//! the selectors lives in a retractable clause group and is swept after
//! the round. The primary solver accumulates one blocking clause per cube.
//!
//! Counting is bit-exact (`u128` minterm arithmetic) up to 127 primary
//! inputs. Wider interfaces fall back to summing the dyadic cube weights
//! `2^-fixed` in `f64`, exact per term and within `cubes · ulp` overall —
//! far below the auditor's `1e-9` tolerance for any feasible cube count.

use als_dontcare::encode_node_cnf;
use als_logic::Cover;
use als_network::{Network, NodeId, NodeKind};
use als_sat::{Lit, SatResult, Solver, Var};
use std::collections::HashMap;

/// Structural-hashing table shared across the two network encodings in one
/// solver: `(fanin variables in order, cover)` → the variable already
/// encoding that function. Two nodes with equal keys compute the same
/// function of the same solver variables, so reusing the variable is sound
/// and turns the near-identical approximate copy into a thin overlay on the
/// golden encoding.
type StructTable = HashMap<(Vec<Var>, Cover), Var>;

/// Early-cutoff slack against a claimed rate: the enumeration stops as
/// soon as the accumulated rate provably exceeds `claimed + CUTOFF_TOL`.
const CUTOFF_TOL: f64 = 1e-9;

/// Outcome of a SAT-based exact error-rate derivation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatErrorRate {
    /// The error rate: exact when `truncated` is false, otherwise a sound
    /// lower bound already above the claimed rate.
    pub rate: f64,
    /// Disjoint PI cubes enumerated.
    pub cubes: usize,
    /// True when the enumeration cut off early because the accumulated
    /// rate exceeded the claimed rate — `rate` is then a lower bound.
    pub truncated: bool,
    /// Total SAT queries issued (miter + cube-validity checks).
    pub sat_queries: u64,
}

/// Errors from the SAT counting engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SatCountError {
    /// The two networks have different PI or PO counts.
    InterfaceMismatch,
    /// The error set needed more disjoint cubes than the limit allows; the
    /// structure is enumeration-hostile (mirror of the BDD node limit).
    CubeLimit {
        /// The limit that was hit.
        limit: usize,
    },
}

/// Exact minterm accumulator: bit-exact `u128` units up to 127 PIs, dyadic
/// `f64` weight summation above.
struct MintermCount {
    num_pis: usize,
    exact: Option<u128>,
    dyadic: f64,
}

impl MintermCount {
    fn new(num_pis: usize) -> Self {
        Self {
            num_pis,
            exact: (num_pis <= 127).then_some(0),
            dyadic: 0.0,
        }
    }

    /// Adds one disjoint cube fixing `fixed` of the PIs (covering
    /// `2^(num_pis - fixed)` minterms).
    fn add_cube(&mut self, fixed: usize) {
        match &mut self.exact {
            Some(count) => *count += 1u128 << (self.num_pis - fixed),
            None => {
                self.dyadic += f64::powi(
                    2.0,
                    -i32::try_from(fixed).expect("PI count fits i32"), // lint:allow(panic): bounded by the network interface
                );
            }
        }
    }

    fn rate(&self) -> f64 {
        match self.exact {
            Some(count) => {
                let total = f64::powi(
                    2.0,
                    i32::try_from(self.num_pis).expect("checked <= 127"), // lint:allow(panic): guarded at construction
                );
                count as f64 / total // lint:allow(as-cast): nearest-even rounding of the exact count
            }
            None => self.dyadic,
        }
    }
}

/// Tseitin-encodes every internal node of `net` over the shared
/// primary-input variables `pis`, returning one solver variable per
/// primary output in PO order. Nodes whose `(fanin vars, cover)` key is
/// already in `table` reuse the existing variable instead of re-encoding,
/// so the second network encoded against the same table shares every cone
/// the approximation did not touch.
///
/// # Panics
///
/// Panics if `net` fails its structural invariants (dead PO driver,
/// unencoded fanin); callers audit structurally checked networks.
fn encode_outputs(
    solver: &mut Solver,
    net: &Network,
    pis: &[Var],
    table: &mut StructTable,
) -> Vec<Var> {
    let mut vars: HashMap<NodeId, Var> = HashMap::new();
    for (&node, &var) in net.pis().iter().zip(pis) {
        vars.insert(node, var);
    }
    for id in net.topo_order() {
        if net.node(id).kind() != NodeKind::Internal {
            continue;
        }
        let node = net.node(id);
        let fanin_vars: Vec<Var> = node
            .fanins()
            .iter()
            .map(|f| {
                *vars.get(f).expect("fanin encoded before its consumer") // lint:allow(panic): topo-order invariant
            })
            .collect();
        let key = (fanin_vars, node.cover().clone());
        let v = if let Some(&shared) = table.get(&key) {
            shared
        } else {
            let v = solver.new_var();
            encode_node_cnf(solver, net, id, &vars, v);
            table.insert(key, v);
            v
        };
        vars.insert(id, v);
    }
    net.pos()
        .iter()
        .map(|(_, d)| {
            *vars.get(d).expect("PO driven by a live encoded node") // lint:allow(panic): structural invariant; message states it
        })
        .collect()
}

/// The **exact** error rate between two networks by projected model
/// counting: the density of the miter `∨ᵢ (fᵢ ⊕ f'ᵢ)` over all
/// `2^num_pis` input vectors, enumerated as at most `max_cubes` disjoint
/// PI cubes.
///
/// With `claimed = Some(r)` the enumeration stops early once the
/// accumulated rate provably exceeds `r` — the result is then flagged
/// [`truncated`](SatErrorRate::truncated) and its rate is a sound lower
/// bound (sufficient to refute the claim without finishing the count).
///
/// # Errors
///
/// Returns [`SatCountError::InterfaceMismatch`] when the interfaces
/// differ, or [`SatCountError::CubeLimit`] when the error set does not fit
/// in `max_cubes` disjoint cubes.
pub fn exact_error_rate_sat(
    golden: &Network,
    approx: &Network,
    max_cubes: usize,
    claimed: Option<f64>,
) -> Result<SatErrorRate, SatCountError> {
    if golden.num_pis() != approx.num_pis() || golden.num_pos() != approx.num_pos() {
        return Err(SatCountError::InterfaceMismatch);
    }
    let n = golden.num_pis();

    // Primary solver: SAT iff some not-yet-counted error input exists.
    // Output pairs sharing a variable after structural hashing are
    // provably equal and contribute no difference literal.
    let mut primary = Solver::new();
    let mut p_table = StructTable::new();
    let p_pis: Vec<Var> = (0..n).map(|_| primary.new_var()).collect();
    let pg = encode_outputs(&mut primary, golden, &p_pis, &mut p_table);
    let pa = encode_outputs(&mut primary, approx, &p_pis, &mut p_table);
    let mut any: Vec<Lit> = Vec::with_capacity(pg.len());
    for (&g, &a) in pg.iter().zip(&pa) {
        if g == a {
            continue;
        }
        let d = Lit::pos(primary.new_var());
        // d → (g ⊕ a); the reverse direction is unnecessary under a
        // positive disjunction over the d's.
        primary.add_clause(&[!d, Lit::pos(g), Lit::pos(a)]);
        primary.add_clause(&[!d, Lit::neg(g), Lit::neg(a)]);
        any.push(d);
    }
    if any.is_empty() {
        // Every output cone hashed to the same variable: the networks are
        // structurally identical up to node naming, hence equivalent.
        return Ok(SatErrorRate {
            rate: 0.0,
            cubes: 0,
            truncated: false,
            sat_queries: 0,
        });
    }
    primary.add_clause(&any);

    // Secondary solver: the cube-validity oracle. Selector literals, each
    // one-directional: `eq` forces the (non-shared) outputs equal, later
    // ones force membership in an already-counted cube.
    let mut secondary = Solver::new();
    let mut s_table = StructTable::new();
    let s_pis: Vec<Var> = (0..n).map(|_| secondary.new_var()).collect();
    let sg = encode_outputs(&mut secondary, golden, &s_pis, &mut s_table);
    let sa = encode_outputs(&mut secondary, approx, &s_pis, &mut s_table);
    let eq = Lit::pos(secondary.new_var());
    for (&g, &a) in sg.iter().zip(&sa) {
        if g == a {
            continue;
        }
        secondary.add_clause(&[!eq, Lit::neg(g), Lit::pos(a)]);
        secondary.add_clause(&[!eq, Lit::pos(g), Lit::neg(a)]);
    }
    let mut selectors: Vec<Lit> = vec![eq];

    let mut count = MintermCount::new(n);
    let mut cubes = 0usize;
    let mut queries = 0u64;
    let mut assumptions: Vec<Lit> = Vec::with_capacity(n + 1);
    loop {
        queries += 1;
        if primary.solve() == SatResult::Unsat {
            break;
        }
        if cubes == max_cubes {
            return Err(SatCountError::CubeLimit { limit: max_cubes });
        }
        // Read the model before any clause addition backtracks it away.
        let phases: Vec<bool> = p_pis
            .iter()
            .map(|&v| primary.value(v).unwrap_or(false))
            .collect();

        // Greedy cube enlargement in ascending PI order. The model itself
        // is a valid (fully fixed) cube: the miter clause makes it an
        // error input and the blocking clauses keep it out of every
        // counted cube. Freeing PI `i` stays accepted only when no vector
        // of the enlarged cube has equal outputs or was already counted.
        let mut fixed = vec![true; n];
        let round = secondary.new_group();
        secondary.add_clause_in(round, &selectors);
        for i in 0..n {
            fixed[i] = false;
            assumptions.clear();
            assumptions.push(round.lit());
            for j in 0..n {
                if fixed[j] {
                    assumptions.push(Lit::with_sign(s_pis[j], phases[j]));
                }
            }
            queries += 1;
            if secondary.solve_with_assumptions(&assumptions) != SatResult::Unsat {
                fixed[i] = true;
            }
        }
        secondary.retract(round);

        let fixed_count = fixed.iter().filter(|&&f| f).count();
        count.add_cube(fixed_count);
        cubes += 1;

        // Block the cube in the primary; an all-free cube covers the whole
        // space, and the resulting empty clause ends the enumeration.
        let blocking: Vec<Lit> = (0..n)
            .filter(|&j| fixed[j])
            .map(|j| Lit::with_sign(p_pis[j], !phases[j]))
            .collect();
        primary.add_clause(&blocking);
        // Register the cube behind a fresh selector in the secondary.
        let sel = Lit::pos(secondary.new_var());
        for j in (0..n).filter(|&j| fixed[j]) {
            secondary.add_clause(&[!sel, Lit::with_sign(s_pis[j], phases[j])]);
        }
        selectors.push(sel);

        if let Some(claim) = claimed {
            if count.rate() > claim + CUTOFF_TOL {
                return Ok(SatErrorRate {
                    rate: count.rate(),
                    cubes,
                    truncated: true,
                    sat_queries: queries,
                });
            }
        }
    }
    Ok(SatErrorRate {
        rate: count.rate(),
        cubes,
        truncated: false,
        sat_queries: queries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    /// y = a·b golden vs y = a approx: they differ exactly on a=1, b=0 —
    /// rate 1/4, one cube.
    fn and_vs_wire() -> (Network, Network) {
        let mut golden = Network::new("g");
        let a = golden.add_pi("a");
        let b = golden.add_pi("b");
        let y = golden.add_node(
            "y",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        golden.add_po("y", y);

        let mut approx = Network::new("a");
        let a2 = approx.add_pi("a");
        let _b2 = approx.add_pi("b");
        approx.add_po("y", a2);
        (golden, approx)
    }

    #[test]
    fn identical_networks_have_rate_zero() {
        let (golden, _) = and_vs_wire();
        let r = exact_error_rate_sat(&golden, &golden.clone(), 16, None).unwrap();
        assert_eq!(r.rate, 0.0);
        assert_eq!(r.cubes, 0);
        assert!(!r.truncated);
        assert_eq!(
            r.sat_queries, 0,
            "structural hashing proves a clone equivalent without search"
        );
    }

    #[test]
    fn single_cube_difference_is_counted_exactly() {
        let (golden, approx) = and_vs_wire();
        let r = exact_error_rate_sat(&golden, &approx, 16, None).unwrap();
        assert!((r.rate - 0.25).abs() < 1e-15, "rate {}", r.rate);
        assert_eq!(r.cubes, 1, "a=1,b=0 is a single cube");
        assert!(!r.truncated);
    }

    #[test]
    fn complemented_output_covers_the_whole_space_in_one_cube() {
        let mut golden = Network::new("g");
        let a = golden.add_pi("a");
        let b = golden.add_pi("b");
        let y = golden.add_node(
            "y",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(0, false)])]),
        );
        golden.add_po("y", y);
        // Approx: constant 0 where golden is constant 1 → differ everywhere.
        let mut approx = Network::new("a");
        let a2 = approx.add_pi("a");
        let b2 = approx.add_pi("b");
        let z = approx.add_node("z", vec![a2, b2], Cover::constant_zero(2));
        approx.add_po("y", z);
        let r = exact_error_rate_sat(&golden, &approx, 16, None).unwrap();
        assert_eq!(r.rate, 1.0);
        assert_eq!(r.cubes, 1, "enlargement frees every PI");
    }

    #[test]
    fn interface_mismatch_is_reported() {
        let (golden, _) = and_vs_wire();
        let mut other = Network::new("o");
        let a = other.add_pi("a");
        other.add_po("y", a);
        assert_eq!(
            exact_error_rate_sat(&golden, &other, 16, None),
            Err(SatCountError::InterfaceMismatch)
        );
    }

    #[test]
    fn cube_limit_is_reported() {
        // Golden XOR vs constant 0: the error set {a≠b} needs two disjoint
        // cubes; a limit of 1 must trip.
        let mut golden = Network::new("g");
        let a = golden.add_pi("a");
        let b = golden.add_pi("b");
        let y = golden.add_node(
            "y",
            vec![a, b],
            Cover::from_cubes(
                2,
                [
                    cube(&[(0, true), (1, false)]),
                    cube(&[(0, false), (1, true)]),
                ],
            ),
        );
        golden.add_po("y", y);
        let mut approx = Network::new("a");
        let a2 = approx.add_pi("a");
        let b2 = approx.add_pi("b");
        let z = approx.add_node("z", vec![a2, b2], Cover::constant_zero(2));
        approx.add_po("y", z);
        assert_eq!(
            exact_error_rate_sat(&golden, &approx, 1, None),
            Err(SatCountError::CubeLimit { limit: 1 })
        );
        let r = exact_error_rate_sat(&golden, &approx, 4, None).unwrap();
        assert!((r.rate - 0.5).abs() < 1e-15);
        assert_eq!(r.cubes, 2);
    }

    #[test]
    fn early_cutoff_returns_a_truncated_lower_bound() {
        // XOR vs constant 0 has rate 0.5; claiming 0.1 lets the
        // enumeration stop after the first quarter-space cube.
        let mut golden = Network::new("g");
        let a = golden.add_pi("a");
        let b = golden.add_pi("b");
        let y = golden.add_node(
            "y",
            vec![a, b],
            Cover::from_cubes(
                2,
                [
                    cube(&[(0, true), (1, false)]),
                    cube(&[(0, false), (1, true)]),
                ],
            ),
        );
        golden.add_po("y", y);
        let mut approx = Network::new("a");
        let a2 = approx.add_pi("a");
        let b2 = approx.add_pi("b");
        let z = approx.add_node("z", vec![a2, b2], Cover::constant_zero(2));
        approx.add_po("y", z);
        let r = exact_error_rate_sat(&golden, &approx, 16, Some(0.1)).unwrap();
        assert!(r.truncated);
        assert_eq!(r.cubes, 1);
        assert!((r.rate - 0.25).abs() < 1e-15, "one quarter-space cube");
        assert!(r.rate > 0.1, "the lower bound already refutes the claim");
    }

    #[test]
    fn agrees_with_exhaustive_simulation_on_random_pairs() {
        use als_sim::PatternSet;
        // Cross-check against brute-force evaluation on a 4-PI pair.
        let mut golden = Network::new("g");
        let pis: Vec<NodeId> = (0..4).map(|i| golden.add_pi(format!("x{i}"))).collect();
        let u = golden.add_node(
            "u",
            vec![pis[0], pis[1]],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let v = golden.add_node(
            "v",
            vec![pis[2], pis[3]],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, false)])]),
        );
        let w = golden.add_node(
            "w",
            vec![u, v],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
        );
        golden.add_po("w", w);

        let mut approx = golden.clone();
        let ids: Vec<NodeId> = approx.internal_ids().collect();
        approx.replace_expr(
            ids[0],
            als_logic::Expr::Lit {
                var: 0,
                phase: true,
            },
        );

        let mut expect = 0usize;
        for m in 0..16u32 {
            let bits: Vec<bool> = (0..4).map(|i| m >> i & 1 == 1).collect();
            if golden.eval(&bits) != approx.eval(&bits) {
                expect += 1;
            }
        }
        let r = exact_error_rate_sat(&golden, &approx, 64, None).unwrap();
        assert!(
            (r.rate - expect as f64 / 16.0).abs() < 1e-15, // lint:allow(as-cast): count <= 16
            "sat {} vs exhaustive {expect}/16",
            r.rate
        );
        // And against the sampled estimator on the full pattern space.
        let patterns = PatternSet::exhaustive(4).unwrap();
        let sampled = als_sim::error_rate(&golden, &approx, &patterns);
        assert!((r.rate - sampled).abs() < 1e-15);
    }
}
