//! Theorem-1 certificate auditing.
//!
//! The paper's Theorem 1 states that the real error-rate increase of a
//! batch of accepted changes is bounded by the sum of their apparent
//! error rates (§3.2). Every run therefore satisfies, iteration by
//! iteration, the *triangle chain*
//!
//! ```text
//! E_after(i) ≤ E_before(i) + Σ apparentᵢⱼ
//! ```
//!
//! — exact on the shared pattern set for single-selection and SASIMI
//! (one change per iteration, measured on the same patterns), and
//! Theorem-1-justified for multi-selection batches — plus the budget
//! `E_after(i) ≤ T` at every step. The auditor re-checks the whole chain
//! from the certificates alone, and, given the golden network, re-derives
//! the real final error rate from the logged seed.

use crate::certificate::CertificateLog;
use crate::diagnostic::{AnalysisReport, Diagnostic};
use crate::satcount::{exact_error_rate_sat, SatErrorRate};
use als_network::Network;
use als_sim::{error_rate, PatternSet};

/// The pass name every audit diagnostic carries.
const PASS: &str = "certificates";

/// Which engine derives the informational full-space exact error rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CheckEngine {
    /// BDD miter density (the original path).
    #[default]
    Bdd,
    /// #SAT disjoint-cube enumeration
    /// ([`exact_error_rate_sat`](crate::exact_error_rate_sat)).
    Sat,
    /// BDD first; fall back to SAT when the BDD node limit trips —
    /// SAT-hostile and BDD-hostile structures rarely coincide.
    Auto,
}

/// Audit knobs.
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// Absolute slack for floating-point comparisons. The measured rates
    /// are ratios of pattern counts, so genuine violations overshoot this
    /// by orders of magnitude.
    pub tolerance: f64,
    /// Node budget for the informational exact-BDD re-derivation; runs
    /// that exceed it skip the exact check with an info note (or fall back
    /// to SAT under [`CheckEngine::Auto`]).
    pub exact_bdd_node_limit: usize,
    /// Which exact-verification engine to use.
    pub engine: CheckEngine,
    /// Disjoint-cube budget for the SAT engine; enumeration-hostile error
    /// sets that exceed it skip the exact check with an info note.
    pub sat_cube_limit: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            tolerance: 1e-9,
            exact_bdd_node_limit: 1 << 20,
            engine: CheckEngine::default(),
            sat_cube_limit: 1 << 12,
        }
    }
}

/// Mirrors `als-core`'s knapsack weight scale: multi-selection scales
/// apparent rates by this factor and rounds to integer weights, so a
/// batch may overshoot the margin by up to half a unit per change. Keep
/// in sync with `error_rate_scale` in `crates/core/src/multi.rs`.
fn error_rate_scale(threshold: f64) -> f64 {
    if threshold < 0.01 {
        10_000.0
    } else {
        1_000.0
    }
}

/// Audits a parsed certificate log.
///
/// Without networks the audit is *internal*: the Theorem-1 chain, the
/// per-iteration budget, and the summary's self-consistency. Passing the
/// `golden` network (the function the threshold is measured against) and
/// the run's `final` network re-derives the real error rate from the
/// logged seed and checks the claims against reality.
pub fn audit_certificates(
    log: &CertificateLog,
    golden: Option<&Network>,
    final_net: Option<&Network>,
    config: &AuditConfig,
) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    let tol = config.tolerance;

    if log.num_patterns == 0 {
        report.push(Diagnostic::error(PASS, "run_start claims zero patterns"));
    }
    if !(0.0..=1.0).contains(&log.threshold) {
        report.push(Diagnostic::error(
            PASS,
            format!("threshold {} is not a probability", log.threshold),
        ));
    }

    let mut chain_start = log.initial_error;
    if chain_start.is_none() {
        report.push(Diagnostic::warning(
            PASS,
            "no pre-approximation measurement; the first iteration's chain check is skipped",
        ));
    }

    let mut prev_error = chain_start;
    let mut prev_iteration = 0u64;
    let mut apparent_sum_total = 0.0f64;
    for it in &log.iterations {
        if it.iteration <= prev_iteration {
            report.push(Diagnostic::error(
                PASS,
                format!(
                    "iteration {} does not follow iteration {prev_iteration}",
                    it.iteration
                ),
            ));
        }
        prev_iteration = it.iteration;

        if it.changes as usize != it.certificates.len() {
            // lint:allow(as-cast): per-iteration change count << 2^32
            report.push(Diagnostic::error(
                PASS,
                format!(
                    "iteration {} claims {} change(s) but carries {} certificate(s)",
                    it.iteration,
                    it.changes,
                    it.certificates.len()
                ),
            ));
        }

        let mut apparent_sum = 0.0f64;
        for cert in &it.certificates {
            if !(0.0..=1.0).contains(&cert.apparent) {
                report.push(Diagnostic::error(
                    PASS,
                    format!(
                        "certificate for `{}` claims apparent rate {}, not a probability",
                        cert.node, cert.apparent
                    ),
                ));
            }
            if cert.iteration != it.iteration {
                report.push(Diagnostic::error(
                    PASS,
                    format!(
                        "certificate for `{}` carries iteration {} inside iteration {}",
                        cert.node, cert.iteration, it.iteration
                    ),
                ));
            }
            // Abstract-interpretation cross-check: when the run recorded a
            // static interval for the change, the claimed apparent rate
            // must lie inside it — the interval is sound for the same
            // empirical measure the apparent rate was counted under.
            if let (Some(lo), Some(hi)) = (cert.static_lo, cert.static_hi) {
                if lo > hi + tol {
                    report.push(Diagnostic::error(
                        PASS,
                        format!(
                            "certificate for `{}` carries an empty static interval [{lo}, {hi}]",
                            cert.node
                        ),
                    ));
                } else if cert.apparent < lo - tol || cert.apparent > hi + tol {
                    report.push(
                        Diagnostic::error(
                            PASS,
                            format!(
                                "certificate for `{}` claims apparent rate {} outside its static \
                                 interval [{lo}, {hi}]",
                                cert.node, cert.apparent
                            ),
                        )
                        .with_hint(
                            "the abstract interpreter's bound and the measured rate disagree; \
                             one of them (or the log) is wrong",
                        ),
                    );
                }
            }
            apparent_sum += cert.apparent;
        }
        apparent_sum_total += apparent_sum;

        // Theorem-1 triangle chain: the measured rate after the iteration
        // may exceed the rate before it by at most the sum of the claimed
        // apparent rates.
        if let Some(before) = prev_error {
            if it.error_after > before + apparent_sum + tol {
                report.push(
                    Diagnostic::error(
                        PASS,
                        format!(
                            "iteration {}: measured rate {} exceeds chain bound {} + {} (Theorem 1)",
                            it.iteration, it.error_after, before, apparent_sum
                        ),
                    )
                    .with_hint("a certificate under-reports its apparent error rate"),
                );
            }
            // Multi-selection promises before-the-fact feasibility: the
            // knapsack packs scaled apparent weights into the margin, so
            // the claimed sum fits the budget up to integer rounding of
            // half a unit per change (plus one for the capacity floor).
            if log.algorithm == "multi" && !it.certificates.is_empty() {
                let scale = error_rate_scale(log.threshold);
                let rounding = (it.certificates.len() as f64 + 1.0) * 0.5 / scale; // lint:allow(as-cast): counts << 2^52, exact in f64
                if before + apparent_sum > log.threshold + rounding + tol {
                    report.push(
                        Diagnostic::error(
                            PASS,
                            format!(
                                "iteration {}: batch claims {} + {} apparent, over budget {} even \
                                 with knapsack rounding {rounding}",
                                it.iteration, before, apparent_sum, log.threshold
                            ),
                        )
                        .with_hint("the multi-selection knapsack must never over-pack the margin"),
                    );
                }
            }
        }

        // The hard promise of the paper: never exceed the threshold.
        if it.error_after > log.threshold + tol {
            report.push(Diagnostic::error(
                PASS,
                format!(
                    "iteration {}: measured error rate {} exceeds the threshold {}",
                    it.iteration, it.error_after, log.threshold
                ),
            ));
        }
        prev_error = Some(it.error_after);
        if chain_start.is_none() {
            // Without an initial measurement later iterations still chain
            // off the first measured value.
            chain_start = Some(it.error_after);
        }
    }

    match (log.final_error, log.final_iterations) {
        (Some(final_error), Some(final_iterations)) => {
            if final_iterations as usize != log.iterations.len() {
                // lint:allow(as-cast): iteration count << 2^32
                report.push(Diagnostic::error(
                    PASS,
                    format!(
                        "run_end claims {final_iterations} iteration(s) but the log holds {}",
                        log.iterations.len()
                    ),
                ));
            }
            if let Some(last) = prev_error {
                if (final_error - last).abs() > tol {
                    report.push(Diagnostic::error(
                        PASS,
                        format!(
                            "run_end error rate {final_error} disagrees with the last iteration's {last}"
                        ),
                    ));
                }
            }
            if final_error > log.threshold + tol {
                report.push(Diagnostic::error(
                    PASS,
                    format!(
                        "final error rate {final_error} exceeds the threshold {}",
                        log.threshold
                    ),
                ));
            }
            // The final count may be *below* the last iteration's: runs
            // defer function-preserving clean-up (constant propagation)
            // to the end. Growth, though, means the log is inconsistent.
            if let Some(last_literals) = log.iterations.last().map(|i| i.literals_after) {
                if log.final_literals.is_some_and(|f| f > last_literals) {
                    report.push(Diagnostic::error(
                        PASS,
                        format!(
                            "run_end literal count {:?} exceeds the last iteration's {last_literals}",
                            log.final_literals
                        ),
                    ));
                }
            }
        }
        _ => {
            report.push(Diagnostic::warning(
                PASS,
                "no run_end event: the log is truncated, summary checks skipped",
            ));
        }
    }

    if let Some(initial) = log.initial_error {
        let bound = initial + apparent_sum_total;
        report.push(Diagnostic::info(
            PASS,
            format!(
                "Theorem-1 chained bound: initial {initial} + Σ apparent {apparent_sum_total} = {bound} \
                 (threshold {})",
                log.threshold
            ),
        ));
        if let Some(final_error) = log.final_error {
            if final_error > bound + tol {
                report.push(Diagnostic::error(
                    PASS,
                    format!(
                        "final error rate {final_error} exceeds the Theorem-1 chained bound {bound}"
                    ),
                ));
            }
        }
    }

    if let (Some(golden), Some(final_net)) = (golden, final_net) {
        audit_against_networks(log, golden, final_net, config, &mut report);
    }

    report
}

/// The reality checks: rebuild the run's pattern set from the logged seed
/// and measure the final network against the golden one.
fn audit_against_networks(
    log: &CertificateLog,
    golden: &Network,
    final_net: &Network,
    config: &AuditConfig,
    report: &mut AnalysisReport,
) {
    let tol = config.tolerance;
    if golden.num_pis() != final_net.num_pis() || golden.num_pos() != final_net.num_pos() {
        report.push(Diagnostic::error(
            PASS,
            format!(
                "interface mismatch: golden is {}→{}, final is {}→{}",
                golden.num_pis(),
                golden.num_pos(),
                final_net.num_pis(),
                final_net.num_pos()
            ),
        ));
        return;
    }
    if log.num_patterns == 0 {
        return;
    }
    if let Some(final_literals) = log.final_literals {
        let actual = final_net.literal_count() as u64; // lint:allow(as-cast): usize fits u64 on all supported targets
                                                       // Only a warning: BLIF stores SOP covers, not factored forms, so a
                                                       // network that went through a write→parse round-trip can carry a
                                                       // different (re-derived) factored-form literal count than the run
                                                       // reported, with the function — what the certificates are about —
                                                       // unchanged.
        if final_literals != actual {
            report.push(Diagnostic::warning(
                PASS,
                format!(
                    "run_end claims {final_literals} literal(s) but the network has {actual} \
                     (a BLIF round-trip re-derives factored forms; the functional checks below \
                     are unaffected)"
                ),
            ));
        }
    }
    let patterns = PatternSet::random(golden.num_pis(), log.num_patterns, log.seed);
    let real = error_rate(golden, final_net, &patterns);
    if let Some(final_error) = log.final_error {
        // Same seed, same pattern count, same simulator: the re-derived
        // rate must reproduce the claim bit-for-bit (tol only guards the
        // count→ratio division).
        if (real - final_error).abs() > tol {
            report.push(
                Diagnostic::error(
                    PASS,
                    format!(
                        "re-derived error rate {real} (seed {}) disagrees with the claimed {final_error}",
                        log.seed
                    ),
                )
                .with_hint("the log's summary was tampered with or belongs to another run"),
            );
        }
    }
    if real > log.threshold + tol {
        report.push(Diagnostic::error(
            PASS,
            format!(
                "re-derived error rate {real} exceeds the threshold {}",
                log.threshold
            ),
        ));
    }
    // Exhaustive confirmation where tractable. A sampled run may legally
    // exceed the threshold on the full input space, so this is a warning
    // (the paper's guarantee is over the sampled patterns), not an error.
    match config.engine {
        CheckEngine::Bdd => run_bdd_exact(report, golden, final_net, log, config, tol),
        CheckEngine::Sat => run_sat_exact(report, golden, final_net, log, config, tol),
        CheckEngine::Auto => {
            match als_bdd::exact_error_rate(golden, final_net, config.exact_bdd_node_limit) {
                Ok(exact) => push_exact_rate(report, "bdd", golden.num_pis(), exact, log, tol),
                Err(als_bdd::BddError::NodeLimit { limit }) => {
                    report.push(Diagnostic::info(
                        PASS,
                        format!("BDD node limit {limit} exceeded; falling back to the SAT engine"),
                    ));
                    run_sat_exact(report, golden, final_net, log, config, tol);
                }
                Err(e) => {
                    report.push(Diagnostic::info(
                        PASS,
                        format!("exact error rate not derived: {e:?}"),
                    ));
                }
            }
        }
    }
}

/// The BDD exact-rate path of [`audit_against_networks`].
fn run_bdd_exact(
    report: &mut AnalysisReport,
    golden: &Network,
    final_net: &Network,
    log: &CertificateLog,
    config: &AuditConfig,
    tol: f64,
) {
    match als_bdd::exact_error_rate(golden, final_net, config.exact_bdd_node_limit) {
        Ok(exact) => push_exact_rate(report, "bdd", golden.num_pis(), exact, log, tol),
        Err(e) => {
            report.push(Diagnostic::info(
                PASS,
                format!("exact error rate not derived: {e:?}"),
            ));
        }
    }
}

/// The #SAT exact-rate path of [`audit_against_networks`]. The claimed
/// threshold doubles as the enumeration's early-cutoff bound: a truncated
/// result is a sound lower bound already above it.
fn run_sat_exact(
    report: &mut AnalysisReport,
    golden: &Network,
    final_net: &Network,
    log: &CertificateLog,
    config: &AuditConfig,
    tol: f64,
) {
    match exact_error_rate_sat(
        golden,
        final_net,
        config.sat_cube_limit,
        Some(log.threshold),
    ) {
        Ok(SatErrorRate {
            rate,
            cubes,
            truncated: true,
            ..
        }) => {
            report.push(Diagnostic::warning(
                PASS,
                format!(
                    "exact error rate is at least {rate} — above the sampled threshold {} \
                     (enumeration cut off after {cubes} disjoint cube(s); sampling gap, \
                     not a certificate violation)",
                    log.threshold
                ),
            ));
        }
        Ok(SatErrorRate { rate, cubes, .. }) => {
            report.push(Diagnostic::info(
                PASS,
                format!("derived from {cubes} disjoint error cube(s) (sat engine)"),
            ));
            push_exact_rate(report, "sat", golden.num_pis(), rate, log, tol);
        }
        Err(e) => {
            report.push(Diagnostic::info(
                PASS,
                format!("exact error rate not derived: {e:?}"),
            ));
        }
    }
}

/// Reports a derived exact rate and flags a threshold overshoot — a
/// warning, not an error: the paper's guarantee is over the sampled
/// patterns, so a full-space overshoot is a sampling gap.
fn push_exact_rate(
    report: &mut AnalysisReport,
    engine: &str,
    num_pis: usize,
    exact: f64,
    log: &CertificateLog,
    tol: f64,
) {
    report.push(Diagnostic::info(
        PASS,
        format!("exact error rate over all 2^{num_pis} vectors: {exact} ({engine})"),
    ));
    if exact > log.threshold + tol {
        report.push(Diagnostic::warning(
            PASS,
            format!(
                "exact error rate {exact} exceeds the sampled threshold {} \
                 (sampling gap, not a certificate violation)",
                log.threshold
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::{ApproxCertificate, IterationCert};

    fn cert(iteration: u64, apparent: f64) -> ApproxCertificate {
        ApproxCertificate {
            iteration,
            node: format!("n{iteration}"),
            ase: "drop x0".into(),
            literals_saved: 1,
            apparent,
            static_lo: None,
            static_hi: None,
        }
    }

    fn log_with(iterations: Vec<IterationCert>, final_error: f64) -> CertificateLog {
        CertificateLog {
            algorithm: "single".into(),
            num_patterns: 1024,
            threshold: 0.05,
            seed: 1,
            initial_error: Some(0.0),
            final_iterations: Some(iterations.len() as u64),
            final_literals: iterations.last().map(|i| i.literals_after),
            final_error: Some(final_error),
            iterations,
        }
    }

    #[test]
    fn consistent_log_audits_clean() {
        let log = log_with(
            vec![
                IterationCert {
                    iteration: 1,
                    changes: 1,
                    literals_after: 20,
                    error_after: 0.01,
                    certificates: vec![cert(1, 0.01)],
                },
                IterationCert {
                    iteration: 2,
                    changes: 1,
                    literals_after: 18,
                    error_after: 0.03,
                    certificates: vec![cert(2, 0.02)],
                },
            ],
            0.03,
        );
        let report = audit_certificates(&log, None, None, &AuditConfig::default());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn under_reported_apparent_breaks_the_chain() {
        // The measured rate jumped by 0.03 but the certificate only
        // admits 0.001 — a deflated (tampered) claim.
        let log = log_with(
            vec![IterationCert {
                iteration: 1,
                changes: 1,
                literals_after: 20,
                error_after: 0.03,
                certificates: vec![cert(1, 0.001)],
            }],
            0.03,
        );
        let report = audit_certificates(&log, None, None, &AuditConfig::default());
        assert!(
            report.errors().any(|d| d.message.contains("chain bound")),
            "{report}"
        );
    }

    #[test]
    fn threshold_overshoot_is_flagged() {
        let log = log_with(
            vec![IterationCert {
                iteration: 1,
                changes: 1,
                literals_after: 20,
                error_after: 0.09,
                certificates: vec![cert(1, 0.09)],
            }],
            0.09,
        );
        let report = audit_certificates(&log, None, None, &AuditConfig::default());
        assert!(
            report
                .errors()
                .any(|d| d.message.contains("exceeds the threshold")),
            "{report}"
        );
    }

    #[test]
    fn summary_disagreement_is_flagged() {
        let mut log = log_with(
            vec![IterationCert {
                iteration: 1,
                changes: 1,
                literals_after: 20,
                error_after: 0.01,
                certificates: vec![cert(1, 0.01)],
            }],
            0.01,
        );
        log.final_error = Some(0.0); // tampered summary
        let report = audit_certificates(&log, None, None, &AuditConfig::default());
        assert!(
            report
                .errors()
                .any(|d| d.message.contains("disagrees with the last iteration")),
            "{report}"
        );
    }

    #[test]
    fn apparent_rate_outside_static_interval_is_flagged() {
        let mut c = cert(1, 0.03);
        c.static_lo = Some(0.001);
        c.static_hi = Some(0.002); // claimed 0.03 cannot be in [0.001, 0.002]
        let log = log_with(
            vec![IterationCert {
                iteration: 1,
                changes: 1,
                literals_after: 20,
                error_after: 0.03,
                certificates: vec![c],
            }],
            0.03,
        );
        let report = audit_certificates(&log, None, None, &AuditConfig::default());
        assert!(
            report
                .errors()
                .any(|d| d.message.contains("outside its static interval")),
            "{report}"
        );
    }

    #[test]
    fn apparent_rate_inside_static_interval_audits_clean() {
        let mut c = cert(1, 0.01);
        c.static_lo = Some(0.005);
        c.static_hi = Some(0.02);
        let log = log_with(
            vec![IterationCert {
                iteration: 1,
                changes: 1,
                literals_after: 20,
                error_after: 0.01,
                certificates: vec![c],
            }],
            0.01,
        );
        let report = audit_certificates(&log, None, None, &AuditConfig::default());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn empty_static_interval_is_flagged() {
        let mut c = cert(1, 0.01);
        c.static_lo = Some(0.02);
        c.static_hi = Some(0.01); // lo > hi: no sound analysis emits this
        let log = log_with(
            vec![IterationCert {
                iteration: 1,
                changes: 1,
                literals_after: 20,
                error_after: 0.01,
                certificates: vec![c],
            }],
            0.01,
        );
        let report = audit_certificates(&log, None, None, &AuditConfig::default());
        assert!(
            report
                .errors()
                .any(|d| d.message.contains("empty static interval")),
            "{report}"
        );
    }

    #[test]
    fn multi_batch_over_budget_is_flagged() {
        let mut log = log_with(
            vec![IterationCert {
                iteration: 1,
                changes: 2,
                literals_after: 20,
                error_after: 0.04,
                // Claimed Σ apparent = 0.09 > threshold 0.05: no honest
                // knapsack could have packed this batch.
                certificates: vec![cert(1, 0.05), cert(1, 0.04)],
            }],
            0.04,
        );
        log.algorithm = "multi".into();
        let report = audit_certificates(&log, None, None, &AuditConfig::default());
        assert!(
            report.errors().any(|d| d.message.contains("over budget")),
            "{report}"
        );
    }

    #[test]
    fn real_network_rederivation_catches_a_tampered_summary() {
        use als_logic::{Cover, Cube};
        // golden: y = a·b; "approximate": y = a (error rate = P(a=1,b=0)).
        let mut golden = Network::new("g");
        let a = golden.add_pi("a");
        let b = golden.add_pi("b");
        let g = golden.add_node(
            "g",
            vec![a, b],
            Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
        );
        golden.add_po("y", g);
        let mut approx = Network::new("g");
        let a2 = approx.add_pi("a");
        let _b2 = approx.add_pi("b");
        approx.add_po("y", a2);

        let patterns = PatternSet::random(2, 512, 9);
        let real = error_rate(&golden, &approx, &patterns);
        assert!(real > 0.1, "a·b vs a must disagree often, got {real}");

        let mut log = log_with(
            vec![IterationCert {
                iteration: 1,
                changes: 1,
                literals_after: approx.literal_count() as u64,
                error_after: real,
                certificates: vec![cert(1, real)],
            }],
            real,
        );
        log.threshold = 0.5;
        log.num_patterns = 512;
        log.seed = 9;
        let clean = audit_certificates(&log, Some(&golden), Some(&approx), &AuditConfig::default());
        assert!(clean.is_clean(), "{clean}");

        // Tamper: claim a rosier final rate than reality.
        log.final_error = Some(real / 2.0);
        log.iterations[0].error_after = real / 2.0;
        let report =
            audit_certificates(&log, Some(&golden), Some(&approx), &AuditConfig::default());
        assert!(
            report
                .errors()
                .any(|d| d.message.contains("re-derived error rate")),
            "{report}"
        );
    }

    /// golden y = a·b vs approx y = a (exact error rate 1/4), plus a
    /// self-consistent log for that run.
    fn audited_pair() -> (Network, Network, CertificateLog) {
        use als_logic::{Cover, Cube};
        let mut golden = Network::new("g");
        let a = golden.add_pi("a");
        let b = golden.add_pi("b");
        let g = golden.add_node(
            "g",
            vec![a, b],
            Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
        );
        golden.add_po("y", g);
        let mut approx = Network::new("g");
        let a2 = approx.add_pi("a");
        let _b2 = approx.add_pi("b");
        approx.add_po("y", a2);

        let patterns = PatternSet::random(2, 512, 9);
        let real = error_rate(&golden, &approx, &patterns);
        let mut log = log_with(
            vec![IterationCert {
                iteration: 1,
                changes: 1,
                literals_after: approx.literal_count() as u64, // lint:allow(as-cast): tiny test network
                error_after: real,
                certificates: vec![cert(1, real)],
            }],
            real,
        );
        log.threshold = 0.5;
        log.num_patterns = 512;
        log.seed = 9;
        (golden, approx, log)
    }

    #[test]
    fn sat_engine_rederives_the_exact_rate() {
        let (golden, approx, log) = audited_pair();
        let config = AuditConfig {
            engine: CheckEngine::Sat,
            ..AuditConfig::default()
        };
        let report = audit_certificates(&log, Some(&golden), Some(&approx), &config);
        assert!(report.is_clean(), "{report}");
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.message.contains("vectors: 0.25 (sat)")),
            "the SAT engine must derive the exact 1/4 rate:\n{report}"
        );
    }

    #[test]
    fn auto_engine_falls_back_to_sat_under_a_tiny_bdd_limit() {
        let (golden, approx, log) = audited_pair();
        let config = AuditConfig {
            engine: CheckEngine::Auto,
            exact_bdd_node_limit: 1, // artificially BDD-hostile
            ..AuditConfig::default()
        };
        let report = audit_certificates(&log, Some(&golden), Some(&approx), &config);
        assert!(report.is_clean(), "{report}");
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.message.contains("falling back to the SAT engine")),
            "{report}"
        );
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.message.contains("vectors: 0.25 (sat)")),
            "the run must still be certified exactly, by SAT:\n{report}"
        );
    }

    #[test]
    fn auto_engine_prefers_bdd_when_it_fits() {
        let (golden, approx, log) = audited_pair();
        let config = AuditConfig {
            engine: CheckEngine::Auto,
            ..AuditConfig::default()
        };
        let report = audit_certificates(&log, Some(&golden), Some(&approx), &config);
        assert!(report.is_clean(), "{report}");
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.message.contains("vectors: 0.25 (bdd)")),
            "{report}"
        );
    }
}
