//! Parsing a telemetry JSONL event log into an auditable certificate
//! chain.
//!
//! Schema v2 (see `als_telemetry::EVENT_LOG_SCHEMA_VERSION`) makes a run
//! log self-contained for auditing: `run_start` carries the pattern-set
//! seed, and every accepted change emits a `change_committed` line — the
//! [`ApproxCertificate`] — with the claimed apparent error rate (§3.2),
//! which is exactly the summand of the paper's Theorem 1.

use als_telemetry::{Json, EVENT_LOG_SCHEMA_VERSION};
use std::fmt;

/// One accepted change's claim: deleting `ase` from `node` saved
/// `literals_saved` literals at an apparent error rate of `apparent`.
#[derive(Clone, Debug, PartialEq)]
pub struct ApproxCertificate {
    /// The iteration that committed the change.
    pub iteration: u64,
    /// The rewritten node (or a substitution description for SASIMI).
    pub node: String,
    /// The approximate simplification entry (which literals were deleted).
    pub ase: String,
    /// Claimed factored-form literals saved.
    pub literals_saved: u64,
    /// Claimed apparent error rate (§3.2) — the Theorem-1 summand.
    pub apparent: f64,
    /// Static lower bound on the apparent rate from the abstract
    /// interpreter, when the run had pruning enabled (`als-absint`).
    pub static_lo: Option<f64>,
    /// Static upper bound on the apparent rate, when recorded.
    pub static_hi: Option<f64>,
}

/// One iteration's worth of certificates plus the measured state after it.
#[derive(Clone, Debug, PartialEq)]
pub struct IterationCert {
    /// Iteration number (1-based).
    pub iteration: u64,
    /// Changes the iteration claimed to commit.
    pub changes: u64,
    /// Factored-form literal count after the iteration.
    pub literals_after: u64,
    /// Measured error rate against the golden network after the iteration.
    pub error_after: f64,
    /// The per-change certificates committed this iteration.
    pub certificates: Vec<ApproxCertificate>,
}

/// A parsed run log: header, per-iteration certificates, and the summary.
#[derive(Clone, Debug, PartialEq)]
pub struct CertificateLog {
    /// Algorithm name from `run_start` (`single`, `multi`, `sasimi`).
    pub algorithm: String,
    /// Simulation pattern count used for every measurement in the run.
    pub num_patterns: usize,
    /// Error-rate threshold the run was asked to respect.
    pub threshold: f64,
    /// Pattern-set seed; with `num_patterns` and the golden network's PI
    /// count this reconstructs the exact pattern set.
    pub seed: u64,
    /// First measured error rate (after the function-preserving
    /// pre-simplification, before any approximation).
    pub initial_error: Option<f64>,
    /// Every iteration that committed at least one change, in order.
    pub iterations: Vec<IterationCert>,
    /// Final error rate from `run_end`.
    pub final_error: Option<f64>,
    /// Final literal count from `run_end`.
    pub final_literals: Option<u64>,
    /// Iteration count from `run_end`.
    pub final_iterations: Option<u64>,
}

/// Why a log could not be parsed into a certificate chain.
#[derive(Clone, Debug, PartialEq)]
pub struct CertificateError {
    /// 1-based line number of the offending JSONL line (0 for whole-log
    /// problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "certificate log: {}", self.message)
        } else {
            write!(f, "certificate log line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for CertificateError {}

fn err(line: usize, message: impl Into<String>) -> CertificateError {
    CertificateError {
        line,
        message: message.into(),
    }
}

/// Pulls a required field out of an event object.
fn field<'a>(obj: &'a Json, key: &str, line: usize) -> Result<&'a Json, CertificateError> {
    obj.get(key)
        .ok_or_else(|| err(line, format!("event is missing field `{key}`")))
}

fn as_f64(obj: &Json, key: &str, line: usize) -> Result<f64, CertificateError> {
    field(obj, key, line)?
        .as_f64()
        .ok_or_else(|| err(line, format!("field `{key}` is not a number")))
}

fn as_u64(obj: &Json, key: &str, line: usize) -> Result<u64, CertificateError> {
    field(obj, key, line)?
        .as_u64()
        .ok_or_else(|| err(line, format!("field `{key}` is not an unsigned integer")))
}

/// An optional numeric field: absent keys are `None`, present keys must
/// still be numbers.
fn opt_f64(obj: &Json, key: &str, line: usize) -> Result<Option<f64>, CertificateError> {
    obj.get(key)
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| err(line, format!("field `{key}` is not a number")))
        })
        .transpose()
}

fn as_str(obj: &Json, key: &str, line: usize) -> Result<String, CertificateError> {
    Ok(field(obj, key, line)?
        .as_str()
        .ok_or_else(|| err(line, format!("field `{key}` is not a string")))?
        .to_string())
}

impl CertificateLog {
    /// Parses a current-schema JSONL event log (the format `--events`
    /// writes; see `EVENT_LOG_SCHEMA_VERSION`).
    ///
    /// # Errors
    ///
    /// Returns a [`CertificateError`] on malformed JSON, a missing or
    /// pre-v2 schema version, more than one `run_start`, out-of-order
    /// sequence numbers, or `change_committed` lines not closed by an
    /// `iteration_end` (a truncated log).
    pub fn from_jsonl(text: &str) -> Result<Self, CertificateError> {
        let mut log: Option<CertificateLog> = None;
        let mut pending: Vec<ApproxCertificate> = Vec::new();
        let mut last_seq: Option<u64> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let json = Json::parse(raw).map_err(|e| err(line, format!("bad JSON: {e}")))?;
            let version = as_u64(&json, "v", line)?;
            if version != EVENT_LOG_SCHEMA_VERSION {
                return Err(err(
                    line,
                    format!(
                        "schema version {version} is not auditable (need v{EVENT_LOG_SCHEMA_VERSION}: \
                         seed in run_start + change_committed certificates)"
                    ),
                ));
            }
            let seq = as_u64(&json, "seq", line)?;
            if last_seq.is_some_and(|prev| seq <= prev) {
                return Err(err(
                    line,
                    format!("sequence number {seq} is not increasing"),
                ));
            }
            last_seq = Some(seq);
            match as_str(&json, "event", line)?.as_str() {
                "run_start" => {
                    if log.is_some() {
                        return Err(err(line, "second run_start: one log must hold one run"));
                    }
                    log = Some(CertificateLog {
                        algorithm: as_str(&json, "algorithm", line)?,
                        num_patterns: as_u64(&json, "num_patterns", line)? as usize, // lint:allow(as-cast): pattern count << 2^32
                        threshold: as_f64(&json, "threshold", line)?,
                        seed: as_u64(&json, "seed", line)?,
                        initial_error: None,
                        iterations: Vec::new(),
                        final_error: None,
                        final_literals: None,
                        final_iterations: None,
                    });
                }
                "measured" => {
                    let log = log
                        .as_mut()
                        .ok_or_else(|| err(line, "measured before run_start"))?;
                    let rate = as_f64(&json, "error_rate", line)?;
                    if log.initial_error.is_none() && log.iterations.is_empty() {
                        log.initial_error = Some(rate);
                    }
                }
                "change_committed" => {
                    if log.is_none() {
                        return Err(err(line, "change_committed before run_start"));
                    }
                    pending.push(ApproxCertificate {
                        iteration: as_u64(&json, "iteration", line)?,
                        node: as_str(&json, "node", line)?,
                        ase: as_str(&json, "ase", line)?,
                        literals_saved: as_u64(&json, "literals_saved", line)?,
                        apparent: as_f64(&json, "apparent", line)?,
                        static_lo: opt_f64(&json, "static_lo", line)?,
                        static_hi: opt_f64(&json, "static_hi", line)?,
                    });
                }
                "iteration_end" => {
                    let log = log
                        .as_mut()
                        .ok_or_else(|| err(line, "iteration_end before run_start"))?;
                    log.iterations.push(IterationCert {
                        iteration: as_u64(&json, "iteration", line)?,
                        changes: as_u64(&json, "changes", line)?,
                        literals_after: as_u64(&json, "literals", line)?,
                        error_after: as_f64(&json, "error_rate", line)?,
                        certificates: std::mem::take(&mut pending),
                    });
                }
                "run_end" => {
                    let log = log
                        .as_mut()
                        .ok_or_else(|| err(line, "run_end before run_start"))?;
                    log.final_iterations = Some(as_u64(&json, "iterations", line)?);
                    log.final_literals = Some(as_u64(&json, "literals", line)?);
                    log.final_error = Some(as_f64(&json, "error_rate", line)?);
                }
                // Phase timings, candidate statistics, … — not audit data.
                _ => {}
            }
        }
        if !pending.is_empty() {
            return Err(err(
                0,
                format!(
                    "{} change_committed line(s) without a closing iteration_end (truncated log?)",
                    pending.len()
                ),
            ));
        }
        log.ok_or_else(|| err(0, "no run_start event found"))
    }

    /// All certificates across every iteration, in commit order.
    pub fn all_certificates(&self) -> impl Iterator<Item = &ApproxCertificate> {
        self.iterations.iter().flat_map(|i| i.certificates.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The fixture tracks the live schema version so a bump (new event
    // kinds) doesn't invalidate it; version-rejection is tested by
    // substituting a pre-v2 version below.
    fn sample_log() -> String {
        let v = EVENT_LOG_SCHEMA_VERSION;
        [
            format!(r#"{{"event":"run_start","algorithm":"single","threads":1,"num_patterns":64,"nodes":3,"threshold":0.05,"seed":7,"v":{v},"seq":0}}"#),
            format!(r#"{{"event":"measured","error_rate":0.0,"nanos":5,"v":{v},"seq":1}}"#),
            format!(r#"{{"event":"change_committed","iteration":1,"node":"g5","ase":"drop x1","literals_saved":2,"apparent":0.015625,"v":{v},"seq":2}}"#),
            format!(r#"{{"event":"iteration_end","iteration":1,"changes":1,"literals":10,"error_rate":0.015625,"nanos":12,"v":{v},"seq":3}}"#),
            format!(r#"{{"event":"run_end","iterations":1,"literals":10,"error_rate":0.015625,"nanos":99,"v":{v},"seq":4}}"#),
        ]
        .join("\n")
    }

    #[test]
    fn parses_a_complete_run() {
        let log = CertificateLog::from_jsonl(&sample_log()).unwrap();
        assert_eq!(log.algorithm, "single");
        assert_eq!(log.seed, 7);
        assert_eq!(log.initial_error, Some(0.0));
        assert_eq!(log.iterations.len(), 1);
        assert_eq!(log.iterations[0].certificates.len(), 1);
        assert_eq!(log.iterations[0].certificates[0].node, "g5");
        assert_eq!(log.iterations[0].certificates[0].static_lo, None);
        assert_eq!(log.iterations[0].certificates[0].static_hi, None);
        assert_eq!(log.final_literals, Some(10));
        assert_eq!(log.all_certificates().count(), 1);
    }

    #[test]
    fn parses_optional_static_bounds() {
        let text = sample_log().replace(
            r#""apparent":0.015625,"#,
            r#""apparent":0.015625,"static_lo":0.01,"static_hi":0.02,"#,
        );
        let log = CertificateLog::from_jsonl(&text).unwrap();
        let cert = &log.iterations[0].certificates[0];
        assert_eq!(cert.static_lo, Some(0.01));
        assert_eq!(cert.static_hi, Some(0.02));
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let text = sample_log().replace(&format!("\"v\":{EVENT_LOG_SCHEMA_VERSION}"), "\"v\":1");
        let e = CertificateLog::from_jsonl(&text).unwrap_err();
        assert!(e.message.contains("schema version"), "{e}");
    }

    #[test]
    fn rejects_truncation_after_a_commit() {
        let full = sample_log();
        let truncated: Vec<&str> = full.lines().take(3).collect();
        let e = CertificateLog::from_jsonl(&truncated.join("\n")).unwrap_err();
        assert!(e.message.contains("truncated"), "{e}");
    }

    #[test]
    fn rejects_non_monotonic_sequence_numbers() {
        let text = sample_log().replace("\"seq\":3", "\"seq\":1");
        let e = CertificateLog::from_jsonl(&text).unwrap_err();
        assert!(e.message.contains("not increasing"), "{e}");
    }

    #[test]
    fn rejects_bad_json_with_line_number() {
        let text = format!("{}\nnot json\n", sample_log());
        let e = CertificateLog::from_jsonl(&text).unwrap_err();
        assert_eq!(e.line, 6);
    }
}
