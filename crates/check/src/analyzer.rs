//! The structural/functional network analyzer.
//!
//! Unlike [`Network::check`](als_network::Network::check) (a fast internal
//! consistency assert used by the synthesis loops) the analyzer is built
//! for *hostile* inputs: it never panics, it keeps going after the first
//! finding, and it reports everything it sees as [`Diagnostic`]s. Passes
//! that need a structurally sound network (simulation, BDD construction)
//! are automatically skipped when an earlier structural pass found errors,
//! with an info line saying so.

use crate::diagnostic::{AnalysisReport, Diagnostic};
use als_absint::{signal_probabilities_seeded, Interval, Policy};
use als_bdd::{Bdd, BddError, BddManager};
use als_dontcare::{compute_dont_cares, encode_node_cnf, DontCareConfig};
use als_logic::Expr;
use als_network::{Network, NodeId, NodeKind};
use als_sat::{Lit, SatResult, Solver, Var};
use als_sim::{local_pattern_counts, simulate, PatternSet, MAX_LOCAL_FANINS};
use std::collections::HashMap;

/// One analyzer pass. Order in [`AnalyzerConfig::passes`] is respected,
/// but functional passes silently degrade to a skip note when structural
/// passes (run or not) would have failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Every fanin is live and distinct; cover/expr arity matches the
    /// fanin count; PO drivers and PIs are live.
    References,
    /// The fanin relation is acyclic (independent Kahn traversal — does
    /// not trust [`Network::topo_order`], which panics on cycles).
    Acyclicity,
    /// [`Network::topo_order`] visits every live node exactly once with
    /// fanins before fanouts (validates the production traversal against
    /// the analyzer's independent one).
    TopoOrder,
    /// The SOP cover and the factored-form expression of every internal
    /// node compute the same local function (truth tables up to
    /// [`AnalyzerConfig::tt_var_limit`] inputs, BDDs above).
    SopEquivalence,
    /// Sampled don't-care soundness: a local input pattern observed under
    /// simulation must never be classified as a satisfiability don't-care.
    DontCareSoundness,
    /// Abstract-interpretation containment: propagate sample-sound signal
    /// probability intervals (see [`als_absint`]) from the empirical
    /// primary-input frequencies of a random pattern set; every node's
    /// simulated frequency must then fall inside its static interval. A
    /// violation proves an unsound transfer function.
    ErrorBound,
    /// SAT sweeping: candidate equivalent (or complementary) internal-node
    /// pairs from random-simulation signatures, each confirmed by an
    /// incremental miter query against one shared solver. Proven pairs are
    /// reported as info diagnostics — redundancy is a missed optimization,
    /// not an error.
    SatSweep,
}

impl Pass {
    /// The stable pass name used in [`Diagnostic::pass`].
    pub fn name(self) -> &'static str {
        match self {
            Pass::References => "references",
            Pass::Acyclicity => "acyclicity",
            Pass::TopoOrder => "topo_order",
            Pass::SopEquivalence => "sop_equivalence",
            Pass::DontCareSoundness => "dont_care_soundness",
            Pass::ErrorBound => "error_bound",
            Pass::SatSweep => "sat_sweep",
        }
    }
}

/// Analyzer knobs.
#[derive(Clone, Debug)]
pub struct AnalyzerConfig {
    /// Which passes to run, in order.
    pub passes: Vec<Pass>,
    /// SOP ↔ expr equivalence uses truth tables up to this many node
    /// fanins and BDDs beyond it.
    pub tt_var_limit: usize,
    /// Node budget for each per-node equivalence BDD; exceeding it
    /// degrades the finding to a [`Severity::Warning`](crate::Severity::Warning).
    pub bdd_node_limit: usize,
    /// How many internal nodes the don't-care soundness pass samples
    /// (spread evenly over the arena in id order).
    pub dc_sample_nodes: usize,
    /// How many random patterns the don't-care soundness pass simulates.
    pub dc_patterns: usize,
    /// Seed for the soundness pass's pattern set.
    pub dc_seed: u64,
    /// How many random patterns the error-bound containment pass
    /// simulates.
    pub eb_patterns: usize,
    /// Seed for the error-bound pass's pattern set.
    pub eb_seed: u64,
    /// How many random patterns the SAT-sweeping pass uses to bucket
    /// candidate-equivalent signals.
    pub sweep_patterns: usize,
    /// Seed for the SAT-sweeping pass's pattern set.
    pub sweep_seed: u64,
    /// Budget of SAT-confirmed candidate pairs for one sweep; buckets
    /// beyond it are skipped with an info note.
    pub sweep_max_pairs: usize,
}

impl AnalyzerConfig {
    /// Structural passes only — cheap enough to run after every BLIF
    /// parse (`als approximate` does exactly that).
    pub fn fast() -> Self {
        Self {
            passes: vec![Pass::References, Pass::Acyclicity, Pass::TopoOrder],
            ..Self::full()
        }
    }

    /// Every pass, including the functional and don't-care ones.
    pub fn full() -> Self {
        Self {
            passes: vec![
                Pass::References,
                Pass::Acyclicity,
                Pass::TopoOrder,
                Pass::SopEquivalence,
                Pass::DontCareSoundness,
                Pass::ErrorBound,
                Pass::SatSweep,
            ],
            tt_var_limit: 12,
            bdd_node_limit: 1 << 20,
            dc_sample_nodes: 64,
            dc_patterns: 2048,
            dc_seed: 0xA15C_4EC4,
            eb_patterns: 2048,
            eb_seed: 0xAB5_1407,
            sweep_patterns: 1024,
            sweep_seed: 0x5A75_33EE,
            sweep_max_pairs: 64,
        }
    }
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// Runs a configurable pass list over a network and collects diagnostics.
#[derive(Clone, Debug)]
pub struct NetworkAnalyzer {
    config: AnalyzerConfig,
}

impl NetworkAnalyzer {
    /// A new analyzer with the given configuration.
    pub fn new(config: AnalyzerConfig) -> Self {
        Self { config }
    }

    /// Runs every configured pass. Never panics; findings (including
    /// "pass skipped" notes) land in the returned report.
    pub fn analyze(&self, net: &Network) -> AnalysisReport {
        let mut report = AnalysisReport::new();
        // Functional passes walk fanins and simulate, which is only safe
        // on a structurally sound network. Pre-compute soundness once,
        // whether or not the structural passes were requested.
        let structural_errors = {
            let mut probe = AnalysisReport::new();
            check_references(net, &mut probe);
            check_acyclicity(net, &mut probe);
            !probe.is_clean()
        };
        for &pass in &self.config.passes {
            match pass {
                Pass::References => check_references(net, &mut report),
                Pass::Acyclicity => check_acyclicity(net, &mut report),
                Pass::TopoOrder => {
                    if structural_errors {
                        report.push(skip_note(pass));
                    } else {
                        check_topo_order(net, &mut report);
                    }
                }
                Pass::SopEquivalence => {
                    if structural_errors {
                        report.push(skip_note(pass));
                    } else {
                        check_sop_equivalence(net, &self.config, &mut report);
                    }
                }
                Pass::DontCareSoundness => {
                    if structural_errors {
                        report.push(skip_note(pass));
                    } else {
                        check_dont_care_soundness(net, &self.config, &mut report);
                    }
                }
                Pass::ErrorBound => {
                    if structural_errors {
                        report.push(skip_note(pass));
                    } else {
                        check_error_bound(net, &self.config, &mut report);
                    }
                }
                Pass::SatSweep => {
                    if structural_errors {
                        report.push(skip_note(pass));
                    } else {
                        check_sat_sweep(net, &self.config, &mut report);
                    }
                }
            }
        }
        report.dedupe();
        report
    }
}

fn skip_note(pass: Pass) -> Diagnostic {
    Diagnostic::info(
        pass.name(),
        "skipped: structural errors make this pass unsafe to run",
    )
}

fn named(net: &Network, id: NodeId) -> Option<String> {
    net.try_node(id).ok().map(|n| n.name().to_string())
}

/// References pass: liveness, duplicates, arity agreement.
fn check_references(net: &Network, report: &mut AnalysisReport) {
    const PASS: &str = "references";
    for id in net.internal_ids() {
        let Ok(node) = net.try_node(id) else { continue };
        let fanins = node.fanins();
        let k = fanins.len();
        for (pos, &f) in fanins.iter().enumerate() {
            if !net.is_live(f) {
                report.push(
                    Diagnostic::error(PASS, format!("fanin {pos} ({f}) is dead or out of range"))
                        .with_node(id, named(net, id))
                        .with_hint(
                            "rebuild the fanin list; a swept or never-created node is referenced",
                        ),
                );
            } else if fanins[..pos].contains(&f) {
                report.push(
                    Diagnostic::error(PASS, format!("fanin {f} appears more than once"))
                        .with_node(id, named(net, id))
                        .with_hint("merge the repeated fanin into one cover variable"),
                );
            }
        }
        if node.cover().num_vars() != k {
            report.push(
                Diagnostic::error(
                    PASS,
                    format!(
                        "cover is over {} variable(s) but the node has {k} fanin(s)",
                        node.cover().num_vars()
                    ),
                )
                .with_node(id, named(net, id))
                .with_hint("re-derive the cover or fanin list; use Network::replace_expr"),
            );
        }
        // support_mask is a u64 bitset; k ≥ 64 can't be validated this way.
        if k < 64 && node.expr().support_mask() >> k != 0 {
            report.push(
                Diagnostic::error(
                    PASS,
                    format!("factored form references a variable ≥ the fanin count {k}"),
                )
                .with_node(id, named(net, id)),
            );
        }
    }
    for (name, driver) in net.pos() {
        if !net.is_live(*driver) {
            report.push(Diagnostic::error(
                PASS,
                format!("primary output `{name}` is driven by dead node {driver}"),
            ));
        }
    }
    for &pi in net.pis() {
        if !net.is_live(pi) {
            report.push(Diagnostic::error(
                PASS,
                format!("primary input {pi} is not live"),
            ));
        }
    }
}

/// Acyclicity pass: independent Kahn traversal over live nodes. Dead
/// fanins are skipped here (the references pass reports them) so a single
/// dangling edge doesn't masquerade as a cycle.
fn check_acyclicity(net: &Network, report: &mut AnalysisReport) {
    const PASS: &str = "acyclicity";
    let live: Vec<NodeId> = net.node_ids().collect();
    let mut indegree: HashMap<NodeId, usize> = live.iter().map(|&id| (id, 0)).collect();
    let mut fanouts: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &id in &live {
        let Ok(node) = net.try_node(id) else { continue };
        for &f in node.fanins() {
            if net.is_live(f) {
                *indegree.entry(id).or_insert(0) += 1;
                fanouts.entry(f).or_default().push(id);
            }
        }
    }
    let mut queue: Vec<NodeId> = live
        .iter()
        .copied()
        .filter(|id| indegree.get(id).copied().unwrap_or(0) == 0)
        .collect();
    let mut visited = 0usize;
    while let Some(id) = queue.pop() {
        visited += 1;
        if let Some(outs) = fanouts.get(&id) {
            for &o in &outs.clone() {
                if let Some(d) = indegree.get_mut(&o) {
                    *d -= 1;
                    if *d == 0 {
                        queue.push(o);
                    }
                }
            }
        }
    }
    if visited < live.len() {
        // lint:allow(map-iter): collected then sorted, so map order never leaks out
        let mut stuck: Vec<NodeId> = indegree
            .iter()
            .filter(|&(_, &d)| d > 0)
            .map(|(&id, _)| id)
            .collect();
        stuck.sort();
        let names: Vec<String> = stuck
            .iter()
            .take(8)
            .map(|&id| named(net, id).unwrap_or_else(|| id.to_string()))
            .collect();
        report.push(
            Diagnostic::error(
                PASS,
                format!(
                    "combinational cycle through {} node(s): {}{}",
                    stuck.len(),
                    names.join(", "),
                    if stuck.len() > 8 { ", …" } else { "" }
                ),
            )
            .with_hint("every fanin edge must point strictly backwards in some topological order"),
        );
    }
}

/// Topological-order pass: validates the production traversal against the
/// structural facts. Only called once the network is known acyclic with
/// live references, so `topo_order()` cannot panic.
fn check_topo_order(net: &Network, report: &mut AnalysisReport) {
    const PASS: &str = "topo_order";
    let order = net.topo_order();
    let mut position: HashMap<NodeId, usize> = HashMap::new();
    for (i, &id) in order.iter().enumerate() {
        if position.insert(id, i).is_some() {
            report.push(
                Diagnostic::error(PASS, "node appears more than once in topo_order()")
                    .with_node(id, named(net, id)),
            );
        }
    }
    for id in net.node_ids() {
        if !position.contains_key(&id) {
            report.push(
                Diagnostic::error(PASS, "live node missing from topo_order()")
                    .with_node(id, named(net, id)),
            );
        }
    }
    for &id in &order {
        let Ok(node) = net.try_node(id) else { continue };
        let Some(&here) = position.get(&id) else {
            continue;
        };
        for &f in node.fanins() {
            if position.get(&f).is_some_and(|&fp| fp >= here) {
                report.push(
                    Diagnostic::error(
                        PASS,
                        format!("fanin {f} does not precede its fanout in topo_order()"),
                    )
                    .with_node(id, named(net, id)),
                );
            }
        }
    }
}

/// SOP ↔ factored-form equivalence, truth-table based for small nodes and
/// BDD based above `tt_var_limit`.
fn check_sop_equivalence(net: &Network, config: &AnalyzerConfig, report: &mut AnalysisReport) {
    const PASS: &str = "sop_equivalence";
    for id in net.internal_ids() {
        let Ok(node) = net.try_node(id) else { continue };
        let k = node.fanins().len();
        if node.cover().num_vars() != k {
            continue; // references pass owns this finding
        }
        if k <= config.tt_var_limit {
            if node.expr().to_truth_table(k) != node.cover().to_truth_table() {
                report.push(
                    Diagnostic::error(
                        PASS,
                        "SOP cover and factored form compute different local functions",
                    )
                    .with_node(id, named(net, id))
                    .with_hint("re-factor the cover with Network::replace_expr"),
                );
            }
            continue;
        }
        match bdd_equiv(node.cover(), node.expr(), k, config.bdd_node_limit) {
            Ok(true) => {}
            Ok(false) => {
                report.push(
                    Diagnostic::error(
                        PASS,
                        "SOP cover and factored form compute different local functions (BDD)",
                    )
                    .with_node(id, named(net, id)),
                );
            }
            Err(e) => {
                report.push(
                    Diagnostic::warning(
                        PASS,
                        format!("could not verify SOP/expr equivalence ({k} fanins): {e:?}"),
                    )
                    .with_node(id, named(net, id)),
                );
            }
        }
    }
}

fn bdd_equiv(
    cover: &als_logic::Cover,
    expr: &Expr,
    num_vars: usize,
    node_limit: usize,
) -> Result<bool, BddError> {
    let mut mgr = BddManager::new(num_vars, node_limit);
    let vars: Vec<Bdd> = (0..num_vars)
        .map(|i| mgr.var(i))
        .collect::<Result<_, _>>()?;
    let mut cover_bdd = mgr.zero();
    for cube in cover.cubes() {
        let mut term = mgr.one();
        for (var, phase) in cube.literals() {
            let lit = if phase {
                vars[var]
            } else {
                mgr.not(vars[var])?
            };
            term = mgr.and(term, lit)?;
        }
        cover_bdd = mgr.or(cover_bdd, term)?;
    }
    let expr_bdd = expr_to_bdd(expr, &vars, &mut mgr)?;
    Ok(cover_bdd == expr_bdd)
}

fn expr_to_bdd(expr: &Expr, vars: &[Bdd], mgr: &mut BddManager) -> Result<Bdd, BddError> {
    match expr {
        Expr::Const(false) => Ok(mgr.zero()),
        Expr::Const(true) => Ok(mgr.one()),
        Expr::Lit { var, phase } => {
            let v = vars[*var];
            if *phase {
                Ok(v)
            } else {
                mgr.not(v)
            }
        }
        Expr::And(parts) => {
            let mut acc = mgr.one();
            for p in parts {
                let b = expr_to_bdd(p, vars, mgr)?;
                acc = mgr.and(acc, b)?;
            }
            Ok(acc)
        }
        Expr::Or(parts) => {
            let mut acc = mgr.zero();
            for p in parts {
                let b = expr_to_bdd(p, vars, mgr)?;
                acc = mgr.or(acc, b)?;
            }
            Ok(acc)
        }
    }
}

/// Don't-care soundness: simulate random patterns; any *observed* local
/// input pattern the classifier marks as an SDC is a contradiction — a
/// satisfiability don't-care can never occur, that is its definition
/// (§3.3). ODCs are not audited here (refuting one needs an output-cone
/// argument per pattern, which is a simulation per node — too costly for
/// a lint pass).
fn check_dont_care_soundness(net: &Network, config: &AnalyzerConfig, report: &mut AnalysisReport) {
    const PASS: &str = "dont_care_soundness";
    if net.num_pis() == 0 || net.num_internal() == 0 || config.dc_sample_nodes == 0 {
        return;
    }
    let patterns = PatternSet::random(net.num_pis(), config.dc_patterns.max(1), config.dc_seed);
    let sim = simulate(net, &patterns);
    let candidates: Vec<NodeId> = net
        .internal_ids()
        .filter(|&id| {
            let k = net.node(id).fanins().len();
            (1..=MAX_LOCAL_FANINS).contains(&k)
        })
        .collect();
    if candidates.is_empty() {
        return;
    }
    // Deterministic spread over the arena: a fixed stride instead of the
    // first N ids, so late (output-side) nodes are sampled too.
    let stride = (candidates.len() / config.dc_sample_nodes).max(1);
    let dc_config = DontCareConfig::default();
    for &id in candidates
        .iter()
        .step_by(stride)
        .take(config.dc_sample_nodes)
    {
        let counts = local_pattern_counts(net, &sim, id);
        let dc = compute_dont_cares(net, id, &dc_config);
        for (v, &count) in counts.iter().enumerate() {
            if count > 0 && dc.is_sdc(v) {
                report.push(
                    Diagnostic::error(
                        PASS,
                        format!(
                            "local pattern {v:#x} observed {count} time(s) but classified as a satisfiability don't-care"
                        ),
                    )
                    .with_node(id, named(net, id))
                    .with_hint("the don't-care window computation is unsound for this node"),
                );
            }
        }
    }
}

/// Error-bound containment: seed the abstract interpreter's primary-input
/// intervals with the *empirical* 1-frequencies of a random pattern set,
/// propagate under [`Policy::SampleSound`] (Fréchet everywhere — the only
/// rule sound for the empirical measure), and demand every node's simulated
/// frequency lie inside its static interval. The tolerance only absorbs the
/// count→ratio division; a genuinely unsound transfer overshoots it by
/// orders of magnitude.
fn check_error_bound(net: &Network, config: &AnalyzerConfig, report: &mut AnalysisReport) {
    const PASS: &str = "error_bound";
    const TOL: f64 = 1e-9;
    if net.num_pis() == 0 || net.num_internal() == 0 || config.eb_patterns == 0 {
        return;
    }
    let patterns = PatternSet::random(net.num_pis(), config.eb_patterns.max(1), config.eb_seed);
    let sim = simulate(net, &patterns);
    let seeds: Vec<Interval> = net
        .pis()
        .iter()
        .map(|&pi| Interval::point(sim.probability(pi)))
        .collect();
    let probs = signal_probabilities_seeded(net, Policy::SampleSound, &seeds);
    for id in net.internal_ids() {
        let freq = sim.probability(id);
        let interval = probs.interval(id);
        if !interval.contains_with_tol(freq, TOL) {
            report.push(
                Diagnostic::error(
                    PASS,
                    format!("simulated 1-frequency {freq} escapes the static interval {interval}"),
                )
                .with_node(id, named(net, id))
                .with_hint("a probability transfer function is unsound for this node"),
            );
        }
    }
}

/// SAT sweeping: bucket internal nodes by complement-normalized simulation
/// signature, then confirm each candidate pair with an incremental miter
/// query. One solver serves every query of the sweep: the whole network is
/// encoded once, and the per-pair difference (or agreement) constraint
/// lives in a retractable clause group that is swept after its query.
fn check_sat_sweep(net: &Network, config: &AnalyzerConfig, report: &mut AnalysisReport) {
    const PASS: &str = "sat_sweep";
    if net.num_pis() == 0 || net.num_internal() < 2 || config.sweep_max_pairs == 0 {
        return;
    }
    let patterns = PatternSet::random(
        net.num_pis(),
        config.sweep_patterns.max(1),
        config.sweep_seed,
    );
    let sim = simulate(net, &patterns);

    // Normalize signatures so a node and its complement share a bucket:
    // complement the words when the first pattern's value is 1 (masking
    // the invalid tail bits of the last word back to zero).
    let tail = patterns.tail_mask();
    let mut buckets: HashMap<Vec<u64>, Vec<(NodeId, bool)>> = HashMap::new();
    // First-appearance order of the bucket keys — internal ids ascend, so
    // both the bucket order and each bucket's members are deterministic.
    let mut key_order: Vec<Vec<u64>> = Vec::new();
    for id in net.internal_ids() {
        let words = sim.node_words(id);
        let flip = sim.node_value(id, 0);
        let key: Vec<u64> = if flip {
            let mut k: Vec<u64> = words.iter().map(|w| !w).collect();
            if let Some(last) = k.last_mut() {
                *last &= tail;
            }
            k
        } else {
            words.to_vec()
        };
        let members = buckets.entry(key.clone()).or_default();
        if members.is_empty() {
            key_order.push(key);
        }
        members.push((id, flip));
    }

    // One persistent solver holds the whole network's CNF; the per-pair
    // miter constraint is the only retractable part.
    let mut solver = Solver::new();
    let mut vars: HashMap<NodeId, Var> = HashMap::new();
    for &pi in net.pis() {
        vars.insert(pi, solver.new_var());
    }
    for id in net.topo_order() {
        if net.node(id).kind() != NodeKind::Internal {
            continue;
        }
        let v = solver.new_var();
        encode_node_cnf(&mut solver, net, id, &vars, v);
        vars.insert(id, v);
    }

    let mut budget = config.sweep_max_pairs;
    for key in &key_order {
        let members = &buckets[key];
        if members.len() < 2 {
            continue;
        }
        // Classic sweeping: prove each member against the bucket leader
        // (the lowest-id node), not all-pairs — equivalence is transitive.
        let (leader, leader_flip) = members[0];
        let a = Lit::pos(vars[&leader]);
        for &(node, flip) in &members[1..] {
            if budget == 0 {
                report.push(Diagnostic::info(
                    PASS,
                    format!(
                        "pair budget ({}) exhausted; remaining candidate pairs unchecked",
                        config.sweep_max_pairs
                    ),
                ));
                return;
            }
            budget -= 1;
            let b = Lit::pos(vars[&node]);
            let complemented = flip != leader_flip;
            // Refutation clauses: force a counterexample to the candidate
            // relation — a ≠ b for equivalence, a = b for complement.
            let (c1, c2) = if complemented {
                ([a, !b], [!a, b])
            } else {
                ([a, b], [!a, !b])
            };
            let g = solver.new_group();
            solver.add_clause_in(g, &c1);
            solver.add_clause_in(g, &c2);
            let proven = solver.solve_with_assumptions(&[g.lit()]) == SatResult::Unsat;
            solver.retract(g);
            if proven {
                report.push(
                    Diagnostic::info(
                        PASS,
                        format!(
                            "functionally {} `{}` (SAT-proven over all inputs)",
                            if complemented {
                                "complementary to"
                            } else {
                                "equivalent to"
                            },
                            named(net, leader).unwrap_or_else(|| leader.to_string()),
                        ),
                    )
                    .with_node(node, named(net, node))
                    .with_hint("redundant logic: fanouts could be moved onto one signal"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    fn and_gate() -> (Network, NodeId) {
        let mut net = Network::new("t");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let g = net.add_node(
            "g",
            vec![a, b],
            Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
        );
        net.add_po("y", g);
        (net, g)
    }

    #[test]
    fn clean_network_analyzes_clean() {
        let (net, _) = and_gate();
        let report = NetworkAnalyzer::new(AnalyzerConfig::full()).analyze(&net);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn functional_passes_are_skipped_on_structural_breakage() {
        let (mut net, g) = and_gate();
        als_network::testing::raw_drop_fanin(&mut net, g, 1);
        let report = NetworkAnalyzer::new(AnalyzerConfig::full()).analyze(&net);
        assert!(!report.is_clean());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.pass == "sop_equivalence" && d.message.contains("skipped")));
    }

    #[test]
    fn error_bound_contains_simulated_frequencies_under_reconvergence() {
        // s = a, t = ¬a, u = s·t — the reconvergent shape where a naive
        // independence rule would produce an interval excluding the truth.
        let mut net = Network::new("reconv");
        let a = net.add_pi("a");
        let s = net.add_node(
            "s",
            vec![a],
            Cover::from_cubes(1, [Cube::from_literals(&[(0, true)]).unwrap()]),
        );
        let t = net.add_node(
            "t",
            vec![a],
            Cover::from_cubes(1, [Cube::from_literals(&[(0, false)]).unwrap()]),
        );
        let u = net.add_node(
            "u",
            vec![s, t],
            Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
        );
        net.add_po("u", u);
        let config = AnalyzerConfig {
            passes: vec![Pass::ErrorBound],
            ..AnalyzerConfig::full()
        };
        let report = NetworkAnalyzer::new(config).analyze(&net);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn error_bound_is_skipped_on_structural_breakage() {
        let (mut net, g) = and_gate();
        als_network::testing::raw_drop_fanin(&mut net, g, 1);
        let config = AnalyzerConfig {
            passes: vec![Pass::ErrorBound],
            ..AnalyzerConfig::full()
        };
        let report = NetworkAnalyzer::new(config).analyze(&net);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.pass == "error_bound" && d.message.contains("skipped")));
    }

    #[test]
    fn sat_sweep_proves_equivalent_and_complementary_pairs() {
        // g1 = a·b, g2 = b·a (same function), g3 = ¬(a·b).
        let mut net = Network::new("dup");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let g1 = net.add_node(
            "g1",
            vec![a, b],
            Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
        );
        let g2 = net.add_node(
            "g2",
            vec![b, a],
            Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
        );
        let g3 = net.add_node(
            "g3",
            vec![a, b],
            Cover::from_cubes(
                2,
                [
                    Cube::from_literals(&[(0, false)]).unwrap(),
                    Cube::from_literals(&[(1, false)]).unwrap(),
                ],
            ),
        );
        net.add_po("y1", g1);
        net.add_po("y2", g2);
        net.add_po("y3", g3);
        let config = AnalyzerConfig {
            passes: vec![Pass::SatSweep],
            ..AnalyzerConfig::full()
        };
        let report = NetworkAnalyzer::new(config).analyze(&net);
        assert!(report.is_clean(), "{report}");
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.message.contains("equivalent to `g1`")),
            "{report}"
        );
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.message.contains("complementary to `g1`")),
            "{report}"
        );
    }

    #[test]
    fn sat_sweep_is_silent_on_distinct_functions() {
        // g1 = a·b and g2 = a+b share no signature bucket.
        let mut net = Network::new("distinct");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let g1 = net.add_node(
            "g1",
            vec![a, b],
            Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
        );
        let g2 = net.add_node(
            "g2",
            vec![a, b],
            Cover::from_cubes(
                2,
                [
                    Cube::from_literals(&[(0, true)]).unwrap(),
                    Cube::from_literals(&[(1, true)]).unwrap(),
                ],
            ),
        );
        net.add_po("y1", g1);
        net.add_po("y2", g2);
        let config = AnalyzerConfig {
            passes: vec![Pass::SatSweep],
            ..AnalyzerConfig::full()
        };
        let report = NetworkAnalyzer::new(config).analyze(&net);
        assert!(report.is_clean(), "{report}");
        assert!(
            report.diagnostics.is_empty(),
            "distinct functions must produce no findings:\n{report}"
        );
    }

    #[test]
    fn sat_sweep_respects_the_pair_budget() {
        // Three copies of a·b give two candidate pairs; a budget of one
        // checks the first and reports the exhaustion.
        let mut net = Network::new("budget");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        for i in 0..3 {
            let g = net.add_node(
                format!("g{i}"),
                vec![a, b],
                Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
            );
            net.add_po(format!("y{i}"), g);
        }
        let config = AnalyzerConfig {
            passes: vec![Pass::SatSweep],
            sweep_max_pairs: 1,
            ..AnalyzerConfig::full()
        };
        let report = NetworkAnalyzer::new(config).analyze(&net);
        assert_eq!(
            report
                .diagnostics
                .iter()
                .filter(|d| d.message.contains("equivalent to"))
                .count(),
            1
        );
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.message.contains("pair budget")),
            "{report}"
        );
    }

    #[test]
    fn sat_sweep_is_skipped_on_structural_breakage() {
        let (mut net, g) = and_gate();
        als_network::testing::raw_drop_fanin(&mut net, g, 1);
        let config = AnalyzerConfig {
            passes: vec![Pass::SatSweep],
            ..AnalyzerConfig::full()
        };
        let report = NetworkAnalyzer::new(config).analyze(&net);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.pass == "sat_sweep" && d.message.contains("skipped")));
    }

    #[test]
    fn expr_bdd_translation_matches_truth_tables() {
        // x0·x1 + x2' over 3 vars.
        let expr = Expr::Or(vec![
            Expr::And(vec![
                Expr::Lit {
                    var: 0,
                    phase: true,
                },
                Expr::Lit {
                    var: 1,
                    phase: true,
                },
            ]),
            Expr::Lit {
                var: 2,
                phase: false,
            },
        ]);
        let mut mgr = BddManager::new(3, 10_000);
        let vars: Vec<Bdd> = (0..3).map(|i| mgr.var(i).unwrap()).collect();
        let bdd = expr_to_bdd(&expr, &vars, &mut mgr).unwrap();
        for v in 0..8u64 {
            assert_eq!(mgr.eval(bdd, v), expr.eval(v), "vector {v:03b}");
        }
    }
}
