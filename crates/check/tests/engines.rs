//! Cross-engine agreement: the #SAT disjoint-cube enumeration must
//! reproduce the BDD-exact error rate on every registry circuit.
//!
//! Each circuit is compared against a tampered copy of itself. The
//! preferred tamper OR's one missing local minterm into a PI-adjacent node
//! (all fanins are primary inputs), so the flipped region is a single PI
//! cube and the error set stays cube-sparse. Candidates whose flip turns
//! out unobservable (rate 0) or whose downstream observability fragments
//! past the cube budget (heavily reconvergent circuits such as the SEC/DED
//! parity tree in c1908) fall back to the next candidate, and ultimately
//! to complementing one primary-output driver — an error set of exactly
//! one all-free cube, enumerable on any topology.

use als_check::{exact_error_rate_sat, SatCountError};
use als_circuits::all_benchmarks;
use als_logic::{urp, Cover, Expr};
use als_network::{Network, NodeId};

/// PI-adjacent tamper candidates: internal nodes whose fanins are all
/// primary inputs and whose cover misses at least one local minterm,
/// smallest arity first.
fn tamper_candidates(net: &Network) -> Vec<NodeId> {
    let mut cands: Vec<(usize, NodeId)> = net
        .internal_ids()
        .filter(|&id| {
            let node = net.node(id);
            let k = node.fanins().len();
            (1..=6).contains(&k)
                && node.fanins().iter().all(|&f| net.node(f).is_pi())
                && (0..(1u64 << k)).any(|m| !node.cover().eval(m))
        })
        .map(|id| (net.node(id).fanins().len(), id))
        .collect();
    cands.sort_unstable();
    cands.into_iter().map(|(_, id)| id).take(4).collect()
}

/// A copy of `net` with one missing local minterm OR'd into `victim`.
fn or_minterm_tamper(net: &Network, victim: NodeId) -> Network {
    let node = net.node(victim);
    let k = node.fanins().len();
    let m = (0..(1u64 << k))
        .find(|&m| !node.cover().eval(m))
        .expect("candidate filter guarantees a missing minterm");
    let minterm = Expr::And(
        (0..k)
            .map(|i| Expr::Lit {
                var: i,
                phase: m >> i & 1 == 1,
            })
            .collect(),
    );
    let mut approx = net.clone();
    let f = net.node(victim).expr().clone();
    approx.replace_expr(victim, Expr::Or(vec![f, minterm]));
    approx
}

/// An expression computing `cover` (disjunction of its cubes).
fn cover_expr(cover: &Cover) -> Expr {
    if cover.is_empty() {
        return Expr::Const(false);
    }
    let cubes: Vec<Expr> = cover
        .cubes()
        .iter()
        .map(|c| {
            let lits: Vec<Expr> = c
                .literals()
                .map(|(var, phase)| Expr::Lit { var, phase })
                .collect();
            if lits.is_empty() {
                Expr::Const(true)
            } else {
                Expr::And(lits)
            }
        })
        .collect();
    Expr::Or(cubes)
}

/// Last-resort tamper: complement the smallest-arity PO driver via URP.
/// Every input vector becomes an error — rate exactly 1, one cube.
fn complement_tamper(net: &Network) -> Network {
    let driver = net
        .pos()
        .iter()
        .map(|(_, d)| *d)
        .filter(|&d| !net.node(d).is_pi())
        .min_by_key(|&d| (net.node(d).fanins().len(), d))
        .expect("every registry circuit has an internal PO driver");
    let complement = urp::complement(net.node(driver).cover());
    let mut approx = net.clone();
    approx.replace_expr(driver, cover_expr(&complement));
    approx
}

#[test]
fn sat_engine_reproduces_the_bdd_exact_rate_on_every_registry_circuit() {
    for bench in all_benchmarks() {
        let golden = (bench.build)();
        let mut tampers: Vec<Network> = tamper_candidates(&golden)
            .iter()
            .map(|&v| or_minterm_tamper(&golden, v))
            .collect();
        tampers.push(complement_tamper(&golden));

        let mut checked = false;
        for approx in tampers {
            let sat = match exact_error_rate_sat(&golden, &approx, 512, None) {
                Ok(r) => r,
                // Enumeration-hostile candidate (observability fragments
                // into too many cubes): try the next one.
                Err(SatCountError::CubeLimit { .. }) => continue,
                Err(e) => panic!("{}: SAT engine failed: {e:?}", bench.name),
            };
            if sat.rate == 0.0 {
                // Unobservable tamper — vacuous agreement; try the next.
                continue;
            }
            let bdd = als_bdd::exact_error_rate(&golden, &approx, 1 << 22)
                .unwrap_or_else(|e| panic!("{}: BDD engine failed: {e:?}", bench.name));
            assert!(!sat.truncated, "{}: no claim, no cutoff", bench.name);
            assert!(
                (bdd - sat.rate).abs() < 1e-9,
                "{}: bdd {} vs sat {} ({} cube(s))",
                bench.name,
                bdd,
                sat.rate,
                sat.cubes
            );
            assert!(
                sat.sat_queries > 0 && sat.cubes > 0,
                "{}: the enumeration must have done real work",
                bench.name
            );
            checked = true;
            break;
        }
        assert!(
            checked,
            "{}: no tamper candidate produced a checkable configuration",
            bench.name
        );
    }
}
