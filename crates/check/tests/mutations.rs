//! Mutation tests: seed every defect class the analyzer is built to catch
//! and assert the right pass flags it — plus the negative control that the
//! unmutated network analyzes clean.
//!
//! Defect classes (one per `als_network::testing` hook):
//!
//! | defect                         | flagging pass        |
//! |--------------------------------|----------------------|
//! | combinational cycle            | `acyclicity`         |
//! | dropped fanin edge             | `references`         |
//! | flipped SOP literal            | `sop_equivalence`    |
//! | dangling node reference        | `references`         |
//! | tampered (deflated) certificate| `certificates` audit |

use als_check::{audit_certificates, AnalyzerConfig, AuditConfig, CertificateLog, NetworkAnalyzer};
use als_circuits::adders::ripple_carry_adder;
use als_network::{testing, Network, NodeId};
use als_telemetry::{JsonlSink, Telemetry};
use std::io::Write;
use std::sync::{Arc, Mutex};

fn analyzer() -> NetworkAnalyzer {
    NetworkAnalyzer::new(AnalyzerConfig::full())
}

/// A small real circuit plus two internal node ids to mutate (one early,
/// one late in the arena, both with ≥ 2 fanins).
fn subject() -> (Network, NodeId, NodeId) {
    let net = ripple_carry_adder(4);
    let mut internals = net
        .internal_ids()
        .filter(|&id| net.node(id).fanins().len() >= 2);
    let early = internals.next().expect("adder has internal nodes");
    let late = internals.last().unwrap_or(early);
    (net, early, late)
}

#[test]
fn unmutated_subject_is_clean() {
    let (net, _, _) = subject();
    let report = analyzer().analyze(&net);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn cycle_is_flagged_by_acyclicity() {
    let (mut net, _, _) = subject();
    // Find a gate with another gate strictly downstream of it, then point
    // one of its fanins back at that gate: a genuine combinational cycle.
    let (upstream, downstream) = net
        .internal_ids()
        .find_map(|id| {
            let tfo = net.tfo_mask(id);
            net.internal_ids()
                .find(|&d| d != id && tfo[d.index()])
                .map(|d| (id, d))
        })
        .expect("an adder's carry chain has gate-to-gate edges");
    let mut fanins = net.node(upstream).fanins().to_vec();
    fanins[0] = downstream;
    testing::raw_set_fanins(&mut net, upstream, fanins);
    let report = analyzer().analyze(&net);
    assert!(
        report.errors().any(|d| d.pass == "acyclicity"),
        "cycle not flagged:\n{report}"
    );
}

#[test]
fn dropped_fanin_edge_is_flagged_by_references() {
    let (mut net, early, _) = subject();
    testing::raw_drop_fanin(&mut net, early, 0);
    let report = analyzer().analyze(&net);
    assert!(
        report
            .errors()
            .any(|d| d.pass == "references" && d.node == Some(early)),
        "dropped edge not flagged:\n{report}"
    );
}

#[test]
fn flipped_sop_literal_is_flagged_by_sop_equivalence() {
    let (mut net, _, late) = subject();
    testing::raw_flip_cover_literal(&mut net, late);
    let report = analyzer().analyze(&net);
    assert!(
        report
            .errors()
            .any(|d| d.pass == "sop_equivalence" && d.node == Some(late)),
        "flipped literal not flagged:\n{report}"
    );
}

#[test]
fn dangling_reference_is_flagged_by_references() {
    let mut net = ripple_carry_adder(4);
    // Manufacture a tombstone: an orphan node no PO can reach, swept away.
    let pi0 = net.pis()[0];
    let ghost = net.add_node(
        "orphan",
        vec![pi0],
        als_logic::Cover::from_cubes(
            1,
            [als_logic::Cube::from_literals(&[(0, true)]).expect("one literal")],
        ),
    );
    assert!(net.sweep() >= 1, "orphan must be swept");
    assert!(!net.is_live(ghost));
    let victim = net.internal_ids().next().expect("adder has internal nodes");
    testing::raw_redirect_first_fanin(&mut net, victim, ghost);
    let report = analyzer().analyze(&net);
    assert!(
        report
            .errors()
            .any(|d| d.pass == "references" && d.message.contains("dead")),
        "dangling reference not flagged:\n{report}"
    );
}

/// A `Write` handle into a shared buffer, so the test can read back what
/// the sink (which owns its writer) wrote.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);
impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs single-selection on a real circuit with a JSONL sink attached and
/// returns (golden, final network, log text).
fn certified_run() -> (Network, Network, String) {
    let golden = ripple_carry_adder(8);
    let buf = SharedBuf::default();
    let config = als_core::AlsConfig::builder()
        .threshold(0.08)
        .patterns(als_core::PatternPolicy::Fixed(2048))
        .seed(3)
        .telemetry(Telemetry::from(Arc::new(JsonlSink::new(buf.clone()))))
        .build()
        .expect("test config is valid");
    let outcome = als_core::single_selection(&golden, &config);
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).expect("utf8 jsonl");
    (golden, outcome.network, text)
}

#[test]
fn genuine_run_log_audits_clean_and_tampering_is_caught() {
    let (golden, final_net, text) = certified_run();
    let log = CertificateLog::from_jsonl(&text).expect("well-formed log");
    assert!(
        !log.iterations.is_empty(),
        "the run must commit changes for the tamper test to mean anything"
    );
    let clean = audit_certificates(
        &log,
        Some(&golden),
        Some(&final_net),
        &AuditConfig::default(),
    );
    assert!(clean.is_clean(), "honest log must audit clean:\n{clean}");

    // Tamper 1: deflate a certificate's claimed apparent rate. The
    // measured chain no longer fits under the claimed Theorem-1 bound.
    let victim = log
        .all_certificates()
        .find(|c| c.apparent > 1e-6)
        .expect("at least one change with a nonzero apparent rate");
    let mut tampered = log.clone();
    for it in &mut tampered.iterations {
        for cert in &mut it.certificates {
            if cert.node == victim.node && cert.ase == victim.ase {
                cert.apparent = 0.0;
            }
        }
    }
    let report = audit_certificates(
        &tampered,
        Some(&golden),
        Some(&final_net),
        &AuditConfig::default(),
    );
    assert!(
        report.errors().any(|d| d.message.contains("chain bound")),
        "deflated certificate not flagged:\n{report}"
    );

    // Tamper 2: rewrite the summary to claim a rosier final error rate.
    // Re-derivation from the logged seed against the real networks
    // exposes it.
    let mut tampered = log.clone();
    let claimed = tampered.final_error.expect("run_end present");
    if claimed > 0.0 {
        tampered.final_error = Some(claimed / 2.0);
        if let Some(last) = tampered.iterations.last_mut() {
            last.error_after = claimed / 2.0;
        }
        let report = audit_certificates(
            &tampered,
            Some(&golden),
            Some(&final_net),
            &AuditConfig::default(),
        );
        assert!(
            report
                .errors()
                .any(|d| d.message.contains("re-derived error rate")),
            "tampered summary not flagged:\n{report}"
        );
    }

    // Tamper 3: the raw JSONL path — truncate the log mid-iteration; the
    // parser itself must reject it.
    let lines: Vec<&str> = text.lines().collect();
    if let Some(cut) = lines
        .iter()
        .position(|l| l.contains("\"change_committed\""))
    {
        let truncated = lines[..=cut].join("\n");
        assert!(
            CertificateLog::from_jsonl(&truncated).is_err(),
            "truncated log must not parse"
        );
    }
}
