//! The analyzer over every registry circuit: all twelve Table-3 networks
//! must analyze clean under the full pass list — the negative control for
//! the mutation tests, and the same sweep CI runs via `als check`.

use als_check::{AnalyzerConfig, NetworkAnalyzer, Severity};
use als_circuits::all_benchmarks;

#[test]
fn every_registry_circuit_analyzes_clean() {
    let analyzer = NetworkAnalyzer::new(AnalyzerConfig::full());
    for bench in all_benchmarks() {
        let net = (bench.build)();
        let report = analyzer.analyze(&net);
        assert!(
            report.is_clean(),
            "{name} has analyzer findings:\n{report}",
            name = bench.name
        );
        // The full pass list must actually have run: no skip notes.
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.message.contains("skipped")),
            "{name}: passes were skipped:\n{report}",
            name = bench.name
        );
        // Warnings are tolerated (huge nodes can defeat the BDD budget)
        // but should be rare enough to list here when they appear.
        for d in &report.diagnostics {
            assert_ne!(
                d.severity,
                Severity::Error,
                "{name}: {d}",
                name = bench.name
            );
        }
    }
}
