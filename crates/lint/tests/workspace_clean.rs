//! The tree itself must stay lint-clean: every finding is either fixed or
//! carries a reasoned suppression marker, and the committed baseline is
//! consistent with the tree. This is the same gate CI runs via `als-lint
//! --pass all --baseline lint-baseline.json`.

use als_lint::baseline::Baseline;
use als_lint::workspace::{lint_workspace, Selection};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
}

#[test]
fn workspace_is_lint_clean() {
    let report = lint_workspace(workspace_root(), &Selection::All).expect("workspace scan");
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
    let listing: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            format!(
                "{}:{}: [{}] {}",
                f.path.display(),
                f.line,
                f.pass,
                f.construct
            )
        })
        .collect();
    assert!(
        report.clean(),
        "untriaged lint findings:\n{}",
        listing.join("\n")
    );
}

#[test]
fn committed_baseline_holds() {
    let root = workspace_root();
    let report = lint_workspace(root, &Selection::All).expect("workspace scan");
    let baseline = Baseline::load(&root.join("lint-baseline.json")).expect("baseline parses");
    let outcome = baseline.compare(&report);
    assert!(
        outcome.regressions.is_empty(),
        "ratchet regressions: {:?}",
        outcome.regressions
    );
}
