//! Fixture suite: one planted defect per pass (each must be caught), the
//! suppression protocol, and the stale-marker audit, all driven through
//! [`als_lint::workspace::lint_text`] on in-memory sources.

use als_lint::workspace::{lint_text, Finding, LintReport, Selection};
use std::path::Path;

/// Lints one source under the given selection and returns the report.
fn run(src: &str, selection: &Selection) -> LintReport {
    let mut report = LintReport::default();
    lint_text(Path::new("fixture.rs"), src, selection, &mut report);
    report
}

/// Lints one source with every pass.
fn run_all(src: &str) -> LintReport {
    run(src, &Selection::All)
}

fn passes_of(report: &LintReport) -> Vec<&str> {
    report.findings.iter().map(|f| f.pass.as_str()).collect()
}

fn finding<'r>(report: &'r LintReport, pass: &str) -> &'r Finding {
    report
        .findings
        .iter()
        .find(|f| f.pass == pass)
        .unwrap_or_else(|| panic!("expected a `{pass}` finding, got {:?}", report.findings))
}

// ---------------------------------------------------------------- defects

#[test]
fn panic_pass_catches_unwrap_and_macros() {
    let report = run_all("pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    assert_eq!(passes_of(&report), ["panic"]);
    assert_eq!(finding(&report, "panic").construct, ".unwrap(");

    let report = run_all("pub fn f() { panic!(\"boom\") }\n");
    assert_eq!(passes_of(&report), ["panic"]);
    assert_eq!(finding(&report, "panic").line, 1);
}

#[test]
fn as_cast_pass_catches_numeric_casts() {
    let report = run_all("pub fn f(x: u64) -> u32 {\n    x as u32\n}\n");
    assert_eq!(passes_of(&report), ["as-cast"]);
    let f = finding(&report, "as-cast");
    assert_eq!((f.line, f.construct.as_str()), (2, "as u32"));
    // `as` to a non-numeric type is not a finding.
    assert!(run_all("pub fn f(x: u8) -> char { x as char }\n").clean());
}

#[test]
fn map_iter_pass_catches_hash_order_iteration() {
    let src = "use std::collections::HashMap;\n\
               pub fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n    \
               m.keys().copied().collect()\n}\n";
    let report = run_all(src);
    assert_eq!(passes_of(&report), ["map-iter"]);
    assert_eq!(finding(&report, "map-iter").construct, "m.keys()");

    // The implicit `for … in &set {` walk is caught too.
    let src = "use std::collections::HashSet;\n\
               pub fn g(s: &HashSet<u32>) {\n    for v in s {\n        drop(v);\n    }\n}\n";
    let report = run_all(src);
    assert_eq!(passes_of(&report), ["map-iter"]);

    // Iterating a Vec with the same method names is fine.
    assert!(run_all("pub fn h(v: &[u32]) -> usize { v.iter().count() }\n").clean());
}

#[test]
fn float_cmp_pass_catches_float_equality() {
    let report = run_all("pub fn f(a: f64, b: f64) -> bool {\n    a == b\n}\n");
    assert_eq!(passes_of(&report), ["float-cmp"]);
    assert_eq!(finding(&report, "float-cmp").line, 2);
    // Float literal on either side counts; integer equality does not.
    assert_eq!(
        passes_of(&run_all("pub fn g(x: f32) -> bool { 0.0 == x }\n")),
        ["float-cmp"]
    );
    assert!(run_all("pub fn h(a: u32, b: u32) -> bool { a == b }\n").clean());
}

#[test]
fn silent_result_pass_catches_discarded_calls() {
    let report = run_all("pub fn f() {\n    let _ = std::fs::remove_file(\"x\");\n}\n");
    assert_eq!(passes_of(&report), ["silent-result"]);
    // A wildcard discard of a plain value is not a call discard.
    assert!(run_all("pub fn g(x: u32) { let _ = x; }\n").clean());
}

#[test]
fn nondeterminism_pass_catches_wall_clock_reads() {
    let src = "use std::time::Instant;\npub fn f() -> Instant {\n    Instant::now()\n}\n";
    let report = run_all(src);
    assert_eq!(passes_of(&report), ["nondeterminism"]);
    assert_eq!(finding(&report, "nondeterminism").construct, "Instant::now");
}

// ------------------------------------------------------------ suppression

#[test]
fn same_line_marker_suppresses_and_is_exercised() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    \
               x.unwrap() // lint:allow(panic): fixture contract\n}\n";
    let report = run_all(src);
    assert!(
        report.clean(),
        "suppressed finding leaked: {:?}",
        report.findings
    );
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.counts["panic"].allows, 1);
    assert_eq!(report.counts["panic"].findings, 0);
}

#[test]
fn adjacent_line_marker_suppresses() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    \
               // lint:allow(panic): fixture contract\n    x.unwrap()\n}\n";
    assert!(run_all(src).clean());
}

#[test]
fn consecutive_markers_each_pair_with_their_own_finding() {
    let src = "pub fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    \
               // lint:allow(panic): first\n    let a = x.unwrap();\n    \
               // lint:allow(panic): second\n    let b = y.unwrap();\n    a + b\n}\n";
    let report = run_all(src);
    assert!(report.clean(), "{:?}", report.findings);
    assert_eq!(report.allows.len(), 2);
}

#[test]
fn marker_for_a_different_pass_does_not_suppress() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    \
               x.unwrap() // lint:allow(as-cast): wrong pass\n}\n";
    let report = run_all(src);
    // The panic finding stays, and the as-cast marker is stale.
    let mut got = passes_of(&report);
    got.sort_unstable();
    assert_eq!(got, ["panic", "stale-allow"]);
}

// ------------------------------------------------------------ stale audit

#[test]
fn stale_marker_fails_the_audit() {
    let src = "// lint:allow(panic): the construct below was fixed long ago\n\
               pub fn fine() {}\n";
    let report = run_all(src);
    assert_eq!(passes_of(&report), ["stale-allow"]);
    assert!(finding(&report, "stale-allow")
        .construct
        .contains("no longer suppresses"));
}

#[test]
fn unreasoned_marker_fails_the_audit_but_still_suppresses() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    \
               x.unwrap() // lint:allow(panic)\n}\n";
    let report = run_all(src);
    assert_eq!(passes_of(&report), ["stale-allow"]);
    assert!(finding(&report, "stale-allow")
        .construct
        .contains("no `: why` reason"));
}

#[test]
fn unknown_pass_marker_fails_the_audit() {
    let src = "pub fn fine() {} // lint:allow(panics): typo'd pass name\n";
    let report = run_all(src);
    assert_eq!(passes_of(&report), ["stale-allow"]);
    assert!(finding(&report, "stale-allow")
        .construct
        .contains("unknown pass `panics`"));
}

#[test]
fn documentation_placeholders_are_not_markers() {
    let src = "/// Suppress with `lint:allow(<pass>): why`; see `lint:allow(…)`.\n\
               pub fn fine() {}\n";
    assert!(run_all(src).clean());
}

#[test]
fn stale_allow_selection_runs_the_audit_alone() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    \
               x.unwrap() // lint:allow(panic): exercised fixture marker\n}\n\
               // lint:allow(float-cmp): nothing here compares floats\n\
               pub fn g() {}\n";
    let selection = Selection::parse("stale-allow").expect("stale-allow is selectable");
    let report = run(src, &selection);
    // Only the stale float-cmp marker is reported; the exercised panic
    // marker and the suppressed finding are the other passes' business.
    assert_eq!(passes_of(&report), ["stale-allow"]);
    assert!(finding(&report, "stale-allow")
        .construct
        .contains("float-cmp"));
    assert_eq!(report.counts.keys().collect::<Vec<_>>(), ["stale-allow"]);
}

// ------------------------------------------------------------- exemptions

#[test]
fn strings_and_comments_never_trigger_passes() {
    let src = "// calls .unwrap() and casts as u32 — in prose only\n\
               pub fn f() -> &'static str {\n    \"x.unwrap() as u32 == 0.5\"\n}\n";
    assert!(run_all(src).clean());
}

#[test]
fn cfg_test_modules_are_exempt() {
    let src = "pub fn ok() {}\n\n\
               #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
               None::<u32>.unwrap();\n        let x: u64 = 7;\n        drop(x as u32);\n    }\n}\n";
    let report = run_all(src);
    assert!(
        report.clean(),
        "test-mod finding leaked: {:?}",
        report.findings
    );
}

#[test]
fn single_pass_selection_only_reports_that_pass() {
    let src = "pub fn f(x: Option<f64>, y: f64) -> bool {\n    \
               x.unwrap() == y\n}\n";
    let report = run(src, &Selection::parse("float-cmp").expect("known pass"));
    assert_eq!(passes_of(&report), ["float-cmp"]);
    assert!(report.counts.contains_key("float-cmp"));
    assert!(!report.counts.contains_key("panic"));
}
