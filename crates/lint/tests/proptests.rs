//! Property tests for the token scanner: it must never panic, and
//! scrubbing must reach a fixed point, on *any* input — the lint runs over
//! whatever bytes a source tree contains, including files mid-edit.

use als_lint::scanner;
use als_lint::workspace::{lint_text, LintReport, Selection};
use proptest::collection;
use proptest::prelude::*;
use std::path::Path;

/// Arbitrary (possibly invalid-UTF-8) bytes, decoded lossily the way a
/// hostile or truncated source file would be.
fn lossy(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// Rust-flavoured fragment soup: random concatenations of the exact
/// constructs the scanner special-cases (quote kinds, comment openers,
/// escapes, lifetimes, float-ish numbers) hit the tricky lexer paths far
/// more often than raw bytes do.
fn fragment() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("\""),
        Just("'"),
        Just("r\""),
        Just("r#\""),
        Just("\"#"),
        Just("b\""),
        Just("//"),
        Just("/*"),
        Just("*/"),
        Just("\\"),
        Just("\\\""),
        Just("\\'"),
        Just("\n"),
        Just(" "),
        Just("'a"),
        Just("'\\n'"),
        Just("ident"),
        Just("r#match"),
        Just("0.5"),
        Just("1..2"),
        Just("1e-5"),
        Just("#"),
        Just("=="),
        Just("let _ = f();"),
        Just("lint:allow(panic): x"),
        Just("\u{fffd}"),
    ]
}

fn soup() -> impl Strategy<Value = String> {
    collection::vec(fragment(), 0..48).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn scan_never_panics_on_arbitrary_bytes(bytes in collection::vec(any::<u8>(), 0..256)) {
        let src = lossy(&bytes);
        let scan = scanner::scan(&src);
        // Token lines must stay within the source's line count.
        let lines = src.lines().count().max(1);
        for t in &scan.tokens {
            prop_assert!(t.line >= 1 && t.line <= lines);
        }
    }

    #[test]
    fn scrub_is_idempotent_on_arbitrary_bytes(bytes in collection::vec(any::<u8>(), 0..256)) {
        let src = lossy(&bytes);
        let once = scanner::scrub(&src);
        let twice = scanner::scrub(&once);
        prop_assert_eq!(&once, &twice, "scrub must reach a fixed point in one step");
        // Scrubbing blanks content but never adds or removes lines.
        prop_assert_eq!(once.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn scan_never_panics_on_rust_fragment_soup(src in soup()) {
        let scan = scanner::scan(&src);
        let once = scanner::scrub(&src);
        let twice = scanner::scrub(&once);
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(once.matches('\n').count(), src.matches('\n').count());
        // Comments never leak into the token stream.
        for t in &scan.tokens {
            prop_assert!(!t.text.contains("//"), "comment text in token: {:?}", t);
        }
    }

    #[test]
    fn lint_text_never_panics(src in soup()) {
        let mut report = LintReport::default();
        lint_text(Path::new("fuzz.rs"), &src, &Selection::All, &mut report);
        prop_assert_eq!(report.files_scanned, 1);
    }
}
