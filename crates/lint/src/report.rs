//! Rendering: the human listing and the schema-versioned JSON report.

use als_telemetry::json::Json;

use crate::baseline::RatchetOutcome;
use crate::passes;
use crate::workspace::LintReport;

/// The JSON report schema this build emits.
pub const REPORT_SCHEMA_VERSION: u64 = 1;

/// Renders the human findings listing (one line per finding plus a
/// summary), the format the old in-tree lint printed.
pub fn render_human(report: &LintReport, ratchet: Option<&RatchetOutcome>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for f in &report.findings {
        // lint:allow(silent-result): fmt::Write into a String is infallible
        let _ = writeln!(
            out,
            "{}:{}: [{}] `{}`: {}",
            f.path.display(),
            f.line,
            f.pass,
            f.construct,
            f.excerpt,
        );
    }
    if let Some(ratchet) = ratchet {
        for r in &ratchet.regressions {
            // lint:allow(silent-result): fmt::Write into a String is infallible
            let _ = writeln!(out, "ratchet regression: {r}");
        }
        for t in &ratchet.tightenable {
            // lint:allow(silent-result): fmt::Write into a String is infallible
            let _ = writeln!(out, "ratchet can tighten: {t}");
        }
    }
    let suppressed: usize = report.counts.values().map(|c| c.allows).sum();
    // lint:allow(silent-result): fmt::Write into a String is infallible
    let _ = writeln!(
        out,
        "lint: {} finding(s), {} exercised suppression marker(s) in {} file(s)",
        report.findings.len(),
        suppressed,
        report.files_scanned,
    );
    out
}

/// Renders the machine-readable report.
pub fn render_json(report: &LintReport, ratchet: Option<&RatchetOutcome>) -> String {
    let mut root = Json::object();
    root.set("schema", REPORT_SCHEMA_VERSION);
    root.set("files_scanned", report.files_scanned);

    let mut pass_list: Vec<Json> = Vec::new();
    for pass in passes::registry() {
        let mut entry = Json::object();
        entry.set("name", pass.name());
        entry.set("description", pass.description());
        pass_list.push(entry);
    }
    let mut audit = Json::object();
    audit.set("name", passes::STALE_ALLOW);
    audit.set("description", passes::STALE_ALLOW_DESCRIPTION);
    pass_list.push(audit);
    root.set("passes", pass_list);

    let mut findings: Vec<Json> = Vec::new();
    for f in &report.findings {
        let mut entry = Json::object();
        entry.set("pass", f.pass.as_str());
        entry.set("path", f.path.display().to_string());
        entry.set("line", f.line);
        entry.set("construct", f.construct.as_str());
        entry.set("excerpt", f.excerpt.as_str());
        findings.push(entry);
    }
    root.set("findings", findings);

    let mut allows: Vec<Json> = Vec::new();
    for a in &report.allows {
        let mut entry = Json::object();
        entry.set("pass", a.pass.as_str());
        entry.set("path", a.path.display().to_string());
        entry.set("line", a.line);
        allows.push(entry);
    }
    root.set("allows", allows);

    let mut counts = Json::object();
    for (pass, c) in &report.counts {
        let mut entry = Json::object();
        entry.set("findings", c.findings);
        entry.set("allows", c.allows);
        counts.set(pass, entry);
    }
    root.set("counts", counts);

    if let Some(ratchet) = ratchet {
        let mut entry = Json::object();
        entry.set(
            "status",
            if ratchet.regressions.is_empty() {
                "ok"
            } else {
                "regression"
            },
        );
        entry.set(
            "regressions",
            ratchet
                .regressions
                .iter()
                .map(|r| Json::from(r.as_str()))
                .collect::<Vec<Json>>(),
        );
        entry.set(
            "tightenable",
            ratchet
                .tightenable
                .iter()
                .map(|t| Json::from(t.as_str()))
                .collect::<Vec<Json>>(),
        );
        root.set("baseline", entry);
    }
    root.render_pretty()
}
