//! `als-lint` — the workspace's static-analysis subsystem.
//!
//! The repo's core guarantee is byte-identical determinism across threads,
//! policies and solver-reuse modes: it is what makes the error-rate
//! certificates auditable. This crate defends it (and the library's
//! no-panic / no-lossy-cast hygiene) with a token-aware scanner and a
//! registry of lint passes, replacing the line-oriented lint that used to
//! live in `als-bench`:
//!
//! * [`scanner`] — a hand-rolled string/char/raw-string/comment-aware Rust
//!   token scanner (the workspace is offline, so no `syn`);
//! * [`passes`] — the pass registry: `panic`, `as-cast`, `map-iter`
//!   (ported from the old lint), `float-cmp`, `silent-result`,
//!   `nondeterminism` (new), plus the driver-level `stale-allow`
//!   suppression audit;
//! * [`workspace`] — file discovery, the `// lint:allow(<pass>): why`
//!   suppression protocol, and the stale-marker audit;
//! * [`baseline`] — the schema-versioned `lint-baseline.json` ratchet:
//!   per-pass finding and suppression counts may only go down;
//! * [`report`] — the human listing and the `--json` machine report.
//!
//! The `als-lint` binary wires it together:
//!
//! ```text
//! als-lint [--pass <name>|all] [--json] [--baseline FILE]
//!          [--update-baseline] [--root DIR] [--list-passes]
//! ```
//!
//! Exit codes: 0 clean, 1 findings / stale markers / ratchet regression,
//! 2 usage or I/O error.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![deny(missing_docs)]

pub mod baseline;
pub mod passes;
pub mod report;
pub mod scanner;
pub mod workspace;

use std::io::Write;
use std::path::PathBuf;

use baseline::Baseline;
use workspace::Selection;

/// A parsed command line.
#[derive(Debug)]
struct Cli {
    selection: Selection,
    json: bool,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    root: Option<PathBuf>,
    list_passes: bool,
}

/// The full CLI, shared by the `als-lint` binary and the deprecated
/// `als-bench --bin lint` shim. Returns the process exit code; the JSON
/// report goes to stdout and everything human-facing to stderr, so
/// `als-lint --json > report.json` captures a well-formed document even
/// when the run fails.
pub fn cli_main(args: &[String]) -> u8 {
    let cli = match parse_args(args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("als-lint: {message}");
            return 2;
        }
    };
    if cli.list_passes {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for pass in passes::registry() {
            // lint:allow(silent-result): a closed stdout pipe must not abort the lint
            let _ = writeln!(out, "{:<16} {}", pass.name(), pass.description());
        }
        // lint:allow(silent-result): a closed stdout pipe must not abort the lint
        let _ = writeln!(
            out,
            "{:<16} {}",
            passes::STALE_ALLOW,
            passes::STALE_ALLOW_DESCRIPTION
        );
        return 0;
    }
    let Some(root) = cli.root.clone().or_else(workspace::find_workspace_root) else {
        eprintln!(
            "als-lint: cannot locate the workspace root (no Cargo.toml with [workspace] \
             upwards; use --root)"
        );
        return 2;
    };
    let report = match workspace::lint_workspace(&root, &cli.selection) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("als-lint: {message}");
            return 2;
        }
    };

    // Stale / malformed suppression markers are never ratchetable debt:
    // they fail the run whatever the baseline says.
    let stale_failed = report
        .findings
        .iter()
        .any(|f| f.pass == passes::STALE_ALLOW);
    let (failed, ratchet) = match &cli.baseline {
        Some(path) if cli.update_baseline => {
            if let Err(message) = Baseline::update(path, &report) {
                eprintln!("als-lint: {message}");
                return 2;
            }
            eprintln!("als-lint: baseline {} updated", path.display());
            // Updating *is* the act of recording triaged counts, so the
            // ratchet holds by construction afterwards.
            (stale_failed, None)
        }
        Some(path) => match Baseline::load(path) {
            Ok(baseline) => {
                // Counts at or below the baseline are recorded debt, not
                // new findings: only a regression (or a stale marker)
                // fails a baselined run.
                let ratchet = baseline.compare(&report);
                (
                    stale_failed || !ratchet.regressions.is_empty(),
                    Some(ratchet),
                )
            }
            Err(message) => {
                eprintln!("als-lint: {message}");
                return 2;
            }
        },
        None => (!report.clean(), None),
    };

    let human = report::render_human(&report, ratchet.as_ref());
    if cli.json {
        let json = report::render_json(&report, ratchet.as_ref());
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        // lint:allow(silent-result): a closed stdout pipe must not abort the lint
        let _ = out.write_all(json.as_bytes());
        eprint!("{human}");
    } else {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        // lint:allow(silent-result): a closed stdout pipe must not abort the lint
        let _ = out.write_all(human.as_bytes());
    }
    u8::from(failed)
}

/// Parses the argument list (program name already stripped).
fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        selection: Selection::All,
        json: false,
        baseline: None,
        update_baseline: false,
        root: None,
        list_passes: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--pass" => {
                let value = it.next().ok_or_else(|| {
                    format!(
                        "--pass needs a value: {}, all",
                        passes::pass_names().join(", ")
                    )
                })?;
                cli.selection = Selection::parse(value)?;
            }
            "--json" => cli.json = true,
            "--baseline" => {
                let value = it.next().ok_or("--baseline needs a file path")?;
                cli.baseline = Some(PathBuf::from(value));
            }
            "--update-baseline" => cli.update_baseline = true,
            "--root" => {
                let value = it.next().ok_or("--root needs a directory")?;
                cli.root = Some(PathBuf::from(value));
            }
            "--list-passes" => cli.list_passes = true,
            other => {
                return Err(format!(
                    "unknown argument `{other}` (try --pass, --json, --baseline, --update-baseline, --root, --list-passes)"
                ));
            }
        }
    }
    if cli.update_baseline && cli.baseline.is_none() {
        return Err("--update-baseline needs --baseline <file>".to_string());
    }
    if cli.update_baseline && cli.selection != Selection::All {
        return Err(
            "--update-baseline requires --pass all: a partial run has no counts for the \
             unselected passes and would silently loosen them"
                .to_string(),
        );
    }
    Ok(cli)
}
