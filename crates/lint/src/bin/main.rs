//! `als-lint` — the workspace static-analysis CLI. All logic lives in the
//! library (`als_lint::cli_main`) so the deprecated `als-bench --bin lint`
//! shim can share it.

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::ExitCode::from(als_lint::cli_main(&args))
}
