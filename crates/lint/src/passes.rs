//! The lint pass registry.
//!
//! Each pass is a pure function over one file's token stream (see
//! [`crate::scanner`]): it reports *raw* findings — line + offending
//! construct — and the driver in [`crate::workspace`] applies the shared
//! policy around them (test-module exemption, suppression markers, the
//! stale-marker audit).
//!
//! The passes are heuristic by design: token-level scanning cannot type a
//! program, so the float and map passes work from names *declared float or
//! hash-typed in the same file* and the result pass flags every discarded
//! call. Whatever the heuristics miss simply stays unchecked; what they
//! over-catch is triaged once with a reasoned `// lint:allow(<pass>): why`
//! marker, and the CI ratchet keeps new unmarked findings out.

use crate::scanner::{Token, TokenKind};

/// A finding as produced by a pass, before suppression is applied.
#[derive(Clone, Debug)]
pub struct RawFinding {
    /// 1-based source line.
    pub line: usize,
    /// Short description of the offending construct (`".unwrap()"`,
    /// `"as u32"`, `"float `==`"`, …).
    pub construct: String,
}

/// A lint pass: a name (also the suppression-marker key), a one-line
/// description, and the check itself.
pub trait Pass {
    /// The pass name: `--pass <name>` selects it and
    /// `// lint:allow(<name>): why` suppresses it.
    fn name(&self) -> &'static str;

    /// One-line description for `--list-passes` and the JSON report.
    fn description(&self) -> &'static str;

    /// Runs the pass over one file's tokens.
    fn check(&self, tokens: &[Token]) -> Vec<RawFinding>;
}

/// The name of the suppression-audit pseudo-pass. It has no marker of its
/// own (a stale marker cannot be excused by another marker) and is
/// implemented by the driver, not a [`Pass`]: it needs every *raw* finding
/// of every other pass as input.
pub const STALE_ALLOW: &str = "stale-allow";

/// What the stale-allow audit checks (for `--list-passes` and docs).
pub const STALE_ALLOW_DESCRIPTION: &str =
    "every `lint:allow(<pass>)` marker names a real pass, carries a `: why` reason, and still \
     suppresses at least one finding";

/// All registered passes, in reporting order.
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(PanicPass),
        Box::new(AsCastPass),
        Box::new(MapIterPass),
        Box::new(FloatCmpPass),
        Box::new(SilentResultPass),
        Box::new(NondeterminismPass),
    ]
}

/// Every selectable pass name, including the driver-implemented audit.
pub fn pass_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = registry().iter().map(|p| p.name()).collect();
    names.push(STALE_ALLOW);
    names
}

/// Numeric types an `as`-cast can target; every one can lose information
/// from some source type.
const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Methods that walk a hash container in nondeterministic hash order.
const HASH_ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// **panic** — no panicking constructs in library code: `.unwrap()`,
/// `.expect(`, and the `panic!` macro family. Library errors must be
/// `Result`s; a deliberate panic carries a marker explaining the contract.
struct PanicPass;

impl Pass for PanicPass {
    fn name(&self) -> &'static str {
        "panic"
    }

    fn description(&self) -> &'static str {
        "no .unwrap()/.expect()/panic!-family constructs in library code"
    }

    fn check(&self, tokens: &[Token]) -> Vec<RawFinding> {
        let mut out = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let method = matches!(t.text.as_str(), "unwrap" | "expect")
                && i > 0
                && tokens[i - 1].is_punct(".")
                && tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
            if method {
                out.push(RawFinding {
                    line: t.line,
                    construct: format!(".{}(", t.text),
                });
            }
            let mac = matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && tokens.get(i + 1).is_some_and(|n| n.is_punct("!"));
            if mac {
                out.push(RawFinding {
                    line: t.line,
                    construct: format!("{}!(", t.text),
                });
            }
        }
        out
    }
}

/// **as-cast** — no `as`-casts to numeric types in library code. `as`
/// silently truncates, wraps and rounds; use `From`/`try_from` or justify
/// the cast with a marker.
struct AsCastPass;

impl Pass for AsCastPass {
    fn name(&self) -> &'static str {
        "as-cast"
    }

    fn description(&self) -> &'static str {
        "no lossy `as` numeric casts in library code"
    }

    fn check(&self, tokens: &[Token]) -> Vec<RawFinding> {
        let mut out = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            if t.is_ident("as")
                && tokens.get(i + 1).is_some_and(|n| {
                    n.kind == TokenKind::Ident && NUMERIC_TYPES.contains(&n.text.as_str())
                })
            {
                out.push(RawFinding {
                    line: t.line,
                    construct: format!("as {}", tokens[i + 1].text),
                });
            }
        }
        out
    }
}

/// **map-iter** — no iteration over `HashMap`/`HashSet` contents in
/// library code: hash order is nondeterministic across processes, and any
/// such loop feeding ordered or emitted output silently breaks the
/// byte-identity suites. Iterate a sorted view or a side-car order vector,
/// or justify order-independence with a marker.
struct MapIterPass;

impl Pass for MapIterPass {
    fn name(&self) -> &'static str {
        "map-iter"
    }

    fn description(&self) -> &'static str {
        "no hash-order iteration over HashMap/HashSet in library code"
    }

    fn check(&self, tokens: &[Token]) -> Vec<RawFinding> {
        let names = hash_container_names(tokens);
        if names.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident || !names.iter().any(|n| n == &t.text) {
                continue;
            }
            // `name.iter()` and friends.
            if tokens.get(i + 1).is_some_and(|n| n.is_punct("."))
                && tokens.get(i + 2).is_some_and(|m| {
                    m.kind == TokenKind::Ident && HASH_ITER_METHODS.contains(&m.text.as_str())
                })
                && tokens.get(i + 3).is_some_and(|n| n.is_punct("("))
            {
                out.push(RawFinding {
                    line: t.line,
                    construct: format!("{}.{}()", t.text, tokens[i + 2].text),
                });
            }
            // `for … in [&][mut] name {` — the implicit IntoIterator walk.
            if tokens.get(i + 1).is_some_and(|n| n.is_punct("{")) {
                let mut j = i;
                while j > 0 && (tokens[j - 1].is_punct("&") || tokens[j - 1].is_ident("mut")) {
                    j -= 1;
                }
                if j > 0 && tokens[j - 1].is_ident("in") {
                    let for_nearby = tokens[..j - 1]
                        .iter()
                        .rev()
                        .take(12)
                        .any(|t| t.is_ident("for"));
                    if for_nearby {
                        out.push(RawFinding {
                            line: t.line,
                            construct: format!("for … in {}", t.text),
                        });
                    }
                }
            }
        }
        out
    }
}

/// Names a file binds to `HashMap`/`HashSet` values: `let` bindings whose
/// initializer mentions one, and `name: [&]HashMap<…>` parameters, struct
/// fields and annotated bindings.
fn hash_container_names(tokens: &[Token]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let mut push = |name: &str| {
        if !name.is_empty() && !names.iter().any(|n| n == name) {
            names.push(name.to_string());
        }
    };
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // `name: [& mut 'a] HashMap<` — parameters, fields, annotations.
        if tokens.get(i + 1).is_some_and(|n| n.is_punct("<")) {
            let mut j = i;
            while j > 0
                && (tokens[j - 1].is_punct("&")
                    || tokens[j - 1].is_ident("mut")
                    || tokens[j - 1].kind == TokenKind::Lifetime)
            {
                j -= 1;
            }
            if j > 1 && tokens[j - 1].is_punct(":") && tokens[j - 2].kind == TokenKind::Ident {
                push(&tokens[j - 2].text);
            }
        }
        // `let [mut] name … = … HashMap::new()` — walk back to the `let`
        // opening this statement (bounded; stops at statement boundaries).
        for back in 1..40 {
            let Some(j) = i.checked_sub(back) else {
                break;
            };
            if tokens[j].is_punct(";") || tokens[j].is_punct("{") || tokens[j].is_punct("}") {
                break;
            }
            if tokens[j].is_ident("let") {
                let mut k = j + 1;
                if tokens.get(k).is_some_and(|t| t.is_ident("mut")) {
                    k += 1;
                }
                if let Some(name) = tokens.get(k) {
                    if name.kind == TokenKind::Ident {
                        push(&name.text);
                    }
                }
                break;
            }
        }
    }
    names
}

/// **float-cmp** — no `==`/`!=` on `f32`/`f64` in library code. Exact
/// float equality is almost always a rounding bug waiting to happen; where
/// bit-exactness is the *point* (re-derived rates, integrality checks) the
/// comparison carries a marker saying so, otherwise compare within an
/// explicit epsilon or on `to_bits()`.
struct FloatCmpPass;

impl Pass for FloatCmpPass {
    fn name(&self) -> &'static str {
        "float-cmp"
    }

    fn description(&self) -> &'static str {
        "no ==/!= on f32/f64 values in library code"
    }

    fn check(&self, tokens: &[Token]) -> Vec<RawFinding> {
        let names = float_names(tokens);
        let is_float_operand = |t: &Token| {
            t.kind == TokenKind::Float
                || (t.kind == TokenKind::Ident && names.iter().any(|n| n == &t.text))
        };
        let mut out = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            if !(t.is_punct("==") || t.is_punct("!=")) {
                continue;
            }
            let left = i.checked_sub(1).and_then(|j| tokens.get(j));
            // Skip a unary minus on the right-hand side.
            let mut r = i + 1;
            if tokens.get(r).is_some_and(|n| n.is_punct("-")) {
                r += 1;
            }
            let right = tokens.get(r);
            let hit = left.is_some_and(is_float_operand) || right.is_some_and(is_float_operand);
            if hit {
                let operand = [left, right]
                    .into_iter()
                    .flatten()
                    .find(|t| is_float_operand(t))
                    .map_or_else(String::new, |t| t.text.clone());
                out.push(RawFinding {
                    line: t.line,
                    construct: format!("float `{}` (operand `{operand}`)", t.text),
                });
            }
        }
        out
    }
}

/// Names a file declares as `f32`/`f64`: `name: [& mut] f64` (parameters,
/// fields, annotated bindings) and `let [mut] name = <float literal>`.
fn float_names(tokens: &[Token]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let mut push = |name: &str| {
        if !name.is_empty() && !names.iter().any(|n| n == name) {
            names.push(name.to_string());
        }
    };
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident && (t.text == "f32" || t.text == "f64") {
            let mut j = i;
            while j > 0
                && (tokens[j - 1].is_punct("&")
                    || tokens[j - 1].is_ident("mut")
                    || tokens[j - 1].kind == TokenKind::Lifetime)
            {
                j -= 1;
            }
            if j > 1 && tokens[j - 1].is_punct(":") && tokens[j - 2].kind == TokenKind::Ident {
                push(&tokens[j - 2].text);
            }
        }
        if t.kind == TokenKind::Float && i >= 2 {
            let mut j = i - 1;
            if tokens[j].is_punct("-") && j > 0 {
                j -= 1;
            }
            if tokens[j].is_punct("=") && j >= 2 {
                let name = &tokens[j - 1];
                let kw = &tokens[j - 2];
                if name.kind == TokenKind::Ident
                    && (kw.is_ident("let") || kw.is_ident("mut") || kw.is_ident("const"))
                {
                    push(&name.text);
                }
            }
        }
    }
    names
}

/// **silent-result** — no `let _ = call(…)` in library code: discarding a
/// call result with a wildcard silences `#[must_use]` and swallows
/// `Result`s without a trace. Handle the error, propagate it with `?`, or
/// justify the discard with a marker (e.g. infallible `fmt::Write` into a
/// `String`).
struct SilentResultPass;

impl Pass for SilentResultPass {
    fn name(&self) -> &'static str {
        "silent-result"
    }

    fn description(&self) -> &'static str {
        "no `let _ = call(…)` discards in library code"
    }

    fn check(&self, tokens: &[Token]) -> Vec<RawFinding> {
        let mut out = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            if !t.is_ident("let") || !tokens.get(i + 1).is_some_and(|n| n.is_ident("_")) {
                continue;
            }
            // `let _ = …` or `let _: Ty = …`: find the `=` (bounded).
            let mut j = i + 2;
            if tokens.get(j).is_some_and(|n| n.is_punct(":")) {
                let limit = j + 24;
                while j < limit
                    && tokens
                        .get(j)
                        .is_some_and(|n| !n.is_punct("=") && !n.is_punct(";"))
                {
                    j += 1;
                }
            }
            if !tokens.get(j).is_some_and(|n| n.is_punct("=")) {
                continue;
            }
            // The initializer is a call if a `(` appears before the `;`.
            let mut callee = String::new();
            let mut k = j + 1;
            let limit = k + 200;
            while k < limit {
                match tokens.get(k) {
                    None => break,
                    Some(n) if n.is_punct(";") => break,
                    Some(n) if n.is_punct("(") => {
                        if let Some(prev) = tokens.get(k.saturating_sub(1)) {
                            if prev.kind == TokenKind::Ident && k > j + 1 {
                                callee.clone_from(&prev.text);
                            }
                        }
                        out.push(RawFinding {
                            line: t.line,
                            construct: if callee.is_empty() {
                                "let _ = <call>".to_string()
                            } else {
                                format!("let _ = …{callee}(…)")
                            },
                        });
                        break;
                    }
                    Some(_) => k += 1,
                }
            }
        }
        out
    }
}

/// **nondeterminism** — no wall-clock reads, thread-identity reads, or
/// pointer-identity hashing in library code: the determinism suites pin
/// every outcome byte-for-byte across threads and policies, and these
/// constructs are exactly the ones that vary between runs. The telemetry
/// clock and the phase timers (whose readings feed only telemetry, never
/// outcomes) carry markers saying so.
struct NondeterminismPass;

/// Token sequences the nondeterminism pass bans.
const NONDET_SEQUENCES: [&[&str]; 4] = [
    &["Instant", "::", "now"],
    &["SystemTime", "::", "now"],
    &["thread", "::", "current"],
    &["ptr", "::", "hash"],
];

impl Pass for NondeterminismPass {
    fn name(&self) -> &'static str {
        "nondeterminism"
    }

    fn description(&self) -> &'static str {
        "no Instant::now/SystemTime::now/thread::current/ptr::hash in library code"
    }

    fn check(&self, tokens: &[Token]) -> Vec<RawFinding> {
        let mut out = Vec::new();
        for i in 0..tokens.len() {
            for seq in NONDET_SEQUENCES {
                let matched = seq.iter().enumerate().all(|(k, want)| {
                    tokens.get(i + k).is_some_and(|t| {
                        if k % 2 == 0 {
                            t.is_ident(want)
                        } else {
                            t.is_punct(want)
                        }
                    })
                });
                if matched {
                    out.push(RawFinding {
                        line: tokens[i].line,
                        construct: seq.join(""),
                    });
                }
            }
        }
        out
    }
}
