//! A hand-rolled, literal-aware Rust token scanner.
//!
//! The workspace is offline, so `syn`/`proc-macro2` cannot be fetched; the
//! lint passes instead run over the token stream this module produces. The
//! scanner understands exactly the Rust surface the passes need to avoid
//! false positives that a line-oriented text scan cannot:
//!
//! * `//` line comments and (nested) `/* */` block comments — their text is
//!   kept aside per line so suppression markers keep working, but no token
//!   is ever produced from inside one;
//! * cooked strings (`"…"` with `\` escapes, including multi-line), byte
//!   strings (`b"…"`), raw strings (`r"…"`, `r#"…"#`, any hash depth, and
//!   the `br` forms) and char literals (`'a'`, `'\n'`, `'\u{1F600}'`),
//!   disambiguated from lifetimes (`'a`) and raw identifiers (`r#match`);
//! * numeric literals with radix prefixes, `_` separators, exponents and
//!   type suffixes — `1.0`, `1e-5`, `1_000.5f64` scan as *floats*, while
//!   `1..n` stays an integer followed by a range operator;
//! * two-character operators, so `==`/`!=` are single tokens distinct from
//!   `=`, `=>` and `<=`.
//!
//! [`scan`] never panics, whatever the input (the scanner property suite
//! feeds it arbitrary lossy-decoded bytes), and the scrubbed text it
//! returns — comments and literal *interiors* blanked to spaces, all
//! delimiters and line structure preserved — is a fixed point: scrubbing a
//! scrubbed text changes nothing.

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including `_` and raw `r#ident`).
    Ident,
    /// An integer literal (any radix, possibly suffixed).
    Int,
    /// A float literal (fraction, exponent, or `f32`/`f64` suffix).
    Float,
    /// A string literal of any flavour (cooked, byte, raw).
    Str,
    /// A character or byte-character literal.
    Char,
    /// A lifetime (`'a`).
    Lifetime,
    /// Any operator or delimiter; two-character operators are one token.
    Punct,
}

/// One scanned token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The token text. For string/char literals this is only the opening
    /// delimiter — the interior is deliberately not retained.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// True if this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True if this token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// The result of scanning one source text.
#[derive(Debug)]
pub struct Scan {
    /// The token stream, literals and comments excluded as described on
    /// [`TokenKind`].
    pub tokens: Vec<Token>,
    /// Comment text, one entry per (line, text-on-that-line) pair; block
    /// comments contribute one entry per line they span. Suppression
    /// markers are parsed from these.
    pub comments: Vec<(usize, String)>,
    /// The source with comments and literal interiors blanked to spaces.
    /// Line structure and every literal delimiter are preserved, and
    /// scrubbing is idempotent.
    pub scrubbed: String,
}

/// Scans `src`. Never panics; malformed or truncated input degrades to the
/// longest sensible interpretation (an unterminated literal swallows the
/// rest of the file as literal interior, exactly as rustc would complain
/// about but never crash on).
pub fn scan(src: &str) -> Scan {
    Lexer::new(src).run()
}

/// Convenience wrapper: just the scrubbed text (used by the idempotence
/// property suite).
pub fn scrub(src: &str) -> String {
    scan(src).scrubbed
}

/// Two-character operators recognised as single tokens. Longer operators
/// (`..=`, `<<=`) degrade to one of these plus a single-char token, which
/// is harmless for every pass.
const TWO_CHAR_PUNCT: [&str; 19] = [
    "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "^=", "|=",
];

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    scrubbed: String,
    tokens: Vec<Token>,
    comments: Vec<(usize, String)>,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            scrubbed: String::with_capacity(src.len()),
            tokens: Vec::new(),
            comments: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, emitting it verbatim into the scrubbed text.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        self.scrubbed.push(c);
        Some(c)
    }

    /// Consumes one char, blanking it to a space in the scrubbed text
    /// (newlines are preserved so line numbers survive scrubbing).
    fn bump_blank(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.scrubbed.push('\n');
        } else {
            self.scrubbed.push(' ');
        }
        Some(c)
    }

    fn push_token(&mut self, kind: TokenKind, text: String, line: usize) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Scan {
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                let line = self.line;
                self.bump();
                self.cooked_string_body();
                self.push_token(TokenKind::Str, "\"".to_string(), line);
            } else if c == '\'' {
                self.char_or_lifetime();
            } else if c == 'r' || c == 'b' {
                self.maybe_prefixed_literal();
            } else if is_ident_start(c) {
                self.ident();
            } else if c.is_ascii_digit() {
                self.number();
            } else if c.is_whitespace() {
                self.bump();
            } else {
                self.punct();
            }
        }
        Scan {
            tokens: self.tokens,
            comments: self.comments,
            scrubbed: self.scrubbed,
        }
    }

    /// `// …` to end of line: blanked, text recorded for marker parsing.
    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump_blank();
        }
        self.comments.push((line, text));
    }

    /// `/* … */`, nested, possibly unterminated: blanked, text recorded
    /// per line so markers inside block comments stay line-addressed.
    fn block_comment(&mut self) {
        let mut depth = 0usize;
        let mut line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump_blank();
                self.bump_blank();
            } else if c == '*' && self.peek(1) == Some('/') {
                text.push_str("*/");
                self.bump_blank();
                self.bump_blank();
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            } else if c == '\n' {
                self.comments.push((line, std::mem::take(&mut text)));
                self.bump_blank();
                line = self.line;
            } else {
                text.push(c);
                self.bump_blank();
            }
        }
        if !text.is_empty() {
            self.comments.push((line, text));
        }
    }

    /// The interior and closing quote of a cooked string, opening quote
    /// already consumed. `\X` escape pairs are skipped as a unit so `\"`
    /// does not terminate and `\\"` does.
    fn cooked_string_body(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump_blank();
                self.bump_blank();
            } else if c == '"' {
                self.bump();
                break;
            } else {
                self.bump_blank();
            }
        }
    }

    /// The interior and closing delimiter of a raw string with `hashes`
    /// `#`s, opening delimiter already consumed.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let closes = (0..hashes).all(|i| self.peek(1 + i) == Some('#'));
                if closes {
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                self.bump_blank();
            } else {
                self.bump_blank();
            }
        }
    }

    /// At `'`: lifetime or char literal.
    ///
    /// A lifetime is `'` followed by an identifier *not* immediately closed
    /// by another `'`. Everything else looks for a closing quote nearby on
    /// the same line, skipping `\X` escape pairs; if none is found the `'`
    /// degrades to a bare punct so arbitrary input still scans. The same
    /// close-quote search runs on already-scrubbed text (where escapes have
    /// been blanked to spaces) and finds the identical closing position,
    /// which is what makes scrubbing idempotent.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let next = self.peek(1);
        if next.is_some_and(is_ident_start) && self.peek(2) != Some('\'') {
            // `'a` — a lifetime: emit verbatim.
            let mut text = String::from('\'');
            self.bump();
            while let Some(c) = self.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_token(TokenKind::Lifetime, text, line);
            return;
        }
        let mut close = None;
        let mut i = 1usize;
        while i <= 34 {
            match self.peek(i) {
                Some('\\') => i += 2,
                Some('\'') => {
                    close = Some(i);
                    break;
                }
                Some('\n') | None => break,
                Some(_) => i += 1,
            }
        }
        if let Some(width) = close {
            self.bump();
            for _ in 1..width {
                self.bump_blank();
            }
            self.bump();
            self.push_token(TokenKind::Char, "'".to_string(), line);
        } else {
            self.bump();
            self.push_token(TokenKind::Punct, "'".to_string(), line);
        }
    }

    /// At `r` or `b`: raw string / byte string / raw identifier, or a
    /// plain identifier that merely starts with those letters.
    fn maybe_prefixed_literal(&mut self) {
        let line = self.line;
        let c = self.peek(0);
        let (prefix_len, raw) = match (c, self.peek(1)) {
            (Some('b'), Some('"')) => (1, false),
            (Some('b'), Some('r')) if raw_hash_depth(|i| self.peek(2 + i)).is_some() => (2, true),
            (Some('r'), _) if raw_hash_depth(|i| self.peek(1 + i)).is_some() => (1, true),
            (Some('r'), _)
                if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) =>
            {
                // `r#ident` — a raw identifier.
                let mut text = String::new();
                self.bump();
                self.bump();
                text.push_str("r#");
                while let Some(c) = self.peek(0) {
                    if is_ident_continue(c) {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push_token(TokenKind::Ident, text, line);
                return;
            }
            _ => {
                // A plain identifier that merely starts with `r`/`b`.
                self.ident();
                return;
            }
        };
        // A raw or byte string literal: consume the prefix verbatim.
        for _ in 0..prefix_len {
            self.bump();
        }
        if raw {
            let mut hashes = 0usize;
            while self.peek(0) == Some('#') {
                hashes += 1;
                self.bump();
            }
            self.bump(); // the opening `"`
            self.raw_string_body(hashes);
        } else {
            self.bump(); // the opening `"`
            self.cooked_string_body();
        }
        self.push_token(TokenKind::Str, "\"".to_string(), line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if text.is_empty() {
            // Defensive: `ident()` is only called on an ident-start char,
            // but arbitrary input must never loop forever.
            self.bump();
            return;
        }
        self.push_token(TokenKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut float = false;
        let radix_prefixed = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
        if radix_prefixed {
            for _ in 0..2 {
                if let Some(c) = self.bump() {
                    text.push(c);
                }
            }
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            // A fraction only if a digit follows the dot — `1..n` and
            // `1.method()` stay integers.
            if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                text.push('.');
                self.bump();
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            // An exponent only if digits (optionally signed) follow.
            if matches!(self.peek(0), Some('e' | 'E')) {
                let signed = matches!(self.peek(1), Some('+' | '-'));
                let digit_at = if signed { 2 } else { 1 };
                if self.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                    float = true;
                    for _ in 0..digit_at {
                        if let Some(c) = self.bump() {
                            text.push(c);
                        }
                    }
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Type suffix (`u64`, `f32`, …): part of the literal token.
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if !radix_prefixed && (suffix == "f32" || suffix == "f64") {
            float = true;
        }
        text.push_str(&suffix);
        let kind = if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push_token(kind, text, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        if let (Some(a), Some(b)) = (self.peek(0), self.peek(1)) {
            let pair: String = [a, b].iter().collect();
            if TWO_CHAR_PUNCT.contains(&pair.as_str()) {
                self.bump();
                self.bump();
                self.push_token(TokenKind::Punct, pair, line);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push_token(TokenKind::Punct, c.to_string(), line);
        }
    }
}

/// If the chars at `peek(0..)` look like the tail of a raw-string opener
/// (`#`* then `"`), returns the hash depth; `None` otherwise.
fn raw_hash_depth(peek: impl Fn(usize) -> Option<char>) -> Option<usize> {
    let mut hashes = 0usize;
    loop {
        match peek(hashes) {
            Some('#') => hashes += 1,
            Some('"') => return Some(hashes),
            _ => return None,
        }
    }
}

/// The 1-based line ranges (inclusive) of `#[cfg(test)] mod … { … }`
/// blocks: everything inside is test code and exempt from the passes.
pub fn test_mod_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            let mut j = i + 7;
            // Skip any further attributes between `#[cfg(test)]` and the
            // item (`#[allow(…)]`, doc attributes, …).
            while j < tokens.len() && tokens[j].is_punct("#") {
                j = skip_attribute(tokens, j);
            }
            if tokens.get(j).is_some_and(|t| t.is_ident("pub")) {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.is_ident("mod")) {
                // Find the opening brace of the module body.
                let mut k = j + 1;
                while k < tokens.len() && !tokens[k].is_punct("{") && !tokens[k].is_punct(";") {
                    k += 1;
                }
                if tokens.get(k).is_some_and(|t| t.is_punct("{")) {
                    let start_line = tokens[i].line;
                    let end = matching_brace(tokens, k);
                    let end_line = tokens.get(end).map_or(usize::MAX, |t| t.line);
                    ranges.push((start_line, end_line));
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    ranges
}

/// True if `tokens[i..]` starts with exactly `# [ cfg ( test ) ]`.
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let want: [&dyn Fn(&Token) -> bool; 7] = [
        &|t| t.is_punct("#"),
        &|t| t.is_punct("["),
        &|t| t.is_ident("cfg"),
        &|t| t.is_punct("("),
        &|t| t.is_ident("test"),
        &|t| t.is_punct(")"),
        &|t| t.is_punct("]"),
    ];
    want.iter()
        .enumerate()
        .all(|(k, pred)| tokens.get(i + k).is_some_and(pred))
}

/// Given `tokens[i]` == `#`, returns the index just past the attribute's
/// closing `]` (bracket-balanced; robust against malformed input).
fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if !tokens.get(j).is_some_and(|t| t.is_punct("[")) {
        return i + 1;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct("[") {
            depth += 1;
        } else if tokens[j].is_punct("]") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Index of the `}` matching the `{` at `open` (or `tokens.len() - 1` on
/// truncated input).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct("{") {
            depth += 1;
        } else if tokens[j].is_punct("}") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}
