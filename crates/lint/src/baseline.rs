//! The ratcheted finding baseline (`lint-baseline.json`).
//!
//! The baseline records, per pass, how many findings and how many
//! exercised suppression markers the workspace currently carries. A run
//! with `--baseline <file>` then enforces the **ratchet**:
//!
//! * `findings` may never exceed the recorded count — a new finding must
//!   be fixed or triaged with a reasoned marker, it cannot ride in on an
//!   already-dirty pass;
//! * `allows` may never exceed the recorded count either — adding a
//!   marker is a deliberate act, recorded by re-running with
//!   `--update-baseline` so the diff shows up in review;
//! * counts *below* the baseline are reported as tightening opportunities
//!   (run `--update-baseline` to lock the improvement in) but do not fail
//!   the run.
//!
//! `--update-baseline` requires `--pass all`: a partial run has no data
//! for the unselected passes and would silently loosen them.
//!
//! The file is schema-versioned so future format changes can migrate
//! explicitly instead of misparsing.

use std::collections::BTreeMap;
use std::path::Path;

use als_telemetry::json::Json;

use crate::workspace::{LintReport, PassCounts};

/// The baseline schema this build reads and writes.
pub const BASELINE_SCHEMA_VERSION: u64 = 1;

/// A parsed baseline file.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// Per-pass recorded counts.
    pub passes: BTreeMap<String, PassCounts>,
}

/// The outcome of a ratchet comparison.
#[derive(Clone, Debug, Default)]
pub struct RatchetOutcome {
    /// Hard failures: counts above the baseline, or passes missing from it.
    pub regressions: Vec<String>,
    /// Counts now below the baseline — tighten with `--update-baseline`.
    pub tightenable: Vec<String>,
}

impl Baseline {
    /// Loads and validates a baseline file.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("baseline {}: {e}", path.display()))?;
        let schema = json
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("baseline {}: missing `schema`", path.display()))?;
        if schema != BASELINE_SCHEMA_VERSION {
            return Err(format!(
                "baseline {}: schema {schema} unsupported (this build reads {BASELINE_SCHEMA_VERSION})",
                path.display()
            ));
        }
        let mut passes = BTreeMap::new();
        let Some(Json::Obj(map)) = json.get("passes") else {
            return Err(format!(
                "baseline {}: missing `passes` object",
                path.display()
            ));
        };
        for (name, entry) in map {
            let findings = entry
                .get("findings")
                .and_then(Json::as_u64)
                .ok_or_else(|| {
                    format!("baseline {}: `{name}` missing `findings`", path.display())
                })?;
            let allows = entry
                .get("allows")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("baseline {}: `{name}` missing `allows`", path.display()))?;
            passes.insert(
                name.clone(),
                PassCounts {
                    findings: to_usize(findings),
                    allows: to_usize(allows),
                },
            );
        }
        Ok(Baseline { passes })
    }

    /// Compares a run's counts against the baseline. Only passes present
    /// in `report.counts` (i.e. selected ones) are compared, so a
    /// single-pass run ratchets just that pass. The stale-allow audit is
    /// deliberately *not* ratchetable: a stale marker is always an error,
    /// never recorded debt, so it is skipped here and excluded from
    /// [`Baseline::render`].
    pub fn compare(&self, report: &LintReport) -> RatchetOutcome {
        let mut out = RatchetOutcome::default();
        for (pass, now) in &report.counts {
            if pass == crate::passes::STALE_ALLOW {
                continue;
            }
            let Some(base) = self.passes.get(pass) else {
                if now.findings > 0 || now.allows > 0 {
                    out.regressions.push(format!(
                        "pass `{pass}` is not in the baseline but has {} finding(s) and {} allow(s) \
                         (add it with --update-baseline)",
                        now.findings, now.allows
                    ));
                }
                continue;
            };
            if now.findings > base.findings {
                out.regressions.push(format!(
                    "pass `{pass}`: {} finding(s), baseline allows {} — fix them or triage with a \
                     reasoned `// lint:allow({pass}): why` marker",
                    now.findings, base.findings
                ));
            } else if now.findings < base.findings {
                out.tightenable.push(format!(
                    "pass `{pass}`: findings {} → {}",
                    base.findings, now.findings
                ));
            }
            if now.allows > base.allows {
                out.regressions.push(format!(
                    "pass `{pass}`: {} suppression marker(s), baseline records {} — record the new \
                     triage with --update-baseline so it shows up in review",
                    now.allows, base.allows
                ));
            } else if now.allows < base.allows {
                out.tightenable.push(format!(
                    "pass `{pass}`: allows {} → {}",
                    base.allows, now.allows
                ));
            }
        }
        out
    }

    /// Renders the baseline for a report's counts.
    pub fn render(report: &LintReport) -> String {
        let mut passes = Json::object();
        for (pass, counts) in &report.counts {
            if pass == crate::passes::STALE_ALLOW {
                continue;
            }
            let mut entry = Json::object();
            entry.set("findings", counts.findings);
            entry.set("allows", counts.allows);
            passes.set(pass, entry);
        }
        let mut root = Json::object();
        root.set("schema", BASELINE_SCHEMA_VERSION);
        root.set("passes", passes);
        root.render_pretty()
    }

    /// Writes the baseline for a report's counts.
    pub fn update(path: &Path, report: &LintReport) -> Result<(), String> {
        std::fs::write(path, Baseline::render(report))
            .map_err(|e| format!("cannot write baseline {}: {e}", path.display()))
    }
}

/// Lossless u64 → usize on every supported target (counts are tiny).
fn to_usize(n: u64) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}
