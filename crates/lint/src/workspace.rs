//! The lint driver: file discovery, pass execution, suppression markers,
//! and the stale-suppression audit.
//!
//! ## What gets scanned
//!
//! Library code only: the root crate's `src/` and every workspace member's
//! `src/`, minus
//!
//! * `src/bin/` CLI trees (a process abort is a process abort),
//! * `tests/` trees and `#[cfg(test)] mod` blocks (asserting is the point),
//! * the in-tree `proptest`/`criterion` shims (they mirror upstream,
//!   panic-based APIs).
//!
//! ## Suppression markers
//!
//! A finding is suppressed by a comment marker on the same line or on a
//! directly adjacent one (rustfmt may move a trailing comment onto its own
//! line):
//!
//! ```text
//! // lint:allow(<pass>): <why>
//! ```
//!
//! The reason is mandatory. The **stale-allow** audit closes the loop: a
//! marker that names an unknown pass, lacks a reason, or no longer
//! suppresses anything (the offending line was fixed or moved away) is
//! itself an error, so suppressions can never silently outlive the code
//! they were written for.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::passes::{self, STALE_ALLOW};
use crate::scanner;

/// Crate directories exempt wholesale: API-compatible shims of external
/// crates whose interfaces are panic-based.
const EXEMPT_CRATES: [&str; 2] = ["crates/proptest", "crates/criterion"];

/// The marker prefix searched for inside comments.
const MARKER: &str = "lint:allow(";

/// Which passes a run executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Selection {
    /// Every registered pass plus the stale-allow audit.
    All,
    /// A single pass by name (possibly [`STALE_ALLOW`]).
    One(String),
}

impl Selection {
    /// Parses a `--pass` argument.
    pub fn parse(name: &str) -> Result<Selection, String> {
        if name == "all" {
            return Ok(Selection::All);
        }
        if passes::pass_names().contains(&name) {
            return Ok(Selection::One(name.to_string()));
        }
        Err(format!(
            "unknown pass `{name}` (expected one of: {}, all)",
            passes::pass_names().join(", ")
        ))
    }

    fn runs(&self, name: &str) -> bool {
        match self {
            Selection::All => true,
            Selection::One(one) => one == name,
        }
    }
}

/// A reported finding (post-suppression), or a stale-marker audit error.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The pass that produced it ([`STALE_ALLOW`] for audit errors).
    pub pass: String,
    /// Workspace-relative path.
    pub path: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// The offending construct.
    pub construct: String,
    /// The raw source line, trimmed.
    pub excerpt: String,
}

/// One exercised suppression marker.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The pass the marker suppresses.
    pub pass: String,
    /// Workspace-relative path.
    pub path: PathBuf,
    /// 1-based line of the marker.
    pub line: usize,
}

/// Per-pass totals, the unit the baseline ratchets on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassCounts {
    /// Unsuppressed findings.
    pub findings: usize,
    /// Markers that suppressed at least one finding.
    pub allows: usize,
}

/// The outcome of linting a set of files.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Files scanned.
    pub files_scanned: usize,
    /// Unsuppressed findings, including stale-marker audit errors.
    pub findings: Vec<Finding>,
    /// Exercised markers.
    pub allows: Vec<Allow>,
    /// Per-pass totals for every *selected* pass (always including an
    /// entry, so a clean pass ratchets at zero).
    pub counts: BTreeMap<String, PassCounts>,
}

impl LintReport {
    /// True when nothing was found (stale markers included).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// A parsed suppression marker.
#[derive(Clone, Debug)]
struct Marker {
    line: usize,
    pass: String,
    has_reason: bool,
    exercised: bool,
}

/// Lints one in-memory source text. This is the unit the fixture suite
/// drives directly; [`lint_workspace`] maps it over the discovered files.
pub fn lint_text(rel_path: &Path, src: &str, selection: &Selection, report: &mut LintReport) {
    report.files_scanned += 1;
    let scan = scanner::scan(src);
    let test_ranges = scanner::test_mod_ranges(&scan.tokens);
    let in_tests = |line: usize| test_ranges.iter().any(|&(lo, hi)| line >= lo && line <= hi);
    let lines: Vec<&str> = src.lines().collect();
    let excerpt = |line: usize| {
        lines
            .get(line.saturating_sub(1))
            .map_or_else(String::new, |l| l.trim().to_string())
    };

    let mut markers = collect_markers(&scan.comments);
    markers.retain(|m| !in_tests(m.line));

    // Under `--pass stale-allow` every pass still *executes* (audit-only):
    // marker liveness is only decidable from the full raw-finding set.
    let audit_selected = selection.runs(STALE_ALLOW);
    for pass in passes::registry() {
        if !selection.runs(pass.name()) && !audit_selected {
            continue;
        }
        let raw = pass.check(&scan.tokens);
        let counts = report.counts.entry(pass.name().to_string()).or_default();
        let audit_only = !selection.runs(pass.name());
        for f in raw {
            if in_tests(f.line) {
                continue;
            }
            // Prefer the same-line marker over an adjacent one, and an
            // unexercised marker over an exercised one: with markers on
            // consecutive lines each must pair with its own finding, or a
            // genuinely stale neighbour would be masked.
            let best = markers
                .iter_mut()
                .filter(|m| m.pass == pass.name() && m.line.abs_diff(f.line) <= 1)
                .min_by_key(|m| (m.line.abs_diff(f.line), m.exercised));
            if let Some(marker) = best {
                // Suppressed. Count each marker once, however many
                // findings it covers.
                if !marker.exercised {
                    marker.exercised = true;
                    counts.allows += 1;
                    report.allows.push(Allow {
                        pass: pass.name().to_string(),
                        path: rel_path.to_path_buf(),
                        line: marker.line,
                    });
                }
                continue;
            }
            if audit_only {
                // Running `--pass stale-allow` alone: the other passes are
                // executed solely to decide marker liveness.
                continue;
            }
            counts.findings += 1;
            report.findings.push(Finding {
                pass: pass.name().to_string(),
                path: rel_path.to_path_buf(),
                line: f.line,
                construct: f.construct,
                excerpt: excerpt(f.line),
            });
        }
        if audit_only {
            report.counts.remove(pass.name());
        }
    }

    if selection.runs(STALE_ALLOW) {
        let counts = report.counts.entry(STALE_ALLOW.to_string()).or_default();
        let known: Vec<&str> = passes::registry().iter().map(|p| p.name()).collect();
        for marker in &markers {
            let problem = if !known.contains(&marker.pass.as_str()) {
                Some(format!(
                    "marker names unknown pass `{}` (known: {})",
                    marker.pass,
                    known.join(", ")
                ))
            } else if !marker.has_reason {
                Some(format!(
                    "marker `lint:allow({})` has no `: why` reason",
                    marker.pass
                ))
            } else if !marker.exercised {
                Some(format!(
                    "stale marker: `lint:allow({})` no longer suppresses anything here",
                    marker.pass
                ))
            } else {
                None
            };
            if let Some(construct) = problem {
                counts.findings += 1;
                report.findings.push(Finding {
                    pass: STALE_ALLOW.to_string(),
                    path: rel_path.to_path_buf(),
                    line: marker.line,
                    construct,
                    excerpt: excerpt(marker.line),
                });
            }
        }
    }
}

/// Parses every `lint:allow(<pass>)[: reason]` occurrence in the comment
/// stream. Only kebab-shaped names (lowercase ASCII and `-`) count as
/// markers: pass names and their typos look like that, while documentation
/// placeholders (`<pass>`, `{}`, `…`) do not — so prose *about* the marker
/// syntax never registers as a marker itself.
fn collect_markers(comments: &[(usize, String)]) -> Vec<Marker> {
    let mut out = Vec::new();
    for (line, text) in comments {
        let mut from = 0usize;
        while let Some(pos) = text.get(from..).and_then(|t| t.find(MARKER)) {
            let name_start = from + pos + MARKER.len();
            let rest = text.get(name_start..).unwrap_or_default();
            let Some(close) = rest.find(')') else {
                break;
            };
            let name = rest.get(..close).unwrap_or_default().trim().to_string();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
                from = name_start + close;
                continue;
            }
            let after = rest.get(close + 1..).unwrap_or_default();
            let has_reason = after
                .trim_start()
                .strip_prefix(':')
                .is_some_and(|r| !r.trim().is_empty());
            out.push(Marker {
                line: *line,
                pass: name,
                has_reason,
                exercised: false,
            });
            from = name_start + close;
        }
    }
    out
}

/// Lints every library source file under `root`.
pub fn lint_workspace(root: &Path, selection: &Selection) -> Result<LintReport, String> {
    let mut report = LintReport::default();
    for dir in library_src_dirs(root) {
        for file in rust_files(&dir) {
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            lint_text(&rel, &text, selection, &mut report);
        }
    }
    Ok(report)
}

/// Walks upward from the current directory to the workspace root (the
/// directory whose Cargo.toml declares `[workspace]`).
pub fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Every library `src/` tree: the root crate plus each workspace member,
/// minus the exempt shims.
fn library_src_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut members: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let rel = member.strip_prefix(root).unwrap_or(&member);
            if EXEMPT_CRATES.iter().any(|e| Path::new(e) == rel) {
                continue;
            }
            let src = member.join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    dirs
}

/// All `.rs` files under `dir`, skipping `src/bin/` CLI trees, in sorted
/// order so reports are deterministic.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        if d.file_name().is_some_and(|n| n == "bin") {
            continue;
        }
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}
