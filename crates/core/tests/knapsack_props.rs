//! Property-based tests for the multi-state knapsack solver.

use als_core::knapsack::{solve, KnapsackItem, KnapsackState};
use proptest::prelude::*;

fn brute_force(items: &[KnapsackItem], capacity: u64) -> u64 {
    fn rec(items: &[KnapsackItem], i: usize, cap_left: u64) -> u64 {
        if i == items.len() {
            return 0;
        }
        let mut best = rec(items, i + 1, cap_left);
        for s in &items[i].states {
            if s.weight <= cap_left {
                best = best.max(s.value + rec(items, i + 1, cap_left - s.weight));
            }
        }
        best
    }
    rec(items, 0, capacity)
}

fn arb_items() -> impl Strategy<Value = Vec<KnapsackItem>> {
    proptest::collection::vec(
        proptest::collection::vec((0u64..15, 0u64..10), 0..4).prop_map(|states| KnapsackItem {
            states: states
                .into_iter()
                .map(|(weight, value)| KnapsackState { weight, value })
                .collect(),
        }),
        0..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dp_matches_brute_force(items in arb_items(), capacity in 0u64..40) {
        let expect = brute_force(&items, capacity);
        for filter in [true, false] {
            let sol = solve(&items, capacity, filter);
            prop_assert_eq!(sol.total_value, expect, "filter={}", filter);
            // Selection is consistent and feasible.
            let mut w = 0u64;
            let mut v = 0u64;
            for (item, choice) in items.iter().zip(&sol.choices) {
                if let Some(c) = choice {
                    w += item.states[*c].weight;
                    v += item.states[*c].value;
                }
            }
            prop_assert_eq!(v, sol.total_value);
            prop_assert_eq!(w, sol.total_weight);
            prop_assert!(w <= capacity);
        }
    }

    #[test]
    fn value_monotone_in_capacity(items in arb_items(), capacity in 0u64..30) {
        let a = solve(&items, capacity, true).total_value;
        let b = solve(&items, capacity + 1, true).total_value;
        prop_assert!(b >= a, "more capacity can never hurt");
    }

    #[test]
    fn adding_an_item_never_hurts(items in arb_items(), extra in
        proptest::collection::vec((0u64..15, 0u64..10), 0..4), capacity in 0u64..30)
    {
        let base = solve(&items, capacity, true).total_value;
        let mut bigger = items.clone();
        bigger.push(KnapsackItem {
            states: extra
                .into_iter()
                .map(|(weight, value)| KnapsackState { weight, value })
                .collect(),
        });
        let with_extra = solve(&bigger, capacity, true).total_value;
        prop_assert!(with_extra >= base, "an extra candidate can never hurt");
    }
}
