//! Telemetry integration: the counters the engine reports are *exact* on a
//! fixed circuit, every algorithm populates `AlsOutcome::metrics`, and the
//! event stream is consistent with the iteration log.

use als_circuits::adders::ripple_carry_adder;
use als_core::{
    approximate, AlsConfig, AlsContext, CandidateEngine, MetricsCollector, PatternPolicy, Strategy,
    Telemetry,
};
use std::sync::Arc;

fn config_with(collector: &Arc<MetricsCollector>) -> AlsConfig {
    AlsConfig::builder()
        .threshold(0.05)
        .patterns(PatternPolicy::Fixed(512))
        .telemetry(collector.clone())
        .build()
        .expect("test config is valid")
}

#[test]
fn refresh_counters_are_exact_on_a_fixed_circuit() {
    let net = ripple_carry_adder(3);
    let n = net.num_internal() as u64;
    assert!(n > 0);

    let collector = Arc::new(MetricsCollector::new());
    let config = config_with(&collector);
    let ctx = AlsContext::new(&net, &config);
    let mut engine = CandidateEngine::new(&config, true);

    // First refresh on an empty cache: every node is a miss.
    engine.refresh(&net, &ctx);
    let r = collector.report();
    assert_eq!(r.refreshes, 1);
    assert_eq!(r.evaluations, n, "all {n} nodes evaluated");
    assert_eq!(r.cache_hits, 0);
    assert_eq!(r.cache_misses(), n);

    // Second refresh of the unchanged network: every node is a hit.
    engine.refresh(&net, &ctx);
    let r = collector.report();
    assert_eq!(r.refreshes, 2);
    assert_eq!(r.evaluations, n, "nothing re-evaluated");
    assert_eq!(r.cache_hits, n);
    assert_eq!(r.cache_hit_rate(), 0.5);
}

#[test]
fn disabled_cache_reports_all_misses() {
    let net = ripple_carry_adder(3);
    let n = net.num_internal() as u64;

    let collector = Arc::new(MetricsCollector::new());
    let mut config = config_with(&collector);
    config.cache = false;
    let ctx = AlsContext::new(&net, &config);
    let mut engine = CandidateEngine::new(&config, true);

    engine.refresh(&net, &ctx);
    engine.refresh(&net, &ctx);
    let r = collector.report();
    assert_eq!(r.evaluations, 2 * n, "no cache: every refresh re-evaluates");
    assert_eq!(r.cache_hits, 0);
    assert_eq!(r.cache_hit_rate(), 0.0);
}

#[test]
fn every_algorithm_populates_outcome_metrics() {
    let net = ripple_carry_adder(4);
    let config = AlsConfig::builder()
        .threshold(0.05)
        .patterns(PatternPolicy::Fixed(512))
        .build()
        .unwrap();
    for (strategy, name) in [
        (Strategy::Single, "single-selection"),
        (Strategy::Multi, "multi-selection"),
        (Strategy::Sasimi, "sasimi"),
    ] {
        let out = approximate(&net, strategy, &config).unwrap();
        let m = &out.metrics;
        assert_eq!(m.algorithm, name);
        assert!(m.measurements > 0, "{name}: no measurements recorded");
        assert!(m.simulations > 0, "{name}: no simulations recorded");
        assert!(
            m.total_time() >= m.phase_nanos.get(als_core::PhaseKind::Simulate),
            "{name}: total time below a phase time"
        );
        // One IterationMetrics entry per committed iteration.
        assert_eq!(
            m.iterations.len(),
            out.iterations.len(),
            "{name}: metrics iteration log out of sync"
        );
        for (im, ir) in m.iterations.iter().zip(&out.iterations) {
            assert_eq!(im.iteration, ir.iteration as u64);
            assert_eq!(im.literals, ir.literals_after as u64);
            assert_eq!(im.error_rate, ir.error_rate_after);
        }
    }
}

#[test]
fn multi_selection_reports_knapsack_work() {
    let net = ripple_carry_adder(4);
    let config = AlsConfig::builder()
        .threshold(0.05)
        .patterns(PatternPolicy::Fixed(512))
        .build()
        .unwrap();
    let out = approximate(&net, Strategy::Multi, &config).unwrap();
    assert!(out.metrics.knapsack_solves > 0);
    assert!(out.metrics.knapsack_dp_cells > 0);
}

#[test]
fn telemetry_handle_is_cheap_when_disabled() {
    let telemetry = Telemetry::disabled();
    assert!(!telemetry.is_enabled());
    // `emit` must not even build the event.
    telemetry.emit(|| panic!("event constructed with no sinks attached"));
    // `start` must not sample the clock.
    assert!(telemetry.start().is_none());
    assert_eq!(Telemetry::nanos_since(None), 0);
}
