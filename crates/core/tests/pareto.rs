//! Properties of the sweep module's Pareto machinery: dominance is a strict
//! partial order, frontier extraction is idempotent, and perturbing a point
//! strictly worse always tags it dominated.

use als_core::sweep::{dominates, mark_frontier, SweepPoint};
use proptest::prelude::*;

fn point(lits: u64, delay: f64, er: f64) -> SweepPoint {
    SweepPoint {
        algorithm: "single-selection".into(),
        threshold: 0.05,
        patterns: "fixed:512".into(),
        delay_weight: "off".into(),
        literals: lits,
        literal_ratio: 1.0,
        area: lits as f64, // lint:allow(as-cast): test helper
        area_ratio: 1.0,
        delay,
        delay_ratio: 1.0,
        error_rate: er,
        runtime_s: 0.0,
        dominated: false,
    }
}

/// A small objective-space generator: coarse grids keep ties and
/// dominated/non-dominated mixtures common instead of vanishingly rare.
fn objectives() -> impl Strategy<Value = [f64; 3]> {
    (0u64..6, 0u64..6, 0u64..6).prop_map(|(a, b, c)| {
        [a as f64, b as f64 / 2.0, c as f64 / 10.0] // lint:allow(as-cast): small grid coords, exact in f64
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Irreflexivity and antisymmetry: nothing dominates itself, and
    /// domination never holds in both directions.
    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(a in objectives(), b in objectives()) {
        prop_assert!(!dominates(a, a));
        prop_assert!(!(dominates(a, b) && dominates(b, a)));
    }

    /// Transitivity: a ≻ b and b ≻ c imply a ≻ c.
    #[test]
    fn dominance_is_transitive(a in objectives(), b in objectives(), c in objectives()) {
        if dominates(a, b) && dominates(b, c) {
            prop_assert!(dominates(a, c));
        }
    }

    /// The frontier of a frontier is itself: re-marking only the
    /// non-dominated points never tags anything new.
    #[test]
    fn frontier_of_a_frontier_is_itself(
        objs in proptest::collection::vec(objectives(), 1..12)
    ) {
        let mut points: Vec<SweepPoint> = objs
            .iter()
            .map(|o| {
                point(o[0] as u64, o[1], o[2]) // lint:allow(as-cast): grid coords are small non-negative integers
            })
            .collect();
        mark_frontier(&mut points);
        let mut frontier: Vec<SweepPoint> =
            points.iter().filter(|p| !p.dominated).cloned().collect();
        prop_assert!(!frontier.is_empty(), "a finite set always has a frontier");
        mark_frontier(&mut frontier);
        prop_assert!(
            frontier.iter().all(|p| !p.dominated),
            "re-marking the frontier tagged a point dominated"
        );
    }

    /// A point strictly worsened in one objective (and no better anywhere)
    /// is tagged dominated when its original stays in the set.
    #[test]
    fn perturbed_duplicate_is_tagged_dominated(
        objs in proptest::collection::vec(objectives(), 1..10),
        victim in 0usize..10,
        axis in 0usize..3,
    ) {
        let victim = victim % objs.len();
        let mut points: Vec<SweepPoint> = objs
            .iter()
            .map(|o| {
                point(o[0] as u64, o[1], o[2]) // lint:allow(as-cast): grid coords are small non-negative integers
            })
            .collect();
        let mut worse = points[victim].clone();
        match axis {
            0 => worse.literals += 1,
            1 => worse.delay += 0.25,
            _ => worse.error_rate += 0.05,
        }
        points.push(worse);
        mark_frontier(&mut points);
        prop_assert!(
            points.last().unwrap().dominated,
            "a strictly worse copy of a surviving point must be dominated"
        );
    }
}

/// Equal points never dominate each other, so duplicates all stay on the
/// frontier together (dominance is strict).
#[test]
fn equal_points_are_mutually_non_dominating() {
    let mut points = vec![point(5, 2.0, 0.01), point(5, 2.0, 0.01)];
    mark_frontier(&mut points);
    assert!(!points[0].dominated);
    assert!(!points[1].dominated);
}
