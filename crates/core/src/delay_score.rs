//! Delay-aware candidate-gain adjustment — the [`DelayWeight`] policy.
//!
//! When the policy is [`DelayWeight::Scaled`], the selection algorithms
//! price every candidate's literal gain against the *estimated*
//! critical-path impact of substituting it, using the technology mapper's
//! incremental [`DelayMap`]. When the policy is [`DelayWeight::Off`] no
//! scorer is even constructed: the legacy scoring code runs unchanged, so
//! outcomes stay byte-identical to pre-policy releases (pinned by the
//! `delay_weight_off_is_byte_identical` determinism test).

use crate::ase::Ase;
use crate::config::DelayWeight;
use als_mapper::{expr_delay, DelayMap, Library};
use als_network::{Network, NodeId};

/// Fixed-point scale for delay-adjusted knapsack values: gains are priced
/// in 1/64ths of a literal so fractional delay penalties survive the
/// integer DP without inflating its table.
pub(crate) const GAIN_SCALE: f64 = 64.0;

/// Library + incremental delay map + penalty weight, bundled for the
/// selection loops.
#[derive(Debug)]
pub(crate) struct DelayScorer {
    lib: Library,
    map: DelayMap,
    weight: f64,
}

impl DelayScorer {
    /// Builds a scorer when the policy is enabled, `None` otherwise — the
    /// `Off` path must not construct (or pay for) anything.
    pub(crate) fn new(net: &Network, policy: DelayWeight) -> Option<Self> {
        let DelayWeight::Scaled(weight) = policy else {
            return None;
        };
        let lib = Library::mcnc_like();
        let map = DelayMap::build(net, &lib);
        Some(DelayScorer { lib, map, weight })
    }

    /// The candidate's literal gain minus `weight ×` the estimated
    /// critical-path change of the substitution, clamped at zero. Clamping
    /// keeps the adjusted gain a valid knapsack value and score numerator;
    /// rejecting candidates outright remains the error budget's job.
    pub(crate) fn adjusted_gain(&self, net: &Network, node: NodeId, ase: &Ase) -> f64 {
        let fanins = net.node(node).fanins().len();
        let new_local = expr_delay(&self.lib, &ase.expr, fanins);
        let delta = self.map.query_delta(node, new_local);
        let gain = ase.literals_saved as f64 - self.weight * delta; // lint:allow(as-cast): literal counts << 2^52, exact in f64
        gain.max(0.0)
    }

    /// Refreshes arrivals through the fanout cone of in-place rewrites
    /// (single-selection commits: one node, structure otherwise stable).
    pub(crate) fn update_cone(&mut self, net: &Network, changed: &[NodeId]) {
        self.map.update_cone(net, &self.lib, changed);
    }

    /// Rebuilds the map from scratch — needed after constant propagation
    /// restructures the network (multi-selection batches).
    pub(crate) fn rebuild(&mut self, net: &Network) {
        self.map = DelayMap::build(net, &self.lib);
    }
}

/// The delay-adjusted analogue of [`crate::error_model::score`]: adjusted
/// gain per unit of estimated error, +∞ for free (zero-error) candidates.
pub(crate) fn score_gain(gain: f64, error_estimate: f64) -> f64 {
    if error_estimate <= 0.0 {
        f64::INFINITY
    } else {
        gain / error_estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ase::generate_ases;
    use als_circuits::adders::ripple_carry_adder;

    #[test]
    fn off_builds_nothing() {
        let net = ripple_carry_adder(2);
        assert!(DelayScorer::new(&net, DelayWeight::Off).is_none());
        assert!(DelayScorer::new(&net, DelayWeight::Scaled(1.0)).is_some());
    }

    #[test]
    fn zero_weight_reproduces_plain_literal_gains() {
        let net = ripple_carry_adder(2);
        let scorer = DelayScorer::new(&net, DelayWeight::Scaled(0.0)).unwrap();
        for id in net.internal_ids().collect::<Vec<_>>() {
            let node = net.node(id);
            let k = node.fanins().len();
            for ase in generate_ases(node.expr(), k, 5) {
                let gain = scorer.adjusted_gain(&net, id, &ase);
                assert_eq!(gain, ase.literals_saved as f64);
            }
        }
    }

    #[test]
    fn heavier_weights_never_increase_a_penalized_gain() {
        let net = ripple_carry_adder(3);
        let light = DelayScorer::new(&net, DelayWeight::Scaled(0.1)).unwrap();
        let heavy = DelayScorer::new(&net, DelayWeight::Scaled(10.0)).unwrap();
        for id in net.internal_ids().collect::<Vec<_>>() {
            let node = net.node(id);
            let k = node.fanins().len();
            for ase in generate_ases(node.expr(), k, 5) {
                let l = light.adjusted_gain(&net, id, &ase);
                let h = heavy.adjusted_gain(&net, id, &ase);
                // Constants shorten paths (delta ≤ 0) so heavier weights can
                // only help there; where the delta is positive, heavier
                // weights must penalize at least as hard.
                if l < ase.literals_saved as f64 {
                    assert!(h <= l + 1e-12, "penalty shrank with weight");
                }
            }
        }
    }

    #[test]
    fn score_gain_mirrors_the_paper_score() {
        assert_eq!(score_gain(2.0, 0.0), f64::INFINITY);
        assert!((score_gain(3.0, 0.01) - 300.0).abs() < 1e-9);
        assert!(score_gain(1.0, 0.5) < score_gain(2.0, 0.5));
    }
}
