use crate::{AlsError, CancelToken};
use als_dontcare::DontCareConfig;
use als_sim::{DEFAULT_NUM_PATTERNS, MAX_LOCAL_FANINS};
use als_telemetry::Telemetry;

/// How the engine refreshes signatures after an applied change.
///
/// Both modes produce byte-identical results (the measurement arithmetic is
/// shared word-for-word); [`Full`](ResimMode::Full) exists as a cross-check
/// and debugging escape hatch, like disabling the candidate cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ResimMode {
    /// Incremental dirty-set resimulation: after each change only the
    /// transitive fanout of the rewritten nodes is re-evaluated, with
    /// word-wise early exit. The default.
    #[default]
    Incremental,
    /// Fully resimulate every live node after every applied change.
    Full,
}

impl ResimMode {
    /// Whether every update degrades to a full resimulation.
    #[inline]
    #[must_use]
    pub fn is_full(self) -> bool {
        matches!(self, ResimMode::Full)
    }
}

/// Whether the engine discards candidates whose *static* lower error bound
/// (abstract interpretation over fanin popcounts, see the `als-absint`
/// crate) already exceeds the remaining budget, skipping their
/// local-pattern gather.
///
/// Pruning is semantics-preserving: outcomes are identical with it on or
/// off — [`Off`](PrunePolicy::Off) is a cross-check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PrunePolicy {
    /// Prune candidates via the static abstract-interpretation bound. The
    /// default.
    #[default]
    Static,
    /// Evaluate every candidate.
    Off,
}

impl PrunePolicy {
    /// Whether static pruning is active.
    #[inline]
    #[must_use]
    pub fn is_enabled(self) -> bool {
        matches!(self, PrunePolicy::Static)
    }
}

/// Whether candidate scoring penalizes the mapped-delay impact of a
/// substitution's cone.
///
/// Under [`Off`](DelayWeight::Off) (the default) candidates are ranked by
/// the paper's literals-per-error score alone and results are byte-identical
/// to every pre-delay-scoring release. Under
/// [`Scaled`](DelayWeight::Scaled)`(w)` the literal gain of each candidate
/// is reduced by `w ×` the *estimated* critical-path change of substituting
/// it (computed incrementally from the technology mapper's cell delays; see
/// `als-mapper`'s `DelayMap`), steering the search toward points that trade
/// fewer literals for shorter critical paths. The estimate prices the
/// rewritten node's local cell tree only — it is a scoring heuristic, not a
/// timing sign-off; sweep reports always re-map the final network for the
/// real delay.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum DelayWeight {
    /// Rank candidates by the paper's score alone. The default.
    #[default]
    Off,
    /// Subtract `weight × estimated-delay-delta` from each candidate's
    /// literal gain before scoring. The weight must be finite and
    /// non-negative; `Scaled(0.0)` keeps rankings identical to `Off` but
    /// still exercises the delay-estimation path.
    Scaled(f64),
}

impl DelayWeight {
    /// Whether delay-aware scoring is active.
    #[inline]
    #[must_use]
    pub fn is_enabled(self) -> bool {
        matches!(self, DelayWeight::Scaled(_))
    }

    /// The penalty weight (`0.0` when off).
    #[inline]
    #[must_use]
    pub fn weight(self) -> f64 {
        match self {
            DelayWeight::Off => 0.0,
            DelayWeight::Scaled(w) => w,
        }
    }
}

/// How many random simulation vectors each candidate evaluation uses.
///
/// **Tail-mask rounding:** stimulus is stored 64 patterns per machine word.
/// The random generator rounds a requested count **up** to a whole number
/// of words (the paper's 10 000 becomes 10 048), so under both policies the
/// effective count is the rounded value and every stored word is fully
/// populated; pattern sets built from explicit vectors keep exact
/// non-multiple-of-64 counts by masking the unused high bits of the final
/// word out of every count (the canonical-tail rule).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatternPolicy {
    /// Always simulate the full pattern budget (the paper's scheme).
    Fixed(usize),
    /// Start each candidate trial at `min` patterns and double toward `max`
    /// only while the sample-sound interval around the measured error rate
    /// still straddles the accept/reject boundary. Committed rates are
    /// always confirmed at the full `max` budget, so outcomes are
    /// byte-identical to `Fixed(max)` — adaptivity only changes how much
    /// work *rejected* or clearly-decided candidates cost.
    Adaptive {
        /// Pattern count of the first probe round (rounded up to whole
        /// 64-pattern words). Must be positive and at most `max`.
        min: usize,
        /// The full budget every committed rate is confirmed at.
        max: usize,
    },
}

impl PatternPolicy {
    /// The full pattern budget: the fixed count, or `max` for adaptive
    /// sampling. This is the count every committed error rate is measured
    /// at.
    #[inline]
    #[must_use]
    pub fn budget(&self) -> usize {
        match *self {
            PatternPolicy::Fixed(n) => n,
            PatternPolicy::Adaptive { max, .. } => max,
        }
    }

    /// The adaptive starting count, or `None` under fixed sampling.
    #[inline]
    #[must_use]
    pub fn adaptive_min(&self) -> Option<usize> {
        match *self {
            PatternPolicy::Fixed(_) => None,
            PatternPolicy::Adaptive { min, .. } => Some(min),
        }
    }
}

impl Default for PatternPolicy {
    /// The paper's fixed 10 000-vector scheme (rounded to 10 048).
    fn default() -> Self {
        PatternPolicy::Fixed(DEFAULT_NUM_PATTERNS)
    }
}

/// An optional constraint on the numeric **error magnitude** — the paper's
/// named future-work extension (§7). The POs are interpreted little-endian
/// (PO `i` weighs `2^i`, the convention of the arithmetic benchmark
/// generators); a candidate change is rejected if the worst absolute
/// deviation over the simulation patterns exceeds `max_abs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MagnitudeConstraint {
    /// The largest tolerated absolute deviation.
    pub max_abs: u128,
}

/// Configuration shared by all three algorithms.
///
/// Build one with [`AlsConfig::builder`] (non-panicking, validated) or
/// [`AlsConfig::with_threshold`] (paper defaults, panics on a bad
/// threshold); individual fields stay public and can be adjusted after
/// construction. The struct is `#[non_exhaustive]`: new knobs may appear in
/// minor releases without breaking downstream builds.
#[derive(Clone, Debug)]
#[non_exhaustive]
// The bools are independent feature toggles (ablations and engine
// selection), not an encoded state machine.
#[allow(clippy::struct_excessive_bools)]
pub struct AlsConfig {
    /// The error rate threshold `T` (fraction of PI vectors allowed to
    /// produce a wrong output).
    pub threshold: f64,
    /// The pattern-count policy: a fixed budget (paper: 10 000) or adaptive
    /// growth between a minimum and the budget.
    pub patterns: PatternPolicy,
    /// Seed for the random stimulus (results are deterministic per seed).
    pub seed: u64,
    /// Windowing/engine settings for SDC/ODC computation.
    pub dont_care: DontCareConfig,
    /// Whether the single-selection estimate discards don't-care ELIPs
    /// (§3.3). Disabling this is the ablation that degrades the estimate to
    /// the apparent error rate.
    pub use_dont_cares: bool,
    /// Use the exact BDD-based don't-care engine instead of the paper's
    /// windowed one (falls back to windowed when the BDD exceeds
    /// `exact_dc_node_limit`). An upper-bound-tightening extension.
    pub exact_dont_cares: bool,
    /// Node budget for the exact BDD engine.
    pub exact_dc_node_limit: usize,
    /// The paper enumerates all `2^N` ASEs only when `N <` this bound
    /// (paper: 5); larger nodes get removals of fewer literals plus the two
    /// constants.
    pub max_enum_literals: usize,
    /// Nodes with more fanins than this are skipped (local-pattern tables
    /// grow as `2^k`).
    pub max_fanins: usize,
    /// Hard cap on iterations (safety net; the algorithms terminate on their
    /// own when no feasible change remains).
    pub max_iterations: usize,
    /// Multi-selection only: when a committed batch overshoots the measured
    /// threshold, retry the iteration with the knapsack capacity halved
    /// (instead of terminating). Off by default to match the paper.
    pub retry_on_overshoot: bool,
    /// Run the same-support/same-signature redundancy-removal pre-process
    /// (§6) before the main loop.
    pub preprocess: bool,
    /// Optional error-magnitude constraint enforced *in addition to* the
    /// error-rate threshold (the §7 future-work extension).
    pub magnitude: Option<MagnitudeConstraint>,
    /// Worker threads for the candidate-evaluation engine: `0` uses the
    /// machine's available parallelism, `1` (the default) keeps evaluation
    /// on the calling thread. Results are byte-identical for every setting.
    pub threads: usize,
    /// Whether the engine memoizes node evaluations between iterations
    /// (incremental cone invalidation). Disabling re-evaluates every node
    /// every iteration — an expensive but occasionally useful cross-check,
    /// guaranteed to produce identical results.
    pub cache: bool,
    /// Resimulation policy after applied changes (incremental dirty-set by
    /// default; see [`ResimMode`]).
    pub resim: ResimMode,
    /// Static candidate-pruning policy (see [`PrunePolicy`]).
    pub pruning: PrunePolicy,
    /// Delay-aware candidate-scoring policy (see [`DelayWeight`]). Off by
    /// default: the paper's flow is area-only, and `Off` is guaranteed
    /// byte-identical to releases that predate the policy. Applies to the
    /// greedy single-selection ranking and the multi-selection knapsack
    /// values; SASIMI's signal-substitution scoring is unaffected.
    pub delay_weight: DelayWeight,
    /// Telemetry sinks observing the run (see [`als_telemetry`]). Disabled
    /// by default: the engine then skips event construction entirely, and
    /// results are byte-identical with any sink attached.
    pub telemetry: Telemetry,
    /// Cooperative cancellation token (see [`CancelToken`]): the selection
    /// loops poll it once per iteration and stop cleanly when it has been
    /// tripped, returning the (valid, threshold-satisfying) network built so
    /// far. Inert by default — an untripped or inert token never changes
    /// results.
    pub cancel: CancelToken,
}

impl AlsConfig {
    /// A configuration with the given error-rate threshold and paper-default
    /// settings everywhere else.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ threshold < 1`; see [`AlsConfig::builder`] for the
    /// non-panicking path.
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&threshold),
            "threshold must be a rate in [0, 1)"
        );
        AlsConfig {
            threshold,
            patterns: PatternPolicy::default(),
            seed: 0xA15_5EED,
            dont_care: DontCareConfig::default(),
            use_dont_cares: true,
            exact_dont_cares: false,
            exact_dc_node_limit: 1 << 18,
            max_enum_literals: 5,
            max_fanins: 10,
            max_iterations: 10_000,
            retry_on_overshoot: false,
            preprocess: true,
            magnitude: None,
            threads: 1,
            cache: true,
            resim: ResimMode::Incremental,
            pruning: PrunePolicy::Static,
            delay_weight: DelayWeight::Off,
            telemetry: Telemetry::disabled(),
            cancel: CancelToken::none(),
        }
    }

    /// The full pattern budget of the active [`PatternPolicy`] — the count
    /// every committed error rate is measured at.
    #[inline]
    #[must_use]
    pub fn pattern_budget(&self) -> usize {
        self.patterns.budget()
    }

    /// A validating, non-panicking builder seeded with the paper defaults
    /// (5 % threshold).
    ///
    /// ```
    /// use als_core::AlsConfig;
    /// let config = AlsConfig::builder().threshold(0.05).threads(8).build()?;
    /// assert_eq!(config.threads, 8);
    /// # Ok::<(), als_core::AlsError>(())
    /// ```
    pub fn builder() -> AlsConfigBuilder {
        AlsConfigBuilder {
            config: AlsConfig::default(),
        }
    }

    /// Checks every field against its documented constraint.
    ///
    /// # Errors
    ///
    /// Returns [`AlsError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), AlsError> {
        if !(0.0..1.0).contains(&self.threshold) {
            return Err(AlsError::InvalidConfig(format!(
                "threshold must be a rate in [0, 1), got {}",
                self.threshold
            )));
        }
        match self.patterns {
            PatternPolicy::Fixed(0) => {
                return Err(AlsError::InvalidConfig(
                    "patterns: fixed num_patterns must be positive".into(),
                ));
            }
            PatternPolicy::Adaptive { min: 0, .. } => {
                return Err(AlsError::InvalidConfig(
                    "patterns: adaptive min must be positive".into(),
                ));
            }
            PatternPolicy::Adaptive { min, max } if min > max => {
                return Err(AlsError::InvalidConfig(format!(
                    "patterns: adaptive min must not exceed max, got min {min} > max {max}"
                )));
            }
            _ => {}
        }
        if self.max_fanins > MAX_LOCAL_FANINS {
            return Err(AlsError::InvalidConfig(format!(
                "max_fanins must not exceed the local-pattern limit of {MAX_LOCAL_FANINS}, \
                 got {}",
                self.max_fanins
            )));
        }
        if self.max_enum_literals == 0 {
            return Err(AlsError::InvalidConfig(
                "max_enum_literals must be positive".into(),
            ));
        }
        if self.max_iterations == 0 {
            return Err(AlsError::InvalidConfig(
                "max_iterations must be positive".into(),
            ));
        }
        if let DelayWeight::Scaled(w) = self.delay_weight {
            if !w.is_finite() || w < 0.0 {
                return Err(AlsError::InvalidConfig(format!(
                    "delay_weight: scaled weight must be finite and non-negative, got {w}"
                )));
            }
        }
        Ok(())
    }
}

impl Default for AlsConfig {
    /// The paper's most common operating point: a 5 % error-rate budget.
    fn default() -> Self {
        AlsConfig::with_threshold(0.05)
    }
}

/// Builder for [`AlsConfig`]; see [`AlsConfig::builder`]. Every setter is
/// infallible — validation happens once, in
/// [`build`](AlsConfigBuilder::build).
#[derive(Clone, Debug)]
#[must_use = "call .build() to obtain the validated AlsConfig"]
pub struct AlsConfigBuilder {
    config: AlsConfig,
}

impl AlsConfigBuilder {
    /// Sets the error-rate threshold `T`.
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.config.threshold = threshold;
        self
    }

    /// Sets the pattern-count policy (fixed budget or adaptive growth).
    pub fn patterns(mut self, patterns: PatternPolicy) -> Self {
        self.config.patterns = patterns;
        self
    }

    /// Sets a fixed number of random simulation vectors per run.
    #[deprecated(note = "use `patterns(PatternPolicy::Fixed(n))` instead")]
    pub fn num_patterns(self, num_patterns: usize) -> Self {
        self.patterns(PatternPolicy::Fixed(num_patterns))
    }

    /// Sets the stimulus seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the SDC/ODC windowing configuration.
    pub fn dont_care(mut self, dont_care: DontCareConfig) -> Self {
        self.config.dont_care = dont_care;
        self
    }

    /// Enables or disables don't-care pricing in the single-selection
    /// estimate (§3.3).
    pub fn use_dont_cares(mut self, on: bool) -> Self {
        self.config.use_dont_cares = on;
        self
    }

    /// Enables the exact BDD-based don't-care engine.
    pub fn exact_dont_cares(mut self, on: bool) -> Self {
        self.config.exact_dont_cares = on;
        self
    }

    /// Sets the ASE enumeration bound (paper: 5).
    pub fn max_enum_literals(mut self, n: usize) -> Self {
        self.config.max_enum_literals = n;
        self
    }

    /// Sets the fanin-count cutoff for eligible nodes.
    pub fn max_fanins(mut self, n: usize) -> Self {
        self.config.max_fanins = n;
        self
    }

    /// Sets the iteration safety cap.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.config.max_iterations = n;
        self
    }

    /// Enables capacity-halving retries after a measured overshoot
    /// (multi-selection).
    pub fn retry_on_overshoot(mut self, on: bool) -> Self {
        self.config.retry_on_overshoot = on;
        self
    }

    /// Enables or disables the §6 redundancy-removal pre-process.
    pub fn preprocess(mut self, on: bool) -> Self {
        self.config.preprocess = on;
        self
    }

    /// Sets an error-magnitude constraint (`None` clears it).
    pub fn magnitude(mut self, magnitude: Option<MagnitudeConstraint>) -> Self {
        self.config.magnitude = magnitude;
        self
    }

    /// Sets the engine worker-thread count (`0` = available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Enables or disables the candidate cache.
    pub fn cache(mut self, on: bool) -> Self {
        self.config.cache = on;
        self
    }

    /// Sets the resimulation policy (incremental dirty-set by default;
    /// byte-identical results either way).
    pub fn resim(mut self, resim: ResimMode) -> Self {
        self.config.resim = resim;
        self
    }

    /// Forces a full resimulation after every applied change instead of the
    /// incremental dirty-set update.
    #[deprecated(note = "use `resim(ResimMode::Full)` / `resim(ResimMode::Incremental)` instead")]
    pub fn full_resim(self, on: bool) -> Self {
        self.resim(if on {
            ResimMode::Full
        } else {
            ResimMode::Incremental
        })
    }

    /// Sets the static candidate-pruning policy (on by default;
    /// semantics-preserving either way).
    pub fn pruning(mut self, pruning: PrunePolicy) -> Self {
        self.config.pruning = pruning;
        self
    }

    /// Sets the delay-aware candidate-scoring policy (off by default;
    /// `Off` is byte-identical to pre-policy behavior).
    pub fn delay_weight(mut self, delay_weight: DelayWeight) -> Self {
        self.config.delay_weight = delay_weight;
        self
    }

    /// Enables or disables static candidate pruning.
    #[deprecated(note = "use `pruning(PrunePolicy::Static)` / `pruning(PrunePolicy::Off)` instead")]
    pub fn prune(self, on: bool) -> Self {
        self.pruning(if on {
            PrunePolicy::Static
        } else {
            PrunePolicy::Off
        })
    }

    /// Attaches telemetry sinks — engine counters, phase timings and
    /// iteration records then flow to every sink in the handle. Accepts a
    /// [`Telemetry`] handle or any `Arc<impl TelemetrySink>`:
    ///
    /// ```
    /// use als_core::AlsConfig;
    /// use als_telemetry::MetricsCollector;
    /// use std::sync::Arc;
    ///
    /// let collector = Arc::new(MetricsCollector::new());
    /// let config = AlsConfig::builder().telemetry(collector.clone()).build()?;
    /// assert!(config.telemetry.is_enabled());
    /// # Ok::<(), als_core::AlsError>(())
    /// ```
    pub fn telemetry(mut self, telemetry: impl Into<Telemetry>) -> Self {
        self.config.telemetry = telemetry.into();
        self
    }

    /// Attaches a cooperative cancellation token — trip it from another
    /// thread (see [`CancelToken::cancel`]) and the run stops at the next
    /// iteration boundary with the network built so far.
    pub fn cancel(mut self, cancel: CancelToken) -> Self {
        self.config.cancel = cancel;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AlsError::InvalidConfig`] naming the first offending field.
    pub fn build(self) -> Result<AlsConfig, AlsError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = AlsConfig::default();
        assert_eq!(c.threshold, 0.05);
        assert_eq!(c.patterns, PatternPolicy::Fixed(10_048));
        assert_eq!(c.pattern_budget(), 10_048);
        assert_eq!(c.max_enum_literals, 5);
        assert_eq!(c.dont_care.levels_in, 2);
        assert_eq!(c.dont_care.levels_out, 2);
        assert!(c.use_dont_cares);
        assert!(!c.retry_on_overshoot);
        assert!(c.magnitude.is_none());
        assert_eq!(c.threads, 1);
        assert!(c.cache);
        assert_eq!(c.resim, ResimMode::Incremental);
        assert_eq!(c.pruning, PrunePolicy::Static);
        assert_eq!(c.delay_weight, DelayWeight::Off);
        assert!(!c.telemetry.is_enabled());
    }

    #[test]
    fn pattern_policy_accessors() {
        assert_eq!(PatternPolicy::Fixed(512).budget(), 512);
        assert_eq!(PatternPolicy::Fixed(512).adaptive_min(), None);
        let adaptive = PatternPolicy::Adaptive { min: 64, max: 512 };
        assert_eq!(adaptive.budget(), 512);
        assert_eq!(adaptive.adaptive_min(), Some(64));
        assert!(ResimMode::Full.is_full());
        assert!(!ResimMode::Incremental.is_full());
        assert!(PrunePolicy::Static.is_enabled());
        assert!(!PrunePolicy::Off.is_enabled());
        assert!(DelayWeight::Scaled(0.5).is_enabled());
        assert!(!DelayWeight::Off.is_enabled());
        assert_eq!(DelayWeight::Off.weight(), 0.0);
        assert_eq!(DelayWeight::Scaled(1.5).weight(), 1.5);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_bad_threshold() {
        let _ = AlsConfig::with_threshold(1.5);
    }

    #[test]
    fn builder_accepts_valid_settings() {
        let c = AlsConfig::builder()
            .threshold(0.03)
            .threads(8)
            .cache(false)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(c.threshold, 0.03);
        assert_eq!(c.threads, 8);
        assert!(!c.cache);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn builder_rejects_without_panicking() {
        let err = AlsConfig::builder().threshold(1.5).build().unwrap_err();
        assert!(matches!(err, AlsError::InvalidConfig(ref m) if m.contains("threshold")));
        let err = AlsConfig::builder()
            .patterns(PatternPolicy::Fixed(0))
            .build()
            .unwrap_err();
        assert!(matches!(err, AlsError::InvalidConfig(ref m) if m.contains("num_patterns")));
        let err = AlsConfig::builder()
            .patterns(PatternPolicy::Adaptive { min: 0, max: 512 })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, AlsError::InvalidConfig(ref m) if m.contains("min must be positive"))
        );
        let err = AlsConfig::builder()
            .patterns(PatternPolicy::Adaptive { min: 513, max: 512 })
            .build()
            .unwrap_err();
        assert!(matches!(err, AlsError::InvalidConfig(ref m) if m.contains("min must not exceed")));
        let err = AlsConfig::builder().max_fanins(64).build().unwrap_err();
        assert!(matches!(err, AlsError::InvalidConfig(ref m) if m.contains("max_fanins")));
        let err = AlsConfig::builder()
            .max_enum_literals(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, AlsError::InvalidConfig(ref m) if m.contains("max_enum_literals")));
        let err = AlsConfig::builder().max_iterations(0).build().unwrap_err();
        assert!(matches!(err, AlsError::InvalidConfig(ref m) if m.contains("max_iterations")));
        let err = AlsConfig::builder()
            .delay_weight(DelayWeight::Scaled(-1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, AlsError::InvalidConfig(ref m) if m.contains("delay_weight")));
        let err = AlsConfig::builder()
            .delay_weight(DelayWeight::Scaled(f64::NAN))
            .build()
            .unwrap_err();
        assert!(matches!(err, AlsError::InvalidConfig(ref m) if m.contains("delay_weight")));
        let c = AlsConfig::builder()
            .delay_weight(DelayWeight::Scaled(2.0))
            .build()
            .unwrap();
        assert_eq!(c.delay_weight, DelayWeight::Scaled(2.0));
    }

    /// The deprecated PR 1–5 setters must keep compiling and forward to the
    /// typed policies exactly.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_forward_to_the_policies() {
        let c = AlsConfig::builder()
            .num_patterns(2048)
            .full_resim(true)
            .prune(false)
            .build()
            .unwrap();
        assert_eq!(c.patterns, PatternPolicy::Fixed(2048));
        assert_eq!(c.resim, ResimMode::Full);
        assert_eq!(c.pruning, PrunePolicy::Off);
        let c = AlsConfig::builder()
            .full_resim(false)
            .prune(true)
            .build()
            .unwrap();
        assert_eq!(c.resim, ResimMode::Incremental);
        assert_eq!(c.pruning, PrunePolicy::Static);
        let err = AlsConfig::builder().num_patterns(0).build().unwrap_err();
        assert!(matches!(err, AlsError::InvalidConfig(ref m) if m.contains("num_patterns")));
    }
}
