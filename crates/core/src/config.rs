use als_dontcare::DontCareConfig;
use als_sim::DEFAULT_NUM_PATTERNS;

/// An optional constraint on the numeric **error magnitude** — the paper's
/// named future-work extension (§7). The POs are interpreted little-endian
/// (PO `i` weighs `2^i`, the convention of the arithmetic benchmark
/// generators); a candidate change is rejected if the worst absolute
/// deviation over the simulation patterns exceeds `max_abs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MagnitudeConstraint {
    /// The largest tolerated absolute deviation.
    pub max_abs: u128,
}

/// Configuration shared by both selection algorithms.
#[derive(Clone, Copy, Debug)]
pub struct AlsConfig {
    /// The error rate threshold `T` (fraction of PI vectors allowed to
    /// produce a wrong output).
    pub threshold: f64,
    /// Number of random simulation vectors per run (paper: 10 000).
    pub num_patterns: usize,
    /// Seed for the random stimulus (results are deterministic per seed).
    pub seed: u64,
    /// Windowing/engine settings for SDC/ODC computation.
    pub dont_care: DontCareConfig,
    /// Whether the single-selection estimate discards don't-care ELIPs
    /// (§3.3). Disabling this is the ablation that degrades the estimate to
    /// the apparent error rate.
    pub use_dont_cares: bool,
    /// Use the exact BDD-based don't-care engine instead of the paper's
    /// windowed one (falls back to windowed when the BDD exceeds
    /// `exact_dc_node_limit`). An upper-bound-tightening extension.
    pub exact_dont_cares: bool,
    /// Node budget for the exact BDD engine.
    pub exact_dc_node_limit: usize,
    /// The paper enumerates all `2^N` ASEs only when `N <` this bound
    /// (paper: 5); larger nodes get removals of fewer literals plus the two
    /// constants.
    pub max_enum_literals: usize,
    /// Nodes with more fanins than this are skipped (local-pattern tables
    /// grow as `2^k`).
    pub max_fanins: usize,
    /// Hard cap on iterations (safety net; the algorithms terminate on their
    /// own when no feasible change remains).
    pub max_iterations: usize,
    /// Multi-selection only: when a committed batch overshoots the measured
    /// threshold, retry the iteration with the knapsack capacity halved
    /// (instead of terminating). Off by default to match the paper.
    pub retry_on_overshoot: bool,
    /// Run the same-support/same-signature redundancy-removal pre-process
    /// (§6) before the main loop.
    pub preprocess: bool,
    /// Optional error-magnitude constraint enforced *in addition to* the
    /// error-rate threshold (the §7 future-work extension).
    pub magnitude: Option<MagnitudeConstraint>,
}

impl AlsConfig {
    /// A configuration with the given error-rate threshold and paper-default
    /// settings everywhere else.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ threshold < 1`.
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&threshold),
            "threshold must be a rate in [0, 1)"
        );
        AlsConfig {
            threshold,
            num_patterns: DEFAULT_NUM_PATTERNS,
            seed: 0xA15_5EED,
            dont_care: DontCareConfig::default(),
            use_dont_cares: true,
            exact_dont_cares: false,
            exact_dc_node_limit: 1 << 18,
            max_enum_literals: 5,
            max_fanins: 10,
            max_iterations: 10_000,
            retry_on_overshoot: false,
            preprocess: true,
            magnitude: None,
        }
    }
}

impl Default for AlsConfig {
    /// The paper's most common operating point: a 5 % error-rate budget.
    fn default() -> Self {
        AlsConfig::with_threshold(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = AlsConfig::default();
        assert_eq!(c.threshold, 0.05);
        assert_eq!(c.num_patterns, 10_048);
        assert_eq!(c.max_enum_literals, 5);
        assert_eq!(c.dont_care.levels_in, 2);
        assert_eq!(c.dont_care.levels_out, 2);
        assert!(c.use_dont_cares);
        assert!(!c.retry_on_overshoot);
        assert!(c.magnitude.is_none());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_bad_threshold() {
        let _ = AlsConfig::with_threshold(1.5);
    }
}
