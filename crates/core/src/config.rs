use crate::AlsError;
use als_dontcare::DontCareConfig;
use als_sim::{DEFAULT_NUM_PATTERNS, MAX_LOCAL_FANINS};
use als_telemetry::Telemetry;

/// An optional constraint on the numeric **error magnitude** — the paper's
/// named future-work extension (§7). The POs are interpreted little-endian
/// (PO `i` weighs `2^i`, the convention of the arithmetic benchmark
/// generators); a candidate change is rejected if the worst absolute
/// deviation over the simulation patterns exceeds `max_abs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MagnitudeConstraint {
    /// The largest tolerated absolute deviation.
    pub max_abs: u128,
}

/// Configuration shared by all three algorithms.
///
/// Build one with [`AlsConfig::builder`] (non-panicking, validated) or
/// [`AlsConfig::with_threshold`] (paper defaults, panics on a bad
/// threshold); individual fields stay public and can be adjusted after
/// construction. The struct is `#[non_exhaustive]`: new knobs may appear in
/// minor releases without breaking downstream builds.
#[derive(Clone, Debug)]
#[non_exhaustive]
// The bools are independent feature toggles (ablations and engine
// selection), not an encoded state machine.
#[allow(clippy::struct_excessive_bools)]
pub struct AlsConfig {
    /// The error rate threshold `T` (fraction of PI vectors allowed to
    /// produce a wrong output).
    pub threshold: f64,
    /// Number of random simulation vectors per run (paper: 10 000).
    pub num_patterns: usize,
    /// Seed for the random stimulus (results are deterministic per seed).
    pub seed: u64,
    /// Windowing/engine settings for SDC/ODC computation.
    pub dont_care: DontCareConfig,
    /// Whether the single-selection estimate discards don't-care ELIPs
    /// (§3.3). Disabling this is the ablation that degrades the estimate to
    /// the apparent error rate.
    pub use_dont_cares: bool,
    /// Use the exact BDD-based don't-care engine instead of the paper's
    /// windowed one (falls back to windowed when the BDD exceeds
    /// `exact_dc_node_limit`). An upper-bound-tightening extension.
    pub exact_dont_cares: bool,
    /// Node budget for the exact BDD engine.
    pub exact_dc_node_limit: usize,
    /// The paper enumerates all `2^N` ASEs only when `N <` this bound
    /// (paper: 5); larger nodes get removals of fewer literals plus the two
    /// constants.
    pub max_enum_literals: usize,
    /// Nodes with more fanins than this are skipped (local-pattern tables
    /// grow as `2^k`).
    pub max_fanins: usize,
    /// Hard cap on iterations (safety net; the algorithms terminate on their
    /// own when no feasible change remains).
    pub max_iterations: usize,
    /// Multi-selection only: when a committed batch overshoots the measured
    /// threshold, retry the iteration with the knapsack capacity halved
    /// (instead of terminating). Off by default to match the paper.
    pub retry_on_overshoot: bool,
    /// Run the same-support/same-signature redundancy-removal pre-process
    /// (§6) before the main loop.
    pub preprocess: bool,
    /// Optional error-magnitude constraint enforced *in addition to* the
    /// error-rate threshold (the §7 future-work extension).
    pub magnitude: Option<MagnitudeConstraint>,
    /// Worker threads for the candidate-evaluation engine: `0` uses the
    /// machine's available parallelism, `1` (the default) keeps evaluation
    /// on the calling thread. Results are byte-identical for every setting.
    pub threads: usize,
    /// Whether the engine memoizes node evaluations between iterations
    /// (incremental cone invalidation). Disabling re-evaluates every node
    /// every iteration — an expensive but occasionally useful cross-check,
    /// guaranteed to produce identical results.
    pub cache: bool,
    /// Disable the incremental dirty-set resimulation engine and fully
    /// resimulate the network after every applied change instead. The
    /// incremental path is the default and produces byte-identical results
    /// (the measurement arithmetic is shared word-for-word) — this escape
    /// hatch exists as a cross-check and for debugging, like
    /// [`cache`](AlsConfig::cache).
    pub full_resim: bool,
    /// Whether the engine discards candidates whose *static* lower error
    /// bound (abstract interpretation over fanin popcounts, see the
    /// `als-absint` crate) already exceeds the
    /// remaining budget, skipping their local-pattern gather. Pruning is
    /// semantics-preserving: outcomes are identical with it on or off —
    /// disabling it is a cross-check, like [`cache`](AlsConfig::cache).
    pub prune: bool,
    /// Telemetry sinks observing the run (see [`als_telemetry`]). Disabled
    /// by default: the engine then skips event construction entirely, and
    /// results are byte-identical with any sink attached.
    pub telemetry: Telemetry,
}

impl AlsConfig {
    /// A configuration with the given error-rate threshold and paper-default
    /// settings everywhere else.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ threshold < 1`; see [`AlsConfig::builder`] for the
    /// non-panicking path.
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&threshold),
            "threshold must be a rate in [0, 1)"
        );
        AlsConfig {
            threshold,
            num_patterns: DEFAULT_NUM_PATTERNS,
            seed: 0xA15_5EED,
            dont_care: DontCareConfig::default(),
            use_dont_cares: true,
            exact_dont_cares: false,
            exact_dc_node_limit: 1 << 18,
            max_enum_literals: 5,
            max_fanins: 10,
            max_iterations: 10_000,
            retry_on_overshoot: false,
            preprocess: true,
            magnitude: None,
            threads: 1,
            cache: true,
            full_resim: false,
            prune: true,
            telemetry: Telemetry::disabled(),
        }
    }

    /// A validating, non-panicking builder seeded with the paper defaults
    /// (5 % threshold).
    ///
    /// ```
    /// use als_core::AlsConfig;
    /// let config = AlsConfig::builder().threshold(0.05).threads(8).build()?;
    /// assert_eq!(config.threads, 8);
    /// # Ok::<(), als_core::AlsError>(())
    /// ```
    pub fn builder() -> AlsConfigBuilder {
        AlsConfigBuilder {
            config: AlsConfig::default(),
        }
    }

    /// Checks every field against its documented constraint.
    ///
    /// # Errors
    ///
    /// Returns [`AlsError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), AlsError> {
        if !(0.0..1.0).contains(&self.threshold) {
            return Err(AlsError::InvalidConfig(format!(
                "threshold must be a rate in [0, 1), got {}",
                self.threshold
            )));
        }
        if self.num_patterns == 0 {
            return Err(AlsError::InvalidConfig(
                "num_patterns must be positive".into(),
            ));
        }
        if self.max_fanins > MAX_LOCAL_FANINS {
            return Err(AlsError::InvalidConfig(format!(
                "max_fanins must not exceed the local-pattern limit of {MAX_LOCAL_FANINS}, \
                 got {}",
                self.max_fanins
            )));
        }
        if self.max_enum_literals == 0 {
            return Err(AlsError::InvalidConfig(
                "max_enum_literals must be positive".into(),
            ));
        }
        if self.max_iterations == 0 {
            return Err(AlsError::InvalidConfig(
                "max_iterations must be positive".into(),
            ));
        }
        Ok(())
    }
}

impl Default for AlsConfig {
    /// The paper's most common operating point: a 5 % error-rate budget.
    fn default() -> Self {
        AlsConfig::with_threshold(0.05)
    }
}

/// Builder for [`AlsConfig`]; see [`AlsConfig::builder`]. Every setter is
/// infallible — validation happens once, in
/// [`build`](AlsConfigBuilder::build).
#[derive(Clone, Debug)]
#[must_use = "call .build() to obtain the validated AlsConfig"]
pub struct AlsConfigBuilder {
    config: AlsConfig,
}

impl AlsConfigBuilder {
    /// Sets the error-rate threshold `T`.
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.config.threshold = threshold;
        self
    }

    /// Sets the number of random simulation vectors per run.
    pub fn num_patterns(mut self, num_patterns: usize) -> Self {
        self.config.num_patterns = num_patterns;
        self
    }

    /// Sets the stimulus seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the SDC/ODC windowing configuration.
    pub fn dont_care(mut self, dont_care: DontCareConfig) -> Self {
        self.config.dont_care = dont_care;
        self
    }

    /// Enables or disables don't-care pricing in the single-selection
    /// estimate (§3.3).
    pub fn use_dont_cares(mut self, on: bool) -> Self {
        self.config.use_dont_cares = on;
        self
    }

    /// Enables the exact BDD-based don't-care engine.
    pub fn exact_dont_cares(mut self, on: bool) -> Self {
        self.config.exact_dont_cares = on;
        self
    }

    /// Sets the ASE enumeration bound (paper: 5).
    pub fn max_enum_literals(mut self, n: usize) -> Self {
        self.config.max_enum_literals = n;
        self
    }

    /// Sets the fanin-count cutoff for eligible nodes.
    pub fn max_fanins(mut self, n: usize) -> Self {
        self.config.max_fanins = n;
        self
    }

    /// Sets the iteration safety cap.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.config.max_iterations = n;
        self
    }

    /// Enables capacity-halving retries after a measured overshoot
    /// (multi-selection).
    pub fn retry_on_overshoot(mut self, on: bool) -> Self {
        self.config.retry_on_overshoot = on;
        self
    }

    /// Enables or disables the §6 redundancy-removal pre-process.
    pub fn preprocess(mut self, on: bool) -> Self {
        self.config.preprocess = on;
        self
    }

    /// Sets an error-magnitude constraint (`None` clears it).
    pub fn magnitude(mut self, magnitude: Option<MagnitudeConstraint>) -> Self {
        self.config.magnitude = magnitude;
        self
    }

    /// Sets the engine worker-thread count (`0` = available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Enables or disables the candidate cache.
    pub fn cache(mut self, on: bool) -> Self {
        self.config.cache = on;
        self
    }

    /// Forces a full resimulation after every applied change instead of the
    /// incremental dirty-set update (off by default; byte-identical results
    /// either way).
    pub fn full_resim(mut self, on: bool) -> Self {
        self.config.full_resim = on;
        self
    }

    /// Enables or disables static candidate pruning (on by default;
    /// semantics-preserving either way).
    pub fn prune(mut self, on: bool) -> Self {
        self.config.prune = on;
        self
    }

    /// Attaches telemetry sinks — engine counters, phase timings and
    /// iteration records then flow to every sink in the handle. Accepts a
    /// [`Telemetry`] handle or any `Arc<impl TelemetrySink>`:
    ///
    /// ```
    /// use als_core::AlsConfig;
    /// use als_telemetry::MetricsCollector;
    /// use std::sync::Arc;
    ///
    /// let collector = Arc::new(MetricsCollector::new());
    /// let config = AlsConfig::builder().telemetry(collector.clone()).build()?;
    /// assert!(config.telemetry.is_enabled());
    /// # Ok::<(), als_core::AlsError>(())
    /// ```
    pub fn telemetry(mut self, telemetry: impl Into<Telemetry>) -> Self {
        self.config.telemetry = telemetry.into();
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AlsError::InvalidConfig`] naming the first offending field.
    pub fn build(self) -> Result<AlsConfig, AlsError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = AlsConfig::default();
        assert_eq!(c.threshold, 0.05);
        assert_eq!(c.num_patterns, 10_048);
        assert_eq!(c.max_enum_literals, 5);
        assert_eq!(c.dont_care.levels_in, 2);
        assert_eq!(c.dont_care.levels_out, 2);
        assert!(c.use_dont_cares);
        assert!(!c.retry_on_overshoot);
        assert!(c.magnitude.is_none());
        assert_eq!(c.threads, 1);
        assert!(c.cache);
        assert!(!c.full_resim);
        assert!(c.prune);
        assert!(!c.telemetry.is_enabled());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_bad_threshold() {
        let _ = AlsConfig::with_threshold(1.5);
    }

    #[test]
    fn builder_accepts_valid_settings() {
        let c = AlsConfig::builder()
            .threshold(0.03)
            .threads(8)
            .cache(false)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(c.threshold, 0.03);
        assert_eq!(c.threads, 8);
        assert!(!c.cache);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn builder_rejects_without_panicking() {
        let err = AlsConfig::builder().threshold(1.5).build().unwrap_err();
        assert!(matches!(err, AlsError::InvalidConfig(ref m) if m.contains("threshold")));
        let err = AlsConfig::builder().num_patterns(0).build().unwrap_err();
        assert!(matches!(err, AlsError::InvalidConfig(ref m) if m.contains("num_patterns")));
        let err = AlsConfig::builder().max_fanins(64).build().unwrap_err();
        assert!(matches!(err, AlsError::InvalidConfig(ref m) if m.contains("max_fanins")));
        let err = AlsConfig::builder()
            .max_enum_literals(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, AlsError::InvalidConfig(ref m) if m.contains("max_enum_literals")));
        let err = AlsConfig::builder().max_iterations(0).build().unwrap_err();
        assert!(matches!(err, AlsError::InvalidConfig(ref m) if m.contains("max_iterations")));
    }
}
