use als_network::Network;
use als_telemetry::MetricsReport;
use std::fmt;
use std::time::Duration;

/// One change applied to the network (a node and the ASE chosen for it).
#[derive(Clone, Debug)]
pub struct SelectedChange {
    /// The rewritten node's name.
    pub node_name: String,
    /// Display form of the chosen ASE.
    pub ase: String,
    /// Literals saved by the change.
    pub literals_saved: usize,
    /// The error estimate that justified the selection (estimated real rate
    /// for single-selection, apparent rate for multi-selection).
    pub error_estimate: f64,
    /// The claimed apparent error rate (§3.2) of the change — the Theorem-1
    /// summand an auditor checks (equals `error_estimate` for
    /// multi-selection and sasimi; ≥ `error_estimate` for single-selection,
    /// whose estimate discards don't-care ELIPs).
    pub apparent: f64,
}

/// A committed iteration of either algorithm.
#[derive(Clone, Debug)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Changes applied this iteration (one for single-selection, many for
    /// multi-selection).
    pub changes: Vec<SelectedChange>,
    /// Factored-form literal count after the iteration.
    pub literals_after: usize,
    /// Measured error rate (against the original network) after the
    /// iteration.
    pub error_rate_after: f64,
}

/// The result of an approximation run.
#[derive(Clone, Debug)]
pub struct AlsOutcome {
    /// The approximate network (error rate within the threshold).
    pub network: Network,
    /// Committed iterations, in order.
    pub iterations: Vec<IterationRecord>,
    /// Literal count of the input network (after the pre-process, before any
    /// approximation).
    pub initial_literals: usize,
    /// Literal count of the result.
    pub final_literals: usize,
    /// Measured error rate of the result against the original network.
    pub measured_error_rate: f64,
    /// Wall-clock time of the whole run (pre-process included).
    pub runtime: Duration,
    /// Engine metrics gathered during the run (simulation, cache, knapsack
    /// and per-phase counters); always populated, independent of any user
    /// sinks configured through [`AlsConfig`](crate::AlsConfig).
    pub metrics: MetricsReport,
}

impl AlsOutcome {
    /// `final literals / initial literals` — the paper's "area ratio" at the
    /// technology-independent level (1.0 when nothing was saved).
    pub fn literal_ratio(&self) -> f64 {
        if self.initial_literals == 0 {
            1.0
        } else {
            self.final_literals as f64 / self.initial_literals as f64 // lint:allow(as-cast): counts << 2^52, exact in f64
        }
    }

    /// Total number of node rewrites committed.
    pub fn num_changes(&self) -> usize {
        self.iterations.iter().map(|it| it.changes.len()).sum()
    }
}

impl fmt::Display for AlsOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} → {} literals (ratio {:.3}), error rate {:.4}, {} changes in {} iterations, {:.2?}",
            self.initial_literals,
            self.final_literals,
            self.literal_ratio(),
            self.measured_error_rate,
            self.num_changes(),
            self.iterations.len(),
            self.runtime,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_empty_network() {
        let outcome = AlsOutcome {
            network: Network::new("empty"),
            iterations: Vec::new(),
            initial_literals: 0,
            final_literals: 0,
            measured_error_rate: 0.0,
            runtime: Duration::ZERO,
            metrics: MetricsReport::default(),
        };
        assert_eq!(outcome.literal_ratio(), 1.0);
        assert_eq!(outcome.num_changes(), 0);
        assert!(outcome.to_string().contains("ratio 1.000"));
    }
}
