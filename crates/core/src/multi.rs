//! The multi-selection algorithm (paper Algorithm 2).

use crate::ase::Ase;
use crate::delay_score::{DelayScorer, GAIN_SCALE};
use crate::engine::CandidateEngine;
use crate::knapsack::{self, error_rate_scale, scale_weight, KnapsackItem, KnapsackState};
use crate::report::{AlsOutcome, IterationRecord, SelectedChange};
use crate::single::apply_ase;
use crate::{preprocess, AlsConfig, AlsContext};
use als_network::{Network, NodeId};
use als_telemetry::{Event, MetricsCollector, PhaseKind, Telemetry};
use std::sync::Arc;
use std::time::Instant;

/// Runs the multi-selection algorithm: per iteration, every node's ASEs
/// become the states of a knapsack item (weight = scaled **apparent** error
/// rate, value = saved literals, capacity = scaled error-rate margin); the
/// multi-state knapsack DP of [`knapsack::solve`] picks an optimal set of
/// simultaneous changes, justified by the paper's Theorem 1 (the sum of
/// apparent error rates bounds the combined error-rate increase).
///
/// Candidate pricing comes from the [`CandidateEngine`] (apparent rates
/// only — don't-care windows are never built here), cached between
/// iterations and re-evaluated only inside the transitive fanout of each
/// committed batch.
///
/// The measured error rate is re-checked after every batch; an overshooting
/// batch is rolled back (and optionally retried with half the capacity when
/// [`AlsConfig::retry_on_overshoot`] is set).
///
/// Prefer [`approximate`](crate::approximate) with
/// [`Strategy::Multi`](crate::Strategy::Multi) for the non-panicking entry
/// point; this wrapper is kept for compatibility.
///
/// # Panics
///
/// Panics if the input network fails its consistency check.
pub fn multi_selection(original: &Network, config: &AlsConfig) -> AlsOutcome {
    let ctx = AlsContext::new(original, config);
    multi_selection_with_context(original, config, ctx)
}

/// Workload-aware variant of [`multi_selection`]: the error-rate budget is
/// measured under the supplied stimulus instead of uniform random vectors.
///
/// # Panics
///
/// Panics if the input network fails its consistency check or the pattern
/// set drives a different PI count.
pub fn multi_selection_under(
    original: &Network,
    config: &AlsConfig,
    patterns: als_sim::PatternSet,
) -> AlsOutcome {
    let ctx = AlsContext::with_patterns(original, patterns);
    multi_selection_with_context(original, config, ctx)
}

pub(crate) fn multi_selection_with_context(
    original: &Network,
    config: &AlsConfig,
    ctx: AlsContext,
) -> AlsOutcome {
    // lint:allow(nondeterminism): feeds telemetry wall-clock only, never the synthesis outcome
    let start = Instant::now();
    original.check().expect("input network must be consistent"); // lint:allow(panic): documented panic contract; `approximate()` is the fallible entry
    let initial_literals = original.literal_count();

    // Same sink arrangement as single-selection: an internal collector feeds
    // `AlsOutcome::metrics` alongside any user-configured sinks.
    let collector = Arc::new(MetricsCollector::new());
    let mut config = config.clone();
    config.telemetry = config.telemetry.clone().with(collector.clone());
    let config = &config;
    let ctx = ctx
        .with_telemetry(config.telemetry.clone())
        .with_sampling(config);

    config.telemetry.emit(|| Event::RunStart {
        algorithm: "multi-selection",
        threads: crate::engine::resolve_threads(config.threads),
        num_patterns: ctx.patterns().num_patterns(),
        nodes: original.num_internal(),
        threshold: config.threshold,
        seed: config.seed,
    });

    let mut current = original.clone();
    let pre_mark = config.telemetry.start();
    if config.preprocess {
        preprocess::remove_redundancies(&mut current, ctx.patterns());
    }
    config.telemetry.emit(|| Event::PhaseEnd {
        phase: PhaseKind::Preprocess,
        nanos: Telemetry::nanos_since(pre_mark),
    });

    let scale = error_rate_scale(config.threshold);
    // The persistent incremental simulation state; one full simulation at
    // construction, dirty-set updates per batch afterwards.
    let mut inc = ctx.incremental(&current);
    inc.set_full_resim(config.resim.is_full());
    let mut error_rate = ctx.measure_view(&current, inc.view());
    let mut margin = config.threshold - error_rate;
    let mut iterations: Vec<IterationRecord> = Vec::new();
    // Apparent rates only: no don't-care windows in the engine.
    let mut engine = CandidateEngine::new(config, false);
    // `None` under `DelayWeight::Off`: knapsack values are then the plain
    // literal counts, byte-identical to the legacy path.
    let mut delay_scorer = DelayScorer::new(&current, config.delay_weight);

    'outer: for iteration in 1..=config.max_iterations {
        if margin < 0.0 {
            break;
        }
        // Cooperative cancellation: the network already satisfies the
        // threshold at every iteration boundary, so stopping here is sound.
        if config.cancel.is_cancelled() {
            break;
        }
        let iter_mark = config.telemetry.start();
        // Static pruning budget: a candidate with apparent rate above
        // `(capacity + 0.5) / scale` scales-and-rounds to a knapsack weight
        // of at least `capacity + 1`, which no solution can pack — so
        // pruning on a sound lower bound above that budget cannot change
        // the solve (the capacity-halving retry below only shrinks the
        // capacity, keeping pruned candidates infeasible).
        let initial_capacity = scale_weight(margin.max(0.0), scale);
        engine.set_prune_budget((initial_capacity as f64 + 0.5) / scale); // lint:allow(as-cast): capacity ≤ scale = 1e4, exactly representable in f64
                                                                          // Collect the candidate items: every eligible node with its ASEs.
        engine.refresh_from_view(&current, inc.view(), &ctx);
        let mut nodes: Vec<NodeId> = Vec::new();
        let mut ase_store: Vec<Vec<Ase>> = Vec::new();
        let mut rate_store: Vec<Vec<f64>> = Vec::new();
        let mut bounds_store: Vec<Vec<(f64, f64)>> = Vec::new();
        let mut items: Vec<KnapsackItem> = Vec::new();
        for id in engine.node_ids() {
            let mut ases: Vec<Ase> = Vec::new();
            let mut rates: Vec<f64> = Vec::new();
            let mut bounds: Vec<(f64, f64)> = Vec::new();
            let mut states: Vec<KnapsackState> = Vec::new();
            for cand in engine.candidates(id) {
                // With delay scoring on, values are delay-adjusted gains in
                // 1/64-literal fixed point; the weights (error budget
                // accounting, Theorem 1) are never touched. The `Off` arm
                // is the legacy value, bit for bit.
                let value = match &delay_scorer {
                    None => cand.ase.literals_saved as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                    Some(sc) => {
                        (sc.adjusted_gain(&current, id, &cand.ase) * GAIN_SCALE).round() as u64
                        // lint:allow(as-cast): gains are small non-negative reals
                    }
                };
                states.push(KnapsackState {
                    weight: scale_weight(cand.apparent, scale),
                    value,
                });
                ases.push(cand.ase.clone());
                rates.push(cand.apparent);
                bounds.push((cand.static_lo, cand.static_hi));
            }
            if ases.is_empty() {
                continue;
            }
            nodes.push(id);
            ase_store.push(ases);
            rate_store.push(rates);
            bounds_store.push(bounds);
            items.push(KnapsackItem { states });
        }
        if items.is_empty() {
            break;
        }

        let mut capacity = initial_capacity;
        loop {
            let dp_mark = config.telemetry.start();
            let solution = knapsack::solve(&items, capacity, true);
            config.telemetry.emit(|| Event::KnapsackSolved {
                items: items.len() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                capacity,
                dp_cells: solution.dp_cells,
                nanos: Telemetry::nanos_since(dp_mark),
            });
            if solution.choices.iter().all(Option::is_none) {
                break 'outer;
            }

            // Apply the batch.
            let snapshot = current.clone();
            let mut changes: Vec<SelectedChange> = Vec::new();
            let mut change_bounds: Vec<(f64, f64)> = Vec::new();
            let mut batch: Vec<NodeId> = Vec::new();
            for ((idx, choice), id) in solution.choices.iter().enumerate().zip(&nodes) {
                let Some(state) = choice else { continue };
                let ase = &ase_store[idx][*state];
                changes.push(SelectedChange {
                    node_name: current.node(*id).name().to_string(),
                    ase: ase.expr.to_string(),
                    literals_saved: ase.literals_saved,
                    error_estimate: rate_store[idx][*state],
                    apparent: rate_store[idx][*state],
                });
                change_bounds.push(bounds_store[idx][*state]);
                apply_ase(&mut current, *id, ase);
                batch.push(*id);
            }
            // Resimulate and decide in one step, one undo span: the batch
            // nodes are resimulated *before* constant propagation (which
            // rewrites users of swept nodes multi-level deep without marking
            // them dirty), then the propagated structure — function-
            // preserving per surviving node — only needs liveness
            // reconciliation. Under adaptive sampling the batch may be
            // rejected from a pattern prefix before propagation even runs.
            let decision = ctx.update_and_accept(&mut inc, &mut current, &batch, true, config);
            debug_assert!(
                decision.is_none() || current.check().is_ok(),
                "network inconsistent after applying a multi-selection batch: {:?}",
                current.check()
            );

            let Some(new_error_rate) = decision else {
                current = snapshot;
                inc.rollback();
                // Rate overshoot or magnitude violation: retrying with a
                // halved capacity shrinks the batch until it fits (always on
                // when a magnitude constraint is set, since the knapsack
                // weights do not model magnitudes).
                if (config.retry_on_overshoot || config.magnitude.is_some()) && capacity > 0 {
                    capacity /= 2;
                    continue;
                }
                break 'outer;
            };
            inc.commit();
            // Invalidate on the pre-change snapshot, where every batch node
            // is still live: constant-propagation cascades stay inside
            // TFO(batch), whose fanout edges the snapshot already has.
            engine.invalidate_committed(&snapshot, &batch);
            // Batches propagate constants (restructuring users multi-level
            // deep), so the delay map is rebuilt rather than cone-patched.
            if let Some(scorer) = delay_scorer.as_mut() {
                scorer.rebuild(&current);
            }
            error_rate = new_error_rate;
            margin = config.threshold - error_rate;
            let literals_after = current.literal_count();
            let num_changes = changes.len();
            for (change, &(lo, hi)) in changes.iter().zip(&change_bounds) {
                config.telemetry.emit(|| Event::ChangeCommitted {
                    iteration: iteration as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                    node: change.node_name.clone(),
                    ase: change.ase.clone(),
                    literals_saved: change.literals_saved as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                    apparent: change.apparent,
                    static_lo: Some(lo),
                    static_hi: Some(hi),
                });
            }
            iterations.push(IterationRecord {
                iteration,
                changes,
                literals_after,
                error_rate_after: error_rate,
            });
            config.telemetry.emit(|| Event::IterationEnd {
                iteration: iteration as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                changes: num_changes as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                literals: literals_after as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                error_rate,
                nanos: Telemetry::nanos_since(iter_mark),
            });
            break;
        }
    }

    debug_assert!(current.check().is_ok());
    let final_literals = current.literal_count();
    config.telemetry.emit(|| Event::RunEnd {
        iterations: iterations.len() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
        literals: final_literals as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
        error_rate,
        nanos: start.elapsed().as_nanos() as u64, // lint:allow(as-cast): run duration << 584 years
    });
    AlsOutcome {
        final_literals,
        measured_error_rate: error_rate,
        network: current,
        iterations,
        initial_literals,
        runtime: start.elapsed(),
        metrics: collector.report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};
    use als_sim::{error_rate, PatternSet};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    /// Several independent rarely-true product terms feeding separate
    /// outputs — ideal for simultaneous multi-node shrinking.
    fn parallel_net() -> Network {
        let mut net = Network::new("parallel");
        let pis: Vec<_> = (0..12).map(|i| net.add_pi(format!("x{i}"))).collect();
        for o in 0..3 {
            let base = o * 4;
            let g = net.add_node(
                format!("g{o}"),
                pis[base..base + 4].to_vec(),
                Cover::from_cubes(4, [cube(&[(0, true), (1, true), (2, true), (3, true)])]),
            );
            net.add_po(format!("y{o}"), g);
        }
        net
    }

    #[test]
    fn selects_multiple_nodes_in_one_iteration() {
        let net = parallel_net();
        // Each constant-0 ASE has apparent rate 1/16 ≈ 0.0625; a 25% budget
        // affords all three at once.
        let out = multi_selection(&net, &AlsConfig::with_threshold(0.25));
        assert!(out.measured_error_rate <= 0.25 + 1e-12);
        assert!(!out.iterations.is_empty());
        assert!(
            out.iterations[0].changes.len() >= 2,
            "knapsack should batch several changes, got {:?}",
            out.iterations[0].changes.len()
        );
        assert!(out.final_literals < out.initial_literals);
    }

    #[test]
    fn respects_threshold_on_true_function() {
        let net = parallel_net();
        let out = multi_selection(&net, &AlsConfig::with_threshold(0.10));
        let p = PatternSet::exhaustive(12).unwrap();
        let true_er = error_rate(&net, &out.network, &p);
        assert!(
            true_er <= 0.13,
            "true error rate {true_er} too far over budget"
        );
    }

    #[test]
    fn zero_threshold_changes_nothing_without_redundancy() {
        let net = parallel_net();
        let out = multi_selection(&net, &AlsConfig::with_threshold(0.0));
        assert_eq!(out.measured_error_rate, 0.0);
        assert_eq!(out.final_literals, out.initial_literals);
    }

    #[test]
    fn fewer_iterations_than_single_selection() {
        use crate::single_selection;
        let net = parallel_net();
        let config = AlsConfig::with_threshold(0.25);
        let single = single_selection(&net, &config);
        let multi = multi_selection(&net, &config);
        assert!(
            multi.iterations.len() <= single.iterations.len(),
            "multi ({}) must not take more iterations than single ({})",
            multi.iterations.len(),
            single.iterations.len()
        );
    }

    #[test]
    fn magnitude_constraint_limits_deviation() {
        use crate::MagnitudeConstraint;
        use als_sim::magnitude_stats;
        // A 3-bit adder: with a generous rate budget but max_abs = 1, only
        // LSB-scale deviations may survive.
        let golden = als_circuits::ripple_carry_adder(3);
        let mut config = AlsConfig::with_threshold(0.40);
        config.patterns = crate::PatternPolicy::Fixed(4096);
        config.magnitude = Some(MagnitudeConstraint { max_abs: 1 });
        let out = multi_selection(&golden, &config);
        let p = PatternSet::exhaustive(6).unwrap();
        let stats = magnitude_stats(&golden, &out.network, &p);
        assert!(
            stats.max_abs <= 1,
            "deviation {} exceeds bound",
            stats.max_abs
        );
        // Without the constraint the same budget allows larger deviations.
        config.magnitude = None;
        let free = multi_selection(&golden, &config);
        let free_stats = magnitude_stats(&golden, &free.network, &p);
        assert!(
            free_stats.max_abs >= stats.max_abs,
            "unconstrained run should deviate at least as much"
        );
    }

    #[test]
    fn retry_on_overshoot_still_terminates() {
        let net = parallel_net();
        let mut config = AlsConfig::with_threshold(0.10);
        config.retry_on_overshoot = true;
        let out = multi_selection(&net, &config);
        assert!(out.measured_error_rate <= 0.10 + 1e-12);
    }
}
