//! Redundancy-removal pre-process (paper §6).
//!
//! Some benchmark circuits contain pairs of nodes computing the *same global
//! function*, which node-local synthesis cannot discover. The paper's
//! pre-process finds them cheaply: two identical signals must share their PI
//! support, so nodes are keyed by support and compared by simulation
//! signature; confirmed pairs are merged, keeping the node whose survival
//! saves more literals.

use als_network::{Network, NodeId};
use als_sim::{simulate, PatternSet};
use std::collections::HashMap;

/// Merges internal nodes with identical PI supports and identical simulation
/// signatures, then sweeps. Returns the number of nodes removed.
///
/// Signature equality over a finite pattern set is necessary but not
/// sufficient for functional equality; with the paper's 10 000 random
/// vectors collisions are considered negligible (the original does the
/// same). Exhaustive patterns make the merge exact.
pub fn remove_redundancies(net: &mut Network, patterns: &PatternSet) -> usize {
    let sim = simulate(net, patterns);
    let order: Vec<NodeId> = net
        .topo_order()
        .into_iter()
        .filter(|&id| !net.node(id).is_pi())
        .collect();

    // Bucket by (PI support, signature hash); representative is the earliest
    // node in topological order.
    let mut reps: HashMap<(Vec<bool>, u64), NodeId> = HashMap::new();
    let mut removed = 0usize;
    for id in order {
        if !net.is_live(id) {
            continue;
        }
        let key = (net.pi_support(id), sim.signature_hash(id));
        match reps.get(&key) {
            None => {
                reps.insert(key, id);
            }
            Some(&rep) if net.is_live(rep) && sim.signatures_equal(rep, id) => {
                // Merge: prefer to delete the node carrying more literals.
                // Deleting `rep` is only legal if `id` is not downstream of
                // it (no cycle); `id` being later in topological order means
                // `rep` is never downstream of `id`.
                let rep_lits = net.node(rep).literal_count();
                let id_lits = net.node(id).literal_count();
                if rep_lits > id_lits && !net.tfo_mask(rep)[id.index()] {
                    net.substitute(rep, id);
                    reps.insert(key, id);
                } else {
                    net.substitute(id, rep);
                }
                removed += 1;
            }
            Some(_) => {
                // Hash collision with a dead or differing node: replace the
                // stale representative.
                reps.insert(key, id);
            }
        }
    }
    net.sweep();
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};
    use als_sim::PatternSet;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    #[test]
    fn merges_structural_duplicates() {
        let mut net = Network::new("dup");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        // Two AND gates with permuted fanin lists — same function.
        let g1 = net.add_node(
            "g1",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let g2 = net.add_node(
            "g2",
            vec![b, a],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let y = net.add_node(
            "y",
            vec![g1, g2],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
        );
        net.add_po("y", y);
        let before: Vec<bool> = (0..4)
            .map(|m| net.eval(&[m & 1 == 1, m >> 1 & 1 == 1])[0])
            .collect();
        let patterns = PatternSet::exhaustive(2).unwrap();
        let removed = remove_redundancies(&mut net, &patterns);
        // g2 merges into g1; y then degenerates to a buffer of g1 with an
        // identical signature and merges as well.
        assert_eq!(removed, 2);
        net.check().unwrap();
        let after: Vec<bool> = (0..4)
            .map(|m| net.eval(&[m & 1 == 1, m >> 1 & 1 == 1])[0])
            .collect();
        assert_eq!(before, after, "function must be preserved");
    }

    #[test]
    fn keeps_cheaper_node() {
        let mut net = Network::new("cheap");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        // g1 = ab + ab' + a'b  (messy, 6 literals) vs g2 = a + b (2 literals);
        // same function.
        let g1 = net.add_node(
            "g1",
            vec![a, b],
            Cover::from_cubes(
                2,
                [
                    cube(&[(0, true), (1, true)]),
                    cube(&[(0, true), (1, false)]),
                    cube(&[(0, false), (1, true)]),
                ],
            ),
        );
        let g2 = net.add_node(
            "g2",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
        );
        let y = net.add_node(
            "y",
            vec![g1, g2],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        net.add_po("y", y);
        let lits_before = net.literal_count();
        let patterns = PatternSet::exhaustive(2).unwrap();
        remove_redundancies(&mut net, &patterns);
        net.check().unwrap();
        // The expensive g1 must be the one that disappeared.
        assert!(net.is_live(g2));
        assert!(!net.is_live(g1));
        assert!(net.literal_count() < lits_before);
    }

    #[test]
    fn different_functions_untouched() {
        let mut net = Network::new("diff");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let g1 = net.add_node(
            "g1",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let g2 = net.add_node(
            "g2",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
        );
        net.add_po("g1", g1);
        net.add_po("g2", g2);
        let patterns = PatternSet::exhaustive(2).unwrap();
        assert_eq!(remove_redundancies(&mut net, &patterns), 0);
        assert!(net.is_live(g1) && net.is_live(g2));
    }

    #[test]
    fn chain_of_duplicates_collapses() {
        let mut net = Network::new("chain");
        let a = net.add_pi("a");
        let mut drivers = Vec::new();
        for i in 0..4 {
            let g = net.add_node(
                format!("inv{i}"),
                vec![a],
                Cover::from_cubes(1, [cube(&[(0, false)])]),
            );
            drivers.push(g);
        }
        let y = net.add_node(
            "y",
            drivers.clone(),
            Cover::from_cubes(4, [cube(&[(0, true), (1, true), (2, true), (3, true)])]),
        );
        net.add_po("y", y);
        let patterns = PatternSet::exhaustive(1).unwrap();
        let removed = remove_redundancies(&mut net, &patterns);
        // The three duplicate inverters merge, then y (now a buffer of the
        // survivor) merges too.
        assert_eq!(removed, 4);
        net.check().unwrap();
        assert_eq!(net.eval(&[false]), vec![true]);
        assert_eq!(net.eval(&[true]), vec![false]);
    }
}
