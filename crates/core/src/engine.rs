//! The parallel, cache-aware candidate-evaluation engine.
//!
//! Both selection algorithms spend the bulk of their runtime on the same
//! per-node work: enumerate the node's ASEs, gather its local-pattern
//! probabilities from the shared simulation run (§3.2), optionally classify
//! its don't-cares (§3.3) and price every ASE. That work is pure over the
//! current network and one [`SimResult`](als_sim::SimResult), so the engine
//!
//! * **memoizes** it per node in a [`CandidateCache`], keyed by the node id
//!   and a *local-function signature* (expression + fanin list), so a rewrite
//!   that slips past the cone invalidation is still caught;
//! * **fans it out** across scoped worker threads over a chunked work queue
//!   of node ids, merging results in node-id order so every thread count
//!   produces byte-identical outcomes;
//! * **invalidates incrementally** after each committed change: a change at
//!   `c` alters the signatures (hence local-pattern probabilities) of exactly
//!   `TFO(c)`, and alters windowed don't-care classifications only inside the
//!   window-influence cone of `c` (see
//!   [`window_influence`](als_dontcare::window_influence)) — everything else
//!   stays cached instead of being flushed wholesale.

use crate::ase::{generate_ases, Ase};
use crate::error_model::{apparent_error_rate, estimated_real_error_rate};
use crate::{AlsConfig, AlsContext};
use als_absint::{Interval, MintermBounds};
use als_dontcare::{window_influence, DontCares, IncrementalClassifier, SolverStats};
use als_logic::Expr;
use als_network::{Network, NodeId};
use als_sim::{local_pattern_probabilities_view, SimResult, SimView};
use als_telemetry::{Event, Telemetry};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One priced candidate change at a node.
#[derive(Clone, Debug)]
pub struct CandidateEval {
    /// The approximate simplified expression.
    pub ase: Ase,
    /// Its apparent error rate (§3.2) — the multi-selection knapsack weight.
    pub apparent: f64,
    /// Its estimated real error rate with don't-care ELIPs discarded (§3.3)
    /// — the single-selection score denominator. Equals `apparent` when the
    /// engine runs without don't-cares.
    pub estimate: f64,
    /// Sound static lower bound on `apparent`, computed from fanin
    /// popcounts alone (see [`als_absint::MintermBounds`]) before the
    /// local-pattern gather ran.
    pub static_lo: f64,
    /// Sound static upper bound on `apparent`.
    pub static_hi: f64,
}

/// Cached evaluation of one node, valid while its local function (and the
/// invalidation cone around it) stays untouched.
#[derive(Clone, Debug)]
struct NodeEntry {
    /// Hash of the node's expression and fanin list at evaluation time.
    signature: u64,
    /// The prune budget in force when the entry was computed (`+∞` when
    /// pruning was off): candidates whose static lower bound exceeded it
    /// are absent, so the entry only serves refreshes with a budget no
    /// larger. Budgets usually shrink monotonically, but a re-measure can
    /// enlarge the margin — the cache check handles both directions.
    prune_budget: f64,
    candidates: Vec<CandidateEval>,
}

/// The per-run memo of node evaluations: node id → priced candidates, keyed
/// by the local-function signature.
#[derive(Debug, Default)]
pub struct CandidateCache {
    entries: HashMap<NodeId, NodeEntry>,
}

/// Cumulative engine counters (cache effectiveness, parallel work).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Refresh calls served so far.
    pub refreshes: usize,
    /// Node evaluations actually computed (cache misses).
    pub evaluated: usize,
    /// Node evaluations served from the cache.
    pub cache_hits: usize,
    /// Candidates discarded by static bounds before their pricing ran.
    pub candidates_pruned: usize,
    /// Evaluations whose local-pattern gather was skipped entirely because
    /// every candidate was pruned — the simulations-avoided measure.
    pub nodes_skipped: usize,
}

/// Slack added to the pruning comparison: a candidate is discarded only
/// when `static_lo > budget + PRUNE_EPS`. The `k ≤ 2` bounds reproduce the
/// dynamic apparent rate bit for bit; the `k ≥ 3` Fréchet sums and the
/// complement tightening can drift by float accumulation on the order of
/// 1e-11, which this margin absorbs — so a pruned candidate is *always* one
/// the dynamic path would have rejected, and outcomes with pruning on and
/// off are identical.
const PRUNE_EPS: f64 = 1e-9;

/// Below this many pending nodes a refresh stays single-threaded: spawning
/// scoped workers costs more than evaluating a handful of nodes.
const MIN_NODES_PER_WORKER: usize = 8;

/// Work-queue chunk size: big enough to keep the atomic counter off the hot
/// path, small enough to balance uneven per-node costs (SAT-based don't-care
/// queries vary widely).
const QUEUE_CHUNK: usize = 8;

/// The candidate-evaluation engine. One instance lives for one synthesis
/// run; the selection loops call [`refresh`](CandidateEngine::refresh) at
/// the top of every iteration and
/// [`invalidate_committed`](CandidateEngine::invalidate_committed) after
/// every accepted change.
#[derive(Debug)]
pub struct CandidateEngine {
    config: AlsConfig,
    /// Whether estimates discard don't-care ELIPs (single-selection). The
    /// multi-selection engine runs without: its knapsack weights are
    /// *apparent* rates (Theorem 1), so don't-care windows are never built.
    needs_dont_cares: bool,
    threads: usize,
    cache_enabled: bool,
    /// Sink handle from the config; one `EngineRefresh` event per refresh,
    /// one `ConeInvalidated` per commit, and one `CandidatePruned` per
    /// statically discarded candidate — all emitted from the coordinating
    /// thread (pruning details merge back with the worker results), so the
    /// workers stay telemetry-free.
    telemetry: Telemetry,
    cache: CandidateCache,
    /// Candidates rejected for cause (e.g. a magnitude violation), keyed by
    /// (node, local-function signature): they stay suppressed through cache
    /// flushes and re-evaluations, which keeps cache-off runs identical to
    /// cache-on runs.
    banned: HashMap<(NodeId, u64), HashSet<Expr>>,
    /// Remaining error budget for static pruning, set by the selection loop
    /// before each refresh (`+∞` until then, and whenever pruning cannot be
    /// proven semantics-preserving — see
    /// [`set_prune_budget`](CandidateEngine::set_prune_budget)).
    prune_budget: f64,
    /// Node ids computed by the most recent refresh (diagnostics/tests).
    last_evaluated: Vec<NodeId>,
    stats: EngineStats,
}

impl CandidateEngine {
    /// Creates an engine for one run. `needs_dont_cares` selects whether
    /// estimates price don't-cares (single-selection) or collapse to the
    /// apparent rate (multi-selection).
    pub fn new(config: &AlsConfig, needs_dont_cares: bool) -> Self {
        CandidateEngine {
            config: config.clone(),
            needs_dont_cares,
            threads: resolve_threads(config.threads),
            cache_enabled: config.cache,
            telemetry: config.telemetry.clone(),
            cache: CandidateCache::default(),
            banned: HashMap::new(),
            prune_budget: f64::INFINITY,
            last_evaluated: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// Sets the remaining error budget used for static candidate pruning:
    /// a candidate whose static lower bound on the apparent error rate
    /// exceeds it (plus a 1e-9 guard epsilon) is discarded before its local
    /// pattern distribution is gathered. The callers pass the quantity
    /// their own dynamic filter compares the apparent rate against
    /// (single-selection: the margin; multi-selection: the knapsack
    /// capacity converted back to a rate), so pruning never changes an
    /// outcome.
    pub fn set_prune_budget(&mut self, budget: f64) {
        self.prune_budget = budget;
    }

    /// The budget actually applied this refresh: pruning must be enabled
    /// and provably transparent. With don't-care pricing on, the
    /// single-selection filter compares the *estimate* (which discards
    /// don't-care ELIPs and can be below any sound bound on the apparent
    /// rate), so pruning on apparent-rate bounds is disabled there.
    fn effective_budget(&self) -> f64 {
        if self.config.pruning.is_enabled()
            && !(self.needs_dont_cares && self.config.use_dont_cares)
        {
            self.prune_budget
        } else {
            f64::INFINITY
        }
    }

    /// The resolved worker-thread count (`config.threads`, with `0` mapped
    /// to the machine's available parallelism).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Brings the cache up to date with `net`: drops entries for dead or
    /// rewritten nodes, then evaluates every uncached eligible node — in
    /// parallel when the pending set is large enough.
    ///
    /// Simulates `net` freshly (and lazily — only when the pending set is
    /// non-empty). When current signatures are already at hand, use
    /// [`refresh_from_view`](CandidateEngine::refresh_from_view) instead.
    pub fn refresh(&mut self, net: &Network, ctx: &AlsContext) {
        self.refresh_impl(net, None, ctx);
    }

    /// Like [`refresh`](CandidateEngine::refresh), but evaluates against the
    /// caller's already-simulated signatures (typically an
    /// [`IncrementalSim`](als_sim::IncrementalSim) view) instead of
    /// simulating freshly. The view must reflect `net` exactly.
    pub fn refresh_from_view(&mut self, net: &Network, sim: SimView<'_>, ctx: &AlsContext) {
        self.refresh_impl(net, Some(sim), ctx);
    }

    fn refresh_impl(&mut self, net: &Network, sim: Option<SimView<'_>>, ctx: &AlsContext) {
        // Debug-build invariant: the engine must never price candidates on a
        // structurally broken network (compiled out of release builds, so
        // release perf and the determinism property tests are untouched).
        #[cfg(debug_assertions)]
        debug_assert!(
            net.check().is_ok(),
            "engine refreshed on an inconsistent network: {:?}",
            net.check()
        );
        let mark = self.telemetry.start();
        self.stats.refreshes += 1;
        if !self.cache_enabled {
            self.cache.entries.clear();
        }
        // lint:allow(map-iter): order-independent removal; no iteration order escapes
        self.cache.entries.retain(|id, _| net.is_live(*id));

        let budget = self.effective_budget();
        let mut hits = 0usize;
        let mut pending: Vec<(NodeId, u64)> = Vec::new();
        for id in net.internal_ids() {
            let signature = local_signature(net, id);
            match self.cache.entries.get(&id) {
                // A cached entry may have dropped candidates whose static
                // lower bound exceeded *its* budget; it stays valid only for
                // budgets at most that large (anything it pruned is still
                // prunable). A grown budget forces re-evaluation.
                Some(entry) if entry.signature == signature && budget <= entry.prune_budget => {
                    hits += 1;
                }
                _ => pending.push((id, signature)),
            }
        }
        self.stats.cache_hits += hits;
        self.last_evaluated = pending.iter().map(|&(id, _)| id).collect();
        let evaluated = pending.len();
        let mut nodes_skipped = 0usize;
        if !pending.is_empty() {
            self.stats.evaluated += pending.len();

            let owned: SimResult;
            let view = if let Some(v) = sim {
                v
            } else {
                owned = ctx.simulate(net);
                owned.view()
            };
            let (computed, sat_stats) = evaluate_all(
                net,
                view,
                &self.config,
                self.needs_dont_cares,
                budget,
                self.telemetry.is_enabled(),
                &pending,
                self.threads,
            );
            // Per-candidate pruning info is collected inside the workers and
            // emitted here, post-merge, in node-id order — so the event
            // stream is identical for every thread count.
            let mut pruned_events: Vec<PrunedCandidate> = Vec::new();
            for (id, outcome) in computed {
                self.stats.candidates_pruned += outcome.pruned_count;
                nodes_skipped += usize::from(outcome.gather_skipped);
                pruned_events.extend(outcome.pruned);
                self.cache.entries.insert(id, outcome.entry);
            }
            self.stats.nodes_skipped += nodes_skipped;
            for p in pruned_events {
                self.telemetry.emit(move || Event::CandidatePruned {
                    node: p.node,
                    ase: p.ase,
                    static_lo: p.static_lo,
                    static_hi: p.static_hi,
                    budget,
                });
            }
            // Worker-side SAT counters are plain sums over chunk-scoped
            // classifiers, so the aggregate (emitted here, post-merge) is
            // identical for every thread count.
            if !sat_stats.is_empty() {
                self.telemetry.emit(|| Event::SatActivity {
                    sat_queries: sat_stats.sat_queries,
                    solver_instances: sat_stats.solver_instances,
                    clauses_retracted: sat_stats.clauses_retracted,
                });
            }
        }
        self.telemetry.emit(|| Event::EngineRefresh {
            evaluated: evaluated as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            cache_hits: hits as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            nodes_skipped: nodes_skipped as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            nanos: Telemetry::nanos_since(mark),
        });
    }

    /// The priced candidates of node `id` (empty when the node is ineligible
    /// or not yet refreshed), with banned candidates filtered out.
    pub fn candidates(&self, id: NodeId) -> impl Iterator<Item = &CandidateEval> {
        let entry = self.cache.entries.get(&id);
        let bans = entry.and_then(|e| self.banned.get(&(id, e.signature)));
        entry
            .map(|e| e.candidates.as_slice())
            .unwrap_or_default()
            .iter()
            .filter(move |c| bans.is_none_or(|set| !set.contains(&c.ase.expr)))
    }

    /// The cached node ids in ascending order — the deterministic iteration
    /// order for candidate selection.
    pub fn node_ids(&self) -> Vec<NodeId> {
        // lint:allow(map-iter): collected set is sorted on the next line
        let mut ids: Vec<NodeId> = self.cache.entries.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Permanently suppresses one candidate of `id` (e.g. after a measured
    /// magnitude violation, which the local estimate cannot predict). The
    /// ban is keyed on the node's *current* local function, so it expires
    /// naturally if the node is later rewritten.
    pub fn ban(&mut self, net: &Network, id: NodeId, expr: &Expr) {
        let signature = local_signature(net, id);
        self.banned
            .entry((id, signature))
            .or_default()
            .insert(expr.clone());
    }

    /// Invalidates everything a committed change set may have affected.
    ///
    /// Call it with a network in which every id of `changed` is live. The
    /// cone per changed node `c` is `TFO(c)` (signature / probability
    /// changes) plus, when the engine prices don't-cares, the
    /// window-influence ball of `c` (structural window changes).
    ///
    /// `TFO(c)` is identical before and after applying an ASE at `c` (only
    /// fanin edges of `c` change), so a don't-care-free engine needs one call
    /// on either network. The ball is *not*: replacing `c` by a constant
    /// drops its fanin edges, and windows that contained those edges change
    /// shape. Callers pricing don't-cares therefore invalidate twice — once
    /// with the pre-change network and once with the post-change one — which
    /// unions the two cones. Constant-propagation cascades stay inside
    /// `TFO(changed)` and are additionally caught by the signature key.
    pub fn invalidate_committed(&mut self, net: &Network, changed: &[NodeId]) {
        if self.cache.entries.is_empty() {
            return;
        }
        let mut cone: Vec<bool> = Vec::new();
        for &c in changed {
            let tfo = net.tfo_mask(c);
            if cone.is_empty() {
                cone = vec![false; tfo.len()];
            }
            for (slot, hit) in cone.iter_mut().zip(&tfo) {
                *slot |= hit;
            }
            if self.needs_dont_cares && self.config.use_dont_cares {
                let near = window_influence(
                    net,
                    c,
                    self.config.dont_care.levels_in,
                    self.config.dont_care.levels_out,
                );
                for (slot, hit) in cone.iter_mut().zip(&near) {
                    *slot |= hit;
                }
            }
        }
        let before = self.cache.entries.len();
        let keep = |id: &NodeId| !cone.get(id.index()).copied().unwrap_or(false);
        // lint:allow(map-iter): retain's predicate is per-entry, so visit order cannot matter
        self.cache.entries.retain(|id, _| keep(id));
        let dropped = before - self.cache.entries.len();
        // Debug-build invariant: a committed node sits inside its own TFO
        // cone, so its stale pricing must never survive the invalidation.
        #[cfg(debug_assertions)]
        for &c in changed {
            debug_assert!(
                !self.cache.entries.contains_key(&c),
                "committed node {c} survived its own invalidation cone"
            );
        }
        self.telemetry.emit(|| Event::ConeInvalidated {
            changed: changed.len() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            dropped: dropped as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
        });
    }

    /// Node ids the most recent [`refresh`](CandidateEngine::refresh)
    /// actually evaluated (i.e. cache misses), in ascending order.
    pub fn last_evaluated(&self) -> &[NodeId] {
        &self.last_evaluated
    }

    /// Cumulative counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }
}

/// Resolves a configured thread count: `0` means "ask the OS".
pub(crate) fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        configured
    }
}

/// Hash of the node's local function: expression plus fanin ids. Two
/// evaluations agree whenever this signature does (probabilities also depend
/// on fanin *signatures*, which cone invalidation tracks).
fn local_signature(net: &Network, id: NodeId) -> u64 {
    let node = net.node(id);
    let mut h = DefaultHasher::new();
    node.expr().hash(&mut h);
    node.fanins().hash(&mut h);
    h.finish()
}

/// Pruning details for one discarded candidate, collected in the workers
/// (only when a telemetry sink is attached) and emitted post-merge.
#[derive(Debug)]
struct PrunedCandidate {
    node: String,
    ase: String,
    static_lo: f64,
    static_hi: f64,
}

/// One node's evaluation result plus its pruning side-channel.
#[derive(Debug)]
struct NodeOutcome {
    entry: NodeEntry,
    /// Candidates discarded by static bounds.
    pruned_count: usize,
    /// Their details, populated only when `record_pruned` was set.
    pruned: Vec<PrunedCandidate>,
    /// Whether the local-pattern gather was skipped because every candidate
    /// was pruned.
    gather_skipped: bool,
}

impl NodeOutcome {
    fn empty(signature: u64, prune_budget: f64) -> NodeOutcome {
        NodeOutcome {
            entry: NodeEntry {
                signature,
                prune_budget,
                candidates: Vec::new(),
            },
            pruned_count: 0,
            pruned: Vec::new(),
            gather_skipped: false,
        }
    }
}

/// Evaluates `pending` nodes, fanning out across scoped threads when
/// worthwhile; results come back sorted by node id so insertion order (and
/// thus every downstream float reduction) is independent of thread count.
///
/// SAT-based don't-care classification runs through one
/// [`IncrementalClassifier`] per work *chunk* (not per worker): the chunk is
/// the scheduling unit, so solver-instance counts depend only on the chunk
/// contents — identical for every thread count — and the returned
/// [`SolverStats`] are plain sums that commute across workers.
#[allow(clippy::too_many_arguments)]
fn evaluate_all(
    net: &Network,
    sim: SimView<'_>,
    config: &AlsConfig,
    needs_dont_cares: bool,
    budget: f64,
    record_pruned: bool,
    pending: &[(NodeId, u64)],
    threads: usize,
) -> (Vec<(NodeId, NodeOutcome)>, SolverStats) {
    let workers = threads
        .min(pending.len().div_ceil(MIN_NODES_PER_WORKER))
        .max(1);
    let reuse = config.dont_care.reuse;
    let eval = |id: NodeId, sig: u64, classifier: &mut IncrementalClassifier| {
        evaluate_node(
            net,
            sim,
            config,
            needs_dont_cares,
            budget,
            record_pruned,
            classifier,
            id,
            sig,
        )
    };
    let (mut out, sat_stats) = if workers <= 1 {
        let mut out: Vec<(NodeId, NodeOutcome)> = Vec::with_capacity(pending.len());
        let mut stats = SolverStats::default();
        for chunk in pending.chunks(QUEUE_CHUNK) {
            let mut classifier = IncrementalClassifier::new(reuse);
            for &(id, sig) in chunk {
                out.push((id, eval(id, sig, &mut classifier)));
            }
            stats.merge(&classifier.stats());
        }
        (out, stats)
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let eval = &eval;
                    scope.spawn(move || {
                        let mut part = Vec::new();
                        let mut stats = SolverStats::default();
                        loop {
                            let start = next.fetch_add(QUEUE_CHUNK, Ordering::Relaxed);
                            if start >= pending.len() {
                                break;
                            }
                            let end = (start + QUEUE_CHUNK).min(pending.len());
                            let mut classifier = IncrementalClassifier::new(reuse);
                            for &(id, sig) in &pending[start..end] {
                                part.push((id, eval(id, sig, &mut classifier)));
                            }
                            stats.merge(&classifier.stats());
                        }
                        (part, stats)
                    })
                })
                .collect();
            let mut out = Vec::new();
            let mut stats = SolverStats::default();
            for h in handles {
                let (part, s) = h.join().expect("candidate-evaluation worker panicked"); // lint:allow(panic): propagates a worker panic, which is already fatal
                out.extend(part);
                stats.merge(&s);
            }
            (out, stats)
        })
    };
    out.sort_by_key(|&(id, _)| id);
    (out, sat_stats)
}

/// Sound per-minterm bounds on the node's local pattern distribution from
/// popcounts alone: exact for `k ≤ 2` (marginals determine one variable;
/// marginals + one pairwise joint determine two — computed in integer
/// counts so the division matches the simulator's gather bit for bit),
/// Fréchet from the marginals beyond that.
fn static_minterm_bounds(net: &Network, sim: SimView<'_>, id: NodeId) -> MintermBounds {
    let node = net.node(id);
    let fanins = node.fanins();
    let total = sim.num_patterns() as u64; // lint:allow(as-cast): usize fits u64 on all supported targets
    let counts: Vec<u64> = fanins.iter().map(|&f| sim.count_ones(f)).collect();
    if counts.len() <= 2 {
        let joint = if let [a, b] = fanins {
            Some(joint_count_ones(sim, *a, *b))
        } else {
            None
        };
        if let Some(bounds) = MintermBounds::from_counts(total, &counts, joint) {
            return bounds;
        }
    }
    let marginals: Vec<Interval> = counts
        .iter()
        .map(|&c| Interval::point(c as f64 / total as f64)) // lint:allow(as-cast): counts << 2^52, exact in f64
        .collect();
    MintermBounds::from_marginals_frechet(&marginals)
}

/// How many patterns set both signals to 1 (one AND-popcount sweep).
fn joint_count_ones(sim: SimView<'_>, a: NodeId, b: NodeId) -> u64 {
    let wa = sim.node_words(a);
    let wb = sim.node_words(b);
    let mut total = 0u64;
    for (i, (x, y)) in wa.iter().zip(wb).enumerate() {
        let mut w = x & y;
        if i + 1 == wa.len() {
            w &= sim.tail_mask();
        }
        total += u64::from(w.count_ones());
    }
    total
}

/// The per-node work item: ASE enumeration, static bounding (and pruning)
/// of every candidate, then — only if a candidate survives — local-pattern
/// statistics, optional don't-care classification and exact pricing.
#[allow(clippy::too_many_arguments)]
fn evaluate_node(
    net: &Network,
    sim: SimView<'_>,
    config: &AlsConfig,
    needs_dont_cares: bool,
    budget: f64,
    record_pruned: bool,
    classifier: &mut IncrementalClassifier,
    id: NodeId,
    signature: u64,
) -> NodeOutcome {
    let node = net.node(id);
    let k = node.fanins().len();
    if k > config.max_fanins || node.is_constant() {
        return NodeOutcome::empty(signature, budget);
    }
    let ases = generate_ases(node.expr(), k, config.max_enum_literals);
    if ases.is_empty() {
        return NodeOutcome::empty(signature, budget);
    }

    // Static bounds first: popcounts only, no per-pattern gather. An exact
    // ASE has an empty ELIP set and a `[0, 0]`-ish interval, so it can
    // never be pruned.
    let bounds = static_minterm_bounds(net, sim, id);
    let mut pruned_count = 0usize;
    let mut pruned: Vec<PrunedCandidate> = Vec::new();
    let mut survivors: Vec<(Ase, Interval)> = Vec::new();
    for ase in ases {
        let interval = bounds.set_probability(&ase.elips);
        if interval.lo > budget + PRUNE_EPS {
            pruned_count += 1;
            if record_pruned {
                pruned.push(PrunedCandidate {
                    node: node.name().to_string(),
                    ase: ase.expr.to_string(),
                    static_lo: interval.lo,
                    static_hi: interval.hi,
                });
            }
        } else {
            survivors.push((ase, interval));
        }
    }
    if survivors.is_empty() {
        // Every candidate statically infeasible: the gather (the expensive
        // per-pattern pass) never runs for this node.
        return NodeOutcome {
            entry: NodeEntry {
                signature,
                prune_budget: budget,
                candidates: Vec::new(),
            },
            pruned_count,
            pruned,
            gather_skipped: true,
        };
    }

    let probs = local_pattern_probabilities_view(net, sim, id);
    let dc = if !(needs_dont_cares && config.use_dont_cares) {
        DontCares::none(k)
    } else if config.exact_dont_cares {
        match als_dontcare::compute_exact_dont_cares(net, id, config.exact_dc_node_limit) {
            Ok(dc) => dc,
            Err(_) => classifier.compute(net, id, &config.dont_care),
        }
    } else {
        classifier.compute(net, id, &config.dont_care)
    };
    let candidates = survivors
        .into_iter()
        .map(|(ase, interval)| {
            let apparent = apparent_error_rate(&ase, &probs);
            let estimate = estimated_real_error_rate(&ase, &probs, &dc);
            // Suite-wide soundness invariant, compiled out of release
            // builds: the dynamic apparent rate must sit inside its static
            // interval (up to pruning slack).
            debug_assert!(
                interval.contains_with_tol(apparent, PRUNE_EPS),
                "apparent rate {apparent} of {} escapes its static interval {interval}",
                node.name()
            );
            CandidateEval {
                ase,
                apparent,
                estimate,
                static_lo: interval.lo,
                static_hi: interval.hi,
            }
        })
        .collect();
    NodeOutcome {
        entry: NodeEntry {
            signature,
            prune_budget: budget,
            candidates,
        },
        pruned_count,
        pruned,
        gather_skipped: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    /// Two independent 4-input AND cones feeding separate POs, far enough
    /// apart that a change in one cone cannot influence the other.
    fn two_cones() -> (Network, Vec<NodeId>) {
        let mut net = Network::new("cones");
        let pis: Vec<NodeId> = (0..8).map(|i| net.add_pi(format!("x{i}"))).collect();
        let mut mids = Vec::new();
        for c in 0..2 {
            let base = c * 4;
            let g = net.add_node(
                format!("g{c}"),
                vec![pis[base], pis[base + 1]],
                Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
            );
            let h = net.add_node(
                format!("h{c}"),
                vec![g, pis[base + 2]],
                Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
            );
            let y = net.add_node(
                format!("y{c}"),
                vec![h, pis[base + 3]],
                Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
            );
            net.add_po(format!("o{c}"), y);
            mids.extend([g, h, y]);
        }
        (net, mids)
    }

    fn test_config() -> AlsConfig {
        let mut config = AlsConfig::with_threshold(0.10);
        config.patterns = crate::PatternPolicy::Fixed(256);
        config
    }

    #[test]
    fn refresh_evaluates_every_internal_node_once() {
        let (net, mids) = two_cones();
        let config = test_config();
        let ctx = AlsContext::new(&net, &config);
        let mut engine = CandidateEngine::new(&config, true);
        engine.refresh(&net, &ctx);
        assert_eq!(engine.last_evaluated().len(), mids.len());
        // A second refresh with no changes touches nothing.
        engine.refresh(&net, &ctx);
        assert!(engine.last_evaluated().is_empty());
        assert_eq!(engine.stats().evaluated, mids.len());
        assert_eq!(engine.stats().cache_hits, mids.len());
    }

    #[test]
    fn invalidation_reevaluates_exactly_the_cone() {
        let (net, mids) = two_cones();
        let config = test_config();
        let ctx = AlsContext::new(&net, &config);
        let mut engine = CandidateEngine::new(&config, true);
        let mut current = net.clone();
        engine.refresh(&current, &ctx);

        // Commit a change at the first cone's middle node, following the
        // two-call invalidation protocol (pre- and post-change cones).
        let pivot = mids[1]; // h0
        let cone = |net: &Network| -> Vec<bool> {
            let tfo = net.tfo_mask(pivot);
            let near = window_influence(
                net,
                pivot,
                config.dont_care.levels_in,
                config.dont_care.levels_out,
            );
            tfo.iter().zip(&near).map(|(a, b)| a | b).collect()
        };
        let pre = cone(&current);
        engine.invalidate_committed(&current, &[pivot]);
        current.replace_expr(pivot, Expr::lit(0, true));
        let post = cone(&current);
        engine.invalidate_committed(&current, &[pivot]);
        let expected: Vec<NodeId> = current
            .internal_ids()
            .filter(|id| pre[id.index()] || post[id.index()])
            .collect();
        engine.refresh(&current, &ctx);
        assert_eq!(engine.last_evaluated(), expected.as_slice());
        // The untouched cone must not appear.
        for &id in &mids[3..] {
            assert!(!engine.last_evaluated().contains(&id));
        }
    }

    #[test]
    fn signature_check_catches_out_of_band_rewrites() {
        let (net, mids) = two_cones();
        let config = test_config();
        let ctx = AlsContext::new(&net, &config);
        let mut engine = CandidateEngine::new(&config, true);
        let mut current = net.clone();
        engine.refresh(&current, &ctx);
        // Rewrite a node *without* telling the engine: the stale entry must
        // still be replaced on the next refresh thanks to the signature key.
        current.replace_expr(mids[0], Expr::lit(1, true));
        engine.refresh(&current, &ctx);
        assert!(engine.last_evaluated().contains(&mids[0]));
    }

    /// A wide network (many independent AND chains) so a 4-thread refresh
    /// really engages several workers (see [`MIN_NODES_PER_WORKER`]).
    fn wide_net() -> Network {
        let mut net = Network::new("wide");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let c = net.add_pi("c");
        for i in 0..48 {
            let g = net.add_node(
                format!("g{i}"),
                vec![a, b],
                Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
            );
            let h = net.add_node(
                format!("h{i}"),
                vec![g, c],
                Cover::from_cubes(2, [cube(&[(0, true), (1, i % 2 == 0)])]),
            );
            net.add_po(format!("o{i}"), h);
        }
        net
    }

    #[test]
    fn thread_counts_agree() {
        let net = wide_net();
        let mut config = test_config();
        let ctx = AlsContext::new(&net, &config);
        let collect = |engine: &CandidateEngine| -> Vec<(NodeId, String, f64, f64)> {
            engine
                .node_ids()
                .into_iter()
                .flat_map(|id| {
                    engine
                        .candidates(id)
                        .map(|c| (id, c.ase.expr.to_string(), c.apparent, c.estimate))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        config.threads = 1;
        let mut one = CandidateEngine::new(&config, true);
        one.refresh(&net, &ctx);
        config.threads = 4;
        let mut four = CandidateEngine::new(&config, true);
        four.refresh(&net, &ctx);
        assert_eq!(collect(&one), collect(&four));
    }

    #[test]
    fn cache_disabled_recomputes_everything() {
        let (net, mids) = two_cones();
        let mut config = test_config();
        config.cache = false;
        let ctx = AlsContext::new(&net, &config);
        let mut engine = CandidateEngine::new(&config, true);
        engine.refresh(&net, &ctx);
        engine.refresh(&net, &ctx);
        assert_eq!(engine.stats().evaluated, 2 * mids.len());
        assert_eq!(engine.stats().cache_hits, 0);
    }

    #[test]
    fn refresh_from_view_prices_identically_to_refresh() {
        let (net, mids) = two_cones();
        let config = test_config();
        let ctx = AlsContext::new(&net, &config);

        let mut fresh = CandidateEngine::new(&config, true);
        fresh.refresh(&net, &ctx);

        let mut viewed = CandidateEngine::new(&config, true);
        let inc = ctx.incremental(&net);
        viewed.refresh_from_view(&net, inc.view(), &ctx);

        for &id in &mids {
            let a: Vec<_> = fresh
                .candidates(id)
                .map(|c| (format!("{:?}", c.ase.expr), c.apparent, c.estimate))
                .collect();
            let b: Vec<_> = viewed
                .candidates(id)
                .map(|c| (format!("{:?}", c.ase.expr), c.apparent, c.estimate))
                .collect();
            assert_eq!(a, b, "candidate pricing diverged at node {id}");
        }
    }

    #[test]
    fn bans_survive_cache_flushes() {
        let (net, mids) = two_cones();
        let mut config = test_config();
        config.cache = false;
        let ctx = AlsContext::new(&net, &config);
        let mut engine = CandidateEngine::new(&config, true);
        engine.refresh(&net, &ctx);
        let banned_expr = engine
            .candidates(mids[0])
            .next()
            .expect("g0 has candidates")
            .ase
            .expr
            .clone();
        engine.ban(&net, mids[0], &banned_expr);
        engine.refresh(&net, &ctx);
        assert!(engine
            .candidates(mids[0])
            .all(|c| c.ase.expr != banned_expr));
    }
}
