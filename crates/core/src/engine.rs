//! The parallel, cache-aware candidate-evaluation engine.
//!
//! Both selection algorithms spend the bulk of their runtime on the same
//! per-node work: enumerate the node's ASEs, gather its local-pattern
//! probabilities from the shared simulation run (§3.2), optionally classify
//! its don't-cares (§3.3) and price every ASE. That work is pure over the
//! current network and one [`SimResult`](als_sim::SimResult), so the engine
//!
//! * **memoizes** it per node in a [`CandidateCache`], keyed by the node id
//!   and a *local-function signature* (expression + fanin list), so a rewrite
//!   that slips past the cone invalidation is still caught;
//! * **fans it out** across scoped worker threads over a chunked work queue
//!   of node ids, merging results in node-id order so every thread count
//!   produces byte-identical outcomes;
//! * **invalidates incrementally** after each committed change: a change at
//!   `c` alters the signatures (hence local-pattern probabilities) of exactly
//!   `TFO(c)`, and alters windowed don't-care classifications only inside the
//!   window-influence cone of `c` (see
//!   [`window_influence`](als_dontcare::window_influence)) — everything else
//!   stays cached instead of being flushed wholesale.

use crate::ase::{generate_ases, Ase};
use crate::error_model::{apparent_error_rate, estimated_real_error_rate};
use crate::{AlsConfig, AlsContext};
use als_dontcare::{compute_dont_cares, window_influence, DontCares};
use als_logic::Expr;
use als_network::{Network, NodeId};
use als_sim::{local_pattern_probabilities_view, SimView};
use als_telemetry::{Event, Telemetry};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One priced candidate change at a node.
#[derive(Clone, Debug)]
pub struct CandidateEval {
    /// The approximate simplified expression.
    pub ase: Ase,
    /// Its apparent error rate (§3.2) — the multi-selection knapsack weight.
    pub apparent: f64,
    /// Its estimated real error rate with don't-care ELIPs discarded (§3.3)
    /// — the single-selection score denominator. Equals `apparent` when the
    /// engine runs without don't-cares.
    pub estimate: f64,
}

/// Cached evaluation of one node, valid while its local function (and the
/// invalidation cone around it) stays untouched.
#[derive(Clone, Debug)]
struct NodeEntry {
    /// Hash of the node's expression and fanin list at evaluation time.
    signature: u64,
    candidates: Vec<CandidateEval>,
}

/// The per-run memo of node evaluations: node id → priced candidates, keyed
/// by the local-function signature.
#[derive(Debug, Default)]
pub struct CandidateCache {
    entries: HashMap<NodeId, NodeEntry>,
}

/// Cumulative engine counters (cache effectiveness, parallel work).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Refresh calls served so far.
    pub refreshes: usize,
    /// Node evaluations actually computed (cache misses).
    pub evaluated: usize,
    /// Node evaluations served from the cache.
    pub cache_hits: usize,
}

/// Below this many pending nodes a refresh stays single-threaded: spawning
/// scoped workers costs more than evaluating a handful of nodes.
const MIN_NODES_PER_WORKER: usize = 8;

/// Work-queue chunk size: big enough to keep the atomic counter off the hot
/// path, small enough to balance uneven per-node costs (SAT-based don't-care
/// queries vary widely).
const QUEUE_CHUNK: usize = 8;

/// The candidate-evaluation engine. One instance lives for one synthesis
/// run; the selection loops call [`refresh`](CandidateEngine::refresh) at
/// the top of every iteration and
/// [`invalidate_committed`](CandidateEngine::invalidate_committed) after
/// every accepted change.
#[derive(Debug)]
pub struct CandidateEngine {
    config: AlsConfig,
    /// Whether estimates discard don't-care ELIPs (single-selection). The
    /// multi-selection engine runs without: its knapsack weights are
    /// *apparent* rates (Theorem 1), so don't-care windows are never built.
    needs_dont_cares: bool,
    threads: usize,
    cache_enabled: bool,
    /// Sink handle from the config; one `EngineRefresh` event per refresh
    /// and one `ConeInvalidated` per commit — never per-node events, so the
    /// workers stay telemetry-free.
    telemetry: Telemetry,
    cache: CandidateCache,
    /// Candidates rejected for cause (e.g. a magnitude violation), keyed by
    /// (node, local-function signature): they stay suppressed through cache
    /// flushes and re-evaluations, which keeps cache-off runs identical to
    /// cache-on runs.
    banned: HashMap<(NodeId, u64), HashSet<Expr>>,
    /// Node ids computed by the most recent refresh (diagnostics/tests).
    last_evaluated: Vec<NodeId>,
    stats: EngineStats,
}

impl CandidateEngine {
    /// Creates an engine for one run. `needs_dont_cares` selects whether
    /// estimates price don't-cares (single-selection) or collapse to the
    /// apparent rate (multi-selection).
    pub fn new(config: &AlsConfig, needs_dont_cares: bool) -> Self {
        CandidateEngine {
            config: config.clone(),
            needs_dont_cares,
            threads: resolve_threads(config.threads),
            cache_enabled: config.cache,
            telemetry: config.telemetry.clone(),
            cache: CandidateCache::default(),
            banned: HashMap::new(),
            last_evaluated: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// The resolved worker-thread count (`config.threads`, with `0` mapped
    /// to the machine's available parallelism).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Brings the cache up to date with `net`: drops entries for dead or
    /// rewritten nodes, then evaluates every uncached eligible node — in
    /// parallel when the pending set is large enough.
    pub fn refresh(&mut self, net: &Network, ctx: &AlsContext) {
        // Debug-build invariant: the engine must never price candidates on a
        // structurally broken network (compiled out of release builds, so
        // release perf and the determinism property tests are untouched).
        #[cfg(debug_assertions)]
        debug_assert!(
            net.check().is_ok(),
            "engine refreshed on an inconsistent network: {:?}",
            net.check()
        );
        let mark = self.telemetry.start();
        self.stats.refreshes += 1;
        if !self.cache_enabled {
            self.cache.entries.clear();
        }
        self.cache.entries.retain(|id, _| net.is_live(*id));

        let mut hits = 0usize;
        let mut pending: Vec<(NodeId, u64)> = Vec::new();
        for id in net.internal_ids() {
            let signature = local_signature(net, id);
            match self.cache.entries.get(&id) {
                Some(entry) if entry.signature == signature => hits += 1,
                _ => pending.push((id, signature)),
            }
        }
        self.stats.cache_hits += hits;
        self.last_evaluated = pending.iter().map(|&(id, _)| id).collect();
        let evaluated = pending.len();
        if !pending.is_empty() {
            self.stats.evaluated += pending.len();

            let sim = ctx.simulate(net);
            let computed = evaluate_all(
                net,
                sim.view(),
                &self.config,
                self.needs_dont_cares,
                &pending,
                self.threads,
            );
            for (id, entry) in computed {
                self.cache.entries.insert(id, entry);
            }
        }
        self.telemetry.emit(|| Event::EngineRefresh {
            evaluated: evaluated as u64,
            cache_hits: hits as u64,
            nanos: Telemetry::nanos_since(mark),
        });
    }

    /// The priced candidates of node `id` (empty when the node is ineligible
    /// or not yet refreshed), with banned candidates filtered out.
    pub fn candidates(&self, id: NodeId) -> impl Iterator<Item = &CandidateEval> {
        let entry = self.cache.entries.get(&id);
        let bans = entry.and_then(|e| self.banned.get(&(id, e.signature)));
        entry
            .map(|e| e.candidates.as_slice())
            .unwrap_or_default()
            .iter()
            .filter(move |c| bans.is_none_or(|set| !set.contains(&c.ase.expr)))
    }

    /// The cached node ids in ascending order — the deterministic iteration
    /// order for candidate selection.
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.cache.entries.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Permanently suppresses one candidate of `id` (e.g. after a measured
    /// magnitude violation, which the local estimate cannot predict). The
    /// ban is keyed on the node's *current* local function, so it expires
    /// naturally if the node is later rewritten.
    pub fn ban(&mut self, net: &Network, id: NodeId, expr: &Expr) {
        let signature = local_signature(net, id);
        self.banned
            .entry((id, signature))
            .or_default()
            .insert(expr.clone());
    }

    /// Invalidates everything a committed change set may have affected.
    ///
    /// Call it with a network in which every id of `changed` is live. The
    /// cone per changed node `c` is `TFO(c)` (signature / probability
    /// changes) plus, when the engine prices don't-cares, the
    /// window-influence ball of `c` (structural window changes).
    ///
    /// `TFO(c)` is identical before and after applying an ASE at `c` (only
    /// fanin edges of `c` change), so a don't-care-free engine needs one call
    /// on either network. The ball is *not*: replacing `c` by a constant
    /// drops its fanin edges, and windows that contained those edges change
    /// shape. Callers pricing don't-cares therefore invalidate twice — once
    /// with the pre-change network and once with the post-change one — which
    /// unions the two cones. Constant-propagation cascades stay inside
    /// `TFO(changed)` and are additionally caught by the signature key.
    pub fn invalidate_committed(&mut self, net: &Network, changed: &[NodeId]) {
        if self.cache.entries.is_empty() {
            return;
        }
        let mut cone: Vec<bool> = Vec::new();
        for &c in changed {
            let tfo = net.tfo_mask(c);
            if cone.is_empty() {
                cone = vec![false; tfo.len()];
            }
            for (slot, hit) in cone.iter_mut().zip(&tfo) {
                *slot |= hit;
            }
            if self.needs_dont_cares && self.config.use_dont_cares {
                let near = window_influence(
                    net,
                    c,
                    self.config.dont_care.levels_in,
                    self.config.dont_care.levels_out,
                );
                for (slot, hit) in cone.iter_mut().zip(&near) {
                    *slot |= hit;
                }
            }
        }
        let before = self.cache.entries.len();
        self.cache
            .entries
            .retain(|id, _| !cone.get(id.index()).copied().unwrap_or(false));
        let dropped = before - self.cache.entries.len();
        // Debug-build invariant: a committed node sits inside its own TFO
        // cone, so its stale pricing must never survive the invalidation.
        #[cfg(debug_assertions)]
        for &c in changed {
            debug_assert!(
                !self.cache.entries.contains_key(&c),
                "committed node {c} survived its own invalidation cone"
            );
        }
        self.telemetry.emit(|| Event::ConeInvalidated {
            changed: changed.len() as u64,
            dropped: dropped as u64,
        });
    }

    /// Node ids the most recent [`refresh`](CandidateEngine::refresh)
    /// actually evaluated (i.e. cache misses), in ascending order.
    pub fn last_evaluated(&self) -> &[NodeId] {
        &self.last_evaluated
    }

    /// Cumulative counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }
}

/// Resolves a configured thread count: `0` means "ask the OS".
pub(crate) fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        configured
    }
}

/// Hash of the node's local function: expression plus fanin ids. Two
/// evaluations agree whenever this signature does (probabilities also depend
/// on fanin *signatures*, which cone invalidation tracks).
fn local_signature(net: &Network, id: NodeId) -> u64 {
    let node = net.node(id);
    let mut h = DefaultHasher::new();
    node.expr().hash(&mut h);
    node.fanins().hash(&mut h);
    h.finish()
}

/// Evaluates `pending` nodes, fanning out across scoped threads when
/// worthwhile; results come back sorted by node id so insertion order (and
/// thus every downstream float reduction) is independent of thread count.
fn evaluate_all(
    net: &Network,
    sim: SimView<'_>,
    config: &AlsConfig,
    needs_dont_cares: bool,
    pending: &[(NodeId, u64)],
    threads: usize,
) -> Vec<(NodeId, NodeEntry)> {
    let workers = threads
        .min(pending.len().div_ceil(MIN_NODES_PER_WORKER))
        .max(1);
    let mut out: Vec<(NodeId, NodeEntry)> = if workers <= 1 {
        pending
            .iter()
            .map(|&(id, sig)| {
                (
                    id,
                    evaluate_node(net, sim, config, needs_dont_cares, id, sig),
                )
            })
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut part = Vec::new();
                        loop {
                            let start = next.fetch_add(QUEUE_CHUNK, Ordering::Relaxed);
                            if start >= pending.len() {
                                break;
                            }
                            let end = (start + QUEUE_CHUNK).min(pending.len());
                            for &(id, sig) in &pending[start..end] {
                                part.push((
                                    id,
                                    evaluate_node(net, sim, config, needs_dont_cares, id, sig),
                                ));
                            }
                        }
                        part
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("candidate-evaluation worker panicked")) // lint:allow(panic): propagates a worker panic, which is already fatal
                .collect()
        })
    };
    out.sort_by_key(|&(id, _)| id);
    out
}

/// The per-node work item: ASE enumeration, local-pattern statistics,
/// optional don't-care classification, and pricing of every candidate.
fn evaluate_node(
    net: &Network,
    sim: SimView<'_>,
    config: &AlsConfig,
    needs_dont_cares: bool,
    id: NodeId,
    signature: u64,
) -> NodeEntry {
    let node = net.node(id);
    let k = node.fanins().len();
    if k > config.max_fanins || node.is_constant() {
        return NodeEntry {
            signature,
            candidates: Vec::new(),
        };
    }
    let ases = generate_ases(node.expr(), k, config.max_enum_literals);
    if ases.is_empty() {
        return NodeEntry {
            signature,
            candidates: Vec::new(),
        };
    }
    let probs = local_pattern_probabilities_view(net, sim, id);
    let dc = if !(needs_dont_cares && config.use_dont_cares) {
        DontCares::none(k)
    } else if config.exact_dont_cares {
        als_dontcare::compute_exact_dont_cares(net, id, config.exact_dc_node_limit)
            .unwrap_or_else(|_| compute_dont_cares(net, id, &config.dont_care))
    } else {
        compute_dont_cares(net, id, &config.dont_care)
    };
    let candidates = ases
        .into_iter()
        .map(|ase| {
            let apparent = apparent_error_rate(&ase, &probs);
            let estimate = estimated_real_error_rate(&ase, &probs, &dc);
            CandidateEval {
                ase,
                apparent,
                estimate,
            }
        })
        .collect();
    NodeEntry {
        signature,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    /// Two independent 4-input AND cones feeding separate POs, far enough
    /// apart that a change in one cone cannot influence the other.
    fn two_cones() -> (Network, Vec<NodeId>) {
        let mut net = Network::new("cones");
        let pis: Vec<NodeId> = (0..8).map(|i| net.add_pi(format!("x{i}"))).collect();
        let mut mids = Vec::new();
        for c in 0..2 {
            let base = c * 4;
            let g = net.add_node(
                format!("g{c}"),
                vec![pis[base], pis[base + 1]],
                Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
            );
            let h = net.add_node(
                format!("h{c}"),
                vec![g, pis[base + 2]],
                Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
            );
            let y = net.add_node(
                format!("y{c}"),
                vec![h, pis[base + 3]],
                Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
            );
            net.add_po(format!("o{c}"), y);
            mids.extend([g, h, y]);
        }
        (net, mids)
    }

    fn test_config() -> AlsConfig {
        let mut config = AlsConfig::with_threshold(0.10);
        config.num_patterns = 256;
        config
    }

    #[test]
    fn refresh_evaluates_every_internal_node_once() {
        let (net, mids) = two_cones();
        let config = test_config();
        let ctx = AlsContext::new(&net, &config);
        let mut engine = CandidateEngine::new(&config, true);
        engine.refresh(&net, &ctx);
        assert_eq!(engine.last_evaluated().len(), mids.len());
        // A second refresh with no changes touches nothing.
        engine.refresh(&net, &ctx);
        assert!(engine.last_evaluated().is_empty());
        assert_eq!(engine.stats().evaluated, mids.len());
        assert_eq!(engine.stats().cache_hits, mids.len());
    }

    #[test]
    fn invalidation_reevaluates_exactly_the_cone() {
        let (net, mids) = two_cones();
        let config = test_config();
        let ctx = AlsContext::new(&net, &config);
        let mut engine = CandidateEngine::new(&config, true);
        let mut current = net.clone();
        engine.refresh(&current, &ctx);

        // Commit a change at the first cone's middle node, following the
        // two-call invalidation protocol (pre- and post-change cones).
        let pivot = mids[1]; // h0
        let cone = |net: &Network| -> Vec<bool> {
            let tfo = net.tfo_mask(pivot);
            let near = window_influence(
                net,
                pivot,
                config.dont_care.levels_in,
                config.dont_care.levels_out,
            );
            tfo.iter().zip(&near).map(|(a, b)| a | b).collect()
        };
        let pre = cone(&current);
        engine.invalidate_committed(&current, &[pivot]);
        current.replace_expr(pivot, Expr::lit(0, true));
        let post = cone(&current);
        engine.invalidate_committed(&current, &[pivot]);
        let expected: Vec<NodeId> = current
            .internal_ids()
            .filter(|id| pre[id.index()] || post[id.index()])
            .collect();
        engine.refresh(&current, &ctx);
        assert_eq!(engine.last_evaluated(), expected.as_slice());
        // The untouched cone must not appear.
        for &id in &mids[3..] {
            assert!(!engine.last_evaluated().contains(&id));
        }
    }

    #[test]
    fn signature_check_catches_out_of_band_rewrites() {
        let (net, mids) = two_cones();
        let config = test_config();
        let ctx = AlsContext::new(&net, &config);
        let mut engine = CandidateEngine::new(&config, true);
        let mut current = net.clone();
        engine.refresh(&current, &ctx);
        // Rewrite a node *without* telling the engine: the stale entry must
        // still be replaced on the next refresh thanks to the signature key.
        current.replace_expr(mids[0], Expr::lit(1, true));
        engine.refresh(&current, &ctx);
        assert!(engine.last_evaluated().contains(&mids[0]));
    }

    /// A wide network (many independent AND chains) so a 4-thread refresh
    /// really engages several workers (see [`MIN_NODES_PER_WORKER`]).
    fn wide_net() -> Network {
        let mut net = Network::new("wide");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let c = net.add_pi("c");
        for i in 0..48 {
            let g = net.add_node(
                format!("g{i}"),
                vec![a, b],
                Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
            );
            let h = net.add_node(
                format!("h{i}"),
                vec![g, c],
                Cover::from_cubes(2, [cube(&[(0, true), (1, i % 2 == 0)])]),
            );
            net.add_po(format!("o{i}"), h);
        }
        net
    }

    #[test]
    fn thread_counts_agree() {
        let net = wide_net();
        let mut config = test_config();
        let ctx = AlsContext::new(&net, &config);
        let collect = |engine: &CandidateEngine| -> Vec<(NodeId, String, f64, f64)> {
            engine
                .node_ids()
                .into_iter()
                .flat_map(|id| {
                    engine
                        .candidates(id)
                        .map(|c| (id, c.ase.expr.to_string(), c.apparent, c.estimate))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        config.threads = 1;
        let mut one = CandidateEngine::new(&config, true);
        one.refresh(&net, &ctx);
        config.threads = 4;
        let mut four = CandidateEngine::new(&config, true);
        four.refresh(&net, &ctx);
        assert_eq!(collect(&one), collect(&four));
    }

    #[test]
    fn cache_disabled_recomputes_everything() {
        let (net, mids) = two_cones();
        let mut config = test_config();
        config.cache = false;
        let ctx = AlsContext::new(&net, &config);
        let mut engine = CandidateEngine::new(&config, true);
        engine.refresh(&net, &ctx);
        engine.refresh(&net, &ctx);
        assert_eq!(engine.stats().evaluated, 2 * mids.len());
        assert_eq!(engine.stats().cache_hits, 0);
    }

    #[test]
    fn bans_survive_cache_flushes() {
        let (net, mids) = two_cones();
        let mut config = test_config();
        config.cache = false;
        let ctx = AlsContext::new(&net, &config);
        let mut engine = CandidateEngine::new(&config, true);
        engine.refresh(&net, &ctx);
        let banned_expr = engine
            .candidates(mids[0])
            .next()
            .expect("g0 has candidates")
            .ase
            .expr
            .clone();
        engine.ban(&net, mids[0], &banned_expr);
        engine.refresh(&net, &ctx);
        assert!(engine
            .candidates(mids[0])
            .all(|c| c.ase.expr != banned_expr));
    }
}
