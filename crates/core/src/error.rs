use std::error::Error;
use std::fmt;

/// Errors surfaced by the [`approximate`](crate::approximate) entry point
/// and the [`AlsConfig`](crate::AlsConfig) builder.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AlsError {
    /// A configuration field failed validation; the message names the field
    /// and the constraint it violated.
    InvalidConfig(String),
    /// The input network failed its consistency check.
    InvalidNetwork(String),
}

impl fmt::Display for AlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlsError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            AlsError::InvalidNetwork(msg) => write!(f, "invalid network: {msg}"),
        }
    }
}

impl Error for AlsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_category() {
        let e = AlsError::InvalidConfig("threshold must be a rate in [0, 1)".into());
        assert!(e.to_string().contains("invalid configuration"));
        assert!(e.to_string().contains("threshold"));
        let e = AlsError::InvalidNetwork("cycle".into());
        assert!(e.to_string().contains("invalid network"));
    }
}
