//! The single-selection algorithm (paper Algorithm 1).

use crate::ase::{Ase, AseKind};
use crate::delay_score::{score_gain, DelayScorer};
use crate::engine::{CandidateEngine, CandidateEval};
use crate::error_model::score;
use crate::report::{AlsOutcome, IterationRecord, SelectedChange};
use crate::{preprocess, AlsConfig, AlsContext};
use als_network::{Network, NodeId};
use als_telemetry::{Event, MetricsCollector, PhaseKind, Telemetry};
use std::sync::Arc;
use std::time::Instant;

/// Runs the single-selection algorithm: per iteration, every node's feasible
/// ASEs are scored by `saved literals / estimated real error rate` (don't
/// cares discarded per §3.3) and the single best change is applied; the loop
/// stops when no feasible change remains or the measured error rate would
/// exceed the threshold.
///
/// Candidate pricing is served by the [`CandidateEngine`]: node analyses
/// (local-pattern probabilities, don't-cares, ASE estimates) are cached
/// between iterations and re-computed — in parallel when
/// [`AlsConfig::threads`] allows — only for nodes inside the invalidation
/// cone of each committed change. That locality is what distinguishes this
/// method from SASIMI's global pairwise search.
///
/// The returned network always satisfies the threshold (measured on the
/// run's stimulus against the *original* network).
///
/// Prefer [`approximate`](crate::approximate) with
/// [`Strategy::Single`](crate::Strategy::Single) for the non-panicking
/// entry point; this wrapper is kept for compatibility.
///
/// # Panics
///
/// Panics if the input network fails its consistency check.
pub fn single_selection(original: &Network, config: &AlsConfig) -> AlsOutcome {
    let ctx = AlsContext::new(original, config);
    single_selection_with_context(original, config, ctx)
}

/// Workload-aware variant of [`single_selection`]: the error-rate budget is
/// measured under the supplied stimulus (see
/// [`PatternSet::from_vectors`](als_sim::PatternSet::from_vectors)) instead
/// of uniform random vectors.
///
/// # Panics
///
/// Panics if the input network fails its consistency check or the pattern
/// set drives a different PI count.
pub fn single_selection_under(
    original: &Network,
    config: &AlsConfig,
    patterns: als_sim::PatternSet,
) -> AlsOutcome {
    let ctx = AlsContext::with_patterns(original, patterns);
    single_selection_with_context(original, config, ctx)
}

pub(crate) fn single_selection_with_context(
    original: &Network,
    config: &AlsConfig,
    ctx: AlsContext,
) -> AlsOutcome {
    // lint:allow(nondeterminism): feeds telemetry wall-clock only, never the synthesis outcome
    let start = Instant::now();
    original.check().expect("input network must be consistent"); // lint:allow(panic): documented panic contract; `approximate()` is the fallible entry
    let initial_literals = original.literal_count();

    // Metrics for `AlsOutcome::metrics` are gathered through the same sink
    // machinery as user telemetry: an internal collector rides alongside any
    // configured sinks. Events are coarse (per refresh / iteration), so the
    // collector's cost is negligible and results are unaffected.
    let collector = Arc::new(MetricsCollector::new());
    let mut config = config.clone();
    config.telemetry = config.telemetry.clone().with(collector.clone());
    let config = &config;
    let ctx = ctx
        .with_telemetry(config.telemetry.clone())
        .with_sampling(config);

    config.telemetry.emit(|| Event::RunStart {
        algorithm: "single-selection",
        threads: crate::engine::resolve_threads(config.threads),
        num_patterns: ctx.patterns().num_patterns(),
        nodes: original.num_internal(),
        threshold: config.threshold,
        seed: config.seed,
    });

    let mut current = original.clone();
    let pre_mark = config.telemetry.start();
    if config.preprocess {
        preprocess::remove_redundancies(&mut current, ctx.patterns());
    }
    config.telemetry.emit(|| Event::PhaseEnd {
        phase: PhaseKind::Preprocess,
        nanos: Telemetry::nanos_since(pre_mark),
    });

    // The persistent incremental simulation state: constructed with one full
    // simulation, then kept current by dirty-set updates (`--resim full`
    // degrades every update to a full pass; results are byte-identical).
    let mut inc = ctx.incremental(&current);
    inc.set_full_resim(config.resim.is_full());
    let mut error_rate = ctx.measure_view(&current, inc.view());
    let mut margin = config.threshold - error_rate;
    let mut iterations: Vec<IterationRecord> = Vec::new();
    let mut engine = CandidateEngine::new(config, true);
    // `None` under `DelayWeight::Off`: the legacy scoring path runs with no
    // delay machinery constructed at all (byte-identity is pinned by the
    // determinism suite).
    let mut delay_scorer = DelayScorer::new(&current, config.delay_weight);

    for iteration in 1..=config.max_iterations {
        if margin < 0.0 {
            break;
        }
        // Cooperative cancellation: the network already satisfies the
        // threshold at every iteration boundary, so stopping here is sound.
        if config.cancel.is_cancelled() {
            break;
        }
        let iter_mark = config.telemetry.start();
        // The engine's static pruning may discard candidates whose sound
        // lower bound on the apparent rate exceeds the margin — exactly the
        // ones `best_candidate` would filter (when estimates equal apparent
        // rates; the engine disables pruning otherwise).
        engine.set_prune_budget(margin);
        engine.refresh_from_view(&current, inc.view(), &ctx);
        let Some((node, cand)) = best_candidate(&engine, margin, &current, delay_scorer.as_ref())
        else {
            break;
        };
        let snapshot = current.clone();
        let node_name = current.node(node).name().to_string();
        let ase_display = cand.ase.expr.to_string();
        let literals_saved = cand.ase.literals_saved;

        apply_ase(&mut current, node, &cand.ase);

        // Resimulate and decide in one step: under adaptive sampling this
        // may reject from a pattern prefix; accepted rates are always
        // measured at the full budget (see `AlsContext::update_and_accept`).
        let Some(new_error_rate) =
            ctx.update_and_accept(&mut inc, &mut current, &[node], false, config)
        else {
            current = snapshot;
            inc.rollback();
            if config.magnitude.is_some() {
                // Magnitude violations are routine (the estimate does not
                // model them): suppress this candidate and keep searching.
                engine.ban(&current, node, &cand.ase.expr);
                continue;
            }
            // A pure rate violation is unreachable in practice (the estimate
            // upper-bounds the increase on this pattern set); Algorithm 1
            // returns the network of the last iteration.
            break;
        };
        inc.commit();
        // Two-cone invalidation: the pre-change network covers windows that
        // contained the edges the ASE removed, the post-change one covers the
        // new structure (see `CandidateEngine::invalidate_committed`).
        engine.invalidate_committed(&snapshot, &[node]);
        engine.invalidate_committed(&current, &[node]);
        // Constant propagation is deferred to the end of the loop, so the
        // commit rewrote exactly one node in place and the delay map can
        // refresh its fanout cone incrementally.
        if let Some(scorer) = delay_scorer.as_mut() {
            scorer.update_cone(&current, &[node]);
        }
        // Committed-state invariant, compiled out of release builds: the
        // network must still pass its structural check after every rewrite.
        debug_assert!(
            current.check().is_ok(),
            "network inconsistent after committing {node_name}: {:?}",
            current.check()
        );
        error_rate = new_error_rate;
        margin = config.threshold - error_rate;
        let literals_after = current.literal_count();
        config.telemetry.emit(|| Event::ChangeCommitted {
            iteration: iteration as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            node: node_name.clone(),
            ase: ase_display.clone(),
            literals_saved: literals_saved as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            apparent: cand.apparent,
            static_lo: Some(cand.static_lo),
            static_hi: Some(cand.static_hi),
        });
        iterations.push(IterationRecord {
            iteration,
            changes: vec![SelectedChange {
                node_name,
                ase: ase_display,
                literals_saved,
                error_estimate: cand.estimate,
                apparent: cand.apparent,
            }],
            literals_after,
            error_rate_after: error_rate,
        });
        config.telemetry.emit(|| Event::IterationEnd {
            iteration: iteration as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            changes: 1,
            literals: literals_after as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            error_rate,
            nanos: Telemetry::nanos_since(iter_mark),
        });
    }

    // Constant propagation is deferred to the end so that each committed
    // change touches exactly one node (which keeps cache invalidation
    // local); it preserves the function, only tidying structure.
    current.propagate_constants();
    debug_assert!(current.check().is_ok());
    let final_literals = current.literal_count();
    config.telemetry.emit(|| Event::RunEnd {
        iterations: iterations.len() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
        literals: final_literals as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
        error_rate,
        nanos: start.elapsed().as_nanos() as u64, // lint:allow(as-cast): run duration << 584 years
    });
    AlsOutcome {
        final_literals,
        measured_error_rate: error_rate,
        network: current,
        iterations,
        initial_literals,
        runtime: start.elapsed(),
        metrics: collector.report(),
    }
}

/// Picks the highest-scoring feasible (estimate ≤ margin) engine candidate.
/// Ties in score break toward more saved literals, then lower node ids.
/// With a [`DelayScorer`] attached, the score numerator is the
/// delay-adjusted gain instead of the raw literal count; without one, this
/// is exactly the paper's ranking.
fn best_candidate(
    engine: &CandidateEngine,
    margin: f64,
    net: &Network,
    scorer: Option<&DelayScorer>,
) -> Option<(NodeId, CandidateEval)> {
    let mut best: Option<(NodeId, &CandidateEval, f64)> = None;
    for id in engine.node_ids() {
        for cand in engine.candidates(id) {
            if cand.estimate > margin {
                continue;
            }
            let s = match scorer {
                None => score(cand.ase.literals_saved, cand.estimate),
                Some(sc) => score_gain(sc.adjusted_gain(net, id, &cand.ase), cand.estimate),
            };
            let better = match &best {
                None => true,
                Some((_, b, b_score)) => {
                    s > *b_score
                        || (s == *b_score && cand.ase.literals_saved > b.ase.literals_saved)
                }
            };
            if better {
                best = Some((id, cand, s));
            }
        }
    }
    best.map(|(id, cand, _)| (id, cand.clone()))
}

/// Applies an ASE to the network.
pub(crate) fn apply_ase(net: &mut Network, node: NodeId, ase: &Ase) {
    match ase.kind {
        AseKind::ConstZero => net.replace_with_constant(node, false),
        AseKind::ConstOne => net.replace_with_constant(node, true),
        AseKind::Shrunk => net.replace_expr(node, ase.expr.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};
    use als_sim::{error_rate, PatternSet};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    /// A small circuit with an obviously cheap approximation: one output
    /// term depends on a rarely-true product.
    fn rare_term_net() -> Network {
        let mut net = Network::new("rare");
        let pis: Vec<NodeId> = (0..6).map(|i| net.add_pi(format!("x{i}"))).collect();
        // g = x0·x1·x2·x3 (true 1/16 of the time)
        let g = net.add_node(
            "g",
            pis[..4].to_vec(),
            Cover::from_cubes(4, [cube(&[(0, true), (1, true), (2, true), (3, true)])]),
        );
        // h = x4 + x5
        let h = net.add_node(
            "h",
            pis[4..].to_vec(),
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
        );
        // y = g + h
        let y = net.add_node(
            "y",
            vec![g, h],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
        );
        net.add_po("y", y);
        net
    }

    #[test]
    fn zero_threshold_only_removes_redundancy() {
        let net = rare_term_net();
        let config = AlsConfig::with_threshold(0.0);
        let out = single_selection(&net, &config);
        assert_eq!(out.measured_error_rate, 0.0);
        // The network is already irredundant: nothing to save for free.
        assert_eq!(out.final_literals, out.initial_literals);
    }

    #[test]
    fn budget_buys_area() {
        let net = rare_term_net();
        let config = AlsConfig::with_threshold(0.05);
        let out = single_selection(&net, &config);
        assert!(out.measured_error_rate <= 0.05 + 1e-12);
        assert!(
            out.final_literals < out.initial_literals,
            "a 5% budget must shrink this circuit ({} vs {})",
            out.final_literals,
            out.initial_literals
        );
        // Verify the reported error rate independently on fresh patterns.
        let p = PatternSet::exhaustive(6).unwrap();
        let true_er = error_rate(&net, &out.network, &p);
        assert!(true_er <= 0.10, "true error rate {true_er} is implausible");
    }

    #[test]
    fn larger_budget_never_hurts() {
        let net = rare_term_net();
        let small = single_selection(&net, &AlsConfig::with_threshold(0.01));
        let large = single_selection(&net, &AlsConfig::with_threshold(0.20));
        assert!(large.final_literals <= small.final_literals);
    }

    #[test]
    fn iterations_record_monotone_literal_decrease() {
        let net = rare_term_net();
        let out = single_selection(&net, &AlsConfig::with_threshold(0.3));
        let mut prev = out.initial_literals;
        for it in &out.iterations {
            assert!(it.literals_after < prev, "literals must strictly decrease");
            assert!(it.error_rate_after <= 0.3 + 1e-12);
            prev = it.literals_after;
        }
    }

    #[test]
    fn dont_care_ablation_is_sound_too() {
        let net = rare_term_net();
        let mut config = AlsConfig::with_threshold(0.05);
        config.use_dont_cares = false;
        let out = single_selection(&net, &config);
        assert!(out.measured_error_rate <= 0.05 + 1e-12);
    }

    #[test]
    fn redundancy_is_removed_even_at_zero_threshold() {
        // Duplicate logic: the pre-process (§6) removes it with no error.
        let mut net = Network::new("dup");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let g1 = net.add_node(
            "g1",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let g2 = net.add_node(
            "g2",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let y = net.add_node(
            "y",
            vec![g1, g2],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
        );
        net.add_po("y", y);
        let out = single_selection(&net, &AlsConfig::with_threshold(0.0));
        assert_eq!(out.measured_error_rate, 0.0);
        assert!(out.final_literals < net.literal_count());
    }

    #[test]
    fn magnitude_constraint_respected() {
        use crate::MagnitudeConstraint;
        use als_sim::magnitude_stats;
        let golden = als_circuits::ripple_carry_adder(3);
        let mut config = AlsConfig::with_threshold(0.40);
        config.patterns = crate::PatternPolicy::Fixed(4096);
        config.magnitude = Some(MagnitudeConstraint { max_abs: 1 });
        let out = single_selection(&golden, &config);
        let p = PatternSet::exhaustive(6).unwrap();
        let stats = magnitude_stats(&golden, &out.network, &p);
        assert!(
            stats.max_abs <= 1,
            "deviation {} exceeds bound",
            stats.max_abs
        );
        assert!(out.measured_error_rate <= 0.40 + 1e-12);
    }

    #[test]
    fn cache_and_fresh_runs_agree() {
        // Determinism per seed: two identical runs must agree exactly.
        let net = rare_term_net();
        let config = AlsConfig::with_threshold(0.10);
        let a = single_selection(&net, &config);
        let b = single_selection(&net, &config);
        assert_eq!(a.final_literals, b.final_literals);
        assert_eq!(a.measured_error_rate, b.measured_error_rate);
        assert_eq!(a.iterations.len(), b.iterations.len());
    }
}
