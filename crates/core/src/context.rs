use crate::AlsConfig;
use als_absint::Interval;
use als_network::{Network, NodeId};
use als_sim::{
    error_count_range_from_view, error_rate_from_view, error_rate_vs_reference,
    magnitude_stats_from_view, magnitude_stats_vs_reference, po_words, simulate, IncrementalSim,
    MagnitudeStats, PatternSet, SimResult, SimView, UpdateDelta,
};
use als_telemetry::{Event, Telemetry};

/// Shared plumbing for both algorithms: the frozen reference (golden PO
/// signatures of the *original* network) and the stimulus, so every
/// iteration measures the error rate against the unmodified input circuit.
// Clone shares nothing mutable: a sweep builds one context per pattern
// budget (paying the golden simulation once) and hands each grid job its
// own copy.
#[derive(Clone, Debug)]
pub struct AlsContext {
    patterns: PatternSet,
    reference_po_words: Vec<Vec<u64>>,
    telemetry: Telemetry,
    /// Starting word prefix for adaptive pattern sampling (`None` = fixed
    /// sampling: every trial simulates the full pattern budget at once).
    adaptive_min_words: Option<usize>,
}

impl AlsContext {
    /// Simulates the original network once and freezes its PO signatures as
    /// the golden reference, drawing uniform random stimulus from the config
    /// (the paper's setting).
    pub fn new(original: &Network, config: &AlsConfig) -> Self {
        let patterns = PatternSet::random(original.num_pis(), config.pattern_budget(), config.seed);
        Self::with_patterns(original, patterns)
            .with_telemetry(config.telemetry.clone())
            .with_sampling(config)
    }

    /// Like [`AlsContext::new`] but with caller-supplied stimulus — the
    /// workload-aware mode: all error rates (hence the whole synthesis
    /// budget) are then measured under the application's input
    /// distribution.
    pub fn with_patterns(original: &Network, patterns: PatternSet) -> Self {
        let sim = simulate(original, &patterns);
        let reference_po_words = po_words(original, &sim);
        AlsContext {
            patterns,
            reference_po_words,
            telemetry: Telemetry::disabled(),
            adaptive_min_words: None,
        }
    }

    /// Attaches a telemetry handle; every `measure`/`simulate` call then
    /// emits one coarse event. Events carry only timings and sizes, so the
    /// measured results are identical with any sink.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Adopts the config's [`PatternPolicy`](crate::PatternPolicy): under
    /// `Adaptive { min, .. }` trial measurements in
    /// [`update_and_accept`](AlsContext::update_and_accept) start from a
    /// `⌈min/64⌉`-word prefix of the stimulus and escalate; under `Fixed`
    /// every trial simulates the full budget at once, as before.
    pub fn with_sampling(mut self, config: &AlsConfig) -> Self {
        self.adaptive_min_words = config
            .patterns
            .adaptive_min()
            .map(|min| min.div_ceil(64).max(1));
        self
    }

    /// The stimulus all measurements share.
    pub fn patterns(&self) -> &PatternSet {
        &self.patterns
    }

    /// The starting word prefix for adaptive probes (`None` under fixed
    /// sampling).
    pub(crate) fn adaptive_min_words(&self) -> Option<usize> {
        self.adaptive_min_words
    }

    /// Emits one aggregated `similarity_scanned` event for a SASIMI
    /// pairwise candidate sweep.
    pub(crate) fn record_similarity_scan(
        &self,
        pairs: u64,
        early_rejects: u64,
        words: u64,
        words_full: u64,
    ) {
        self.telemetry.emit(|| Event::SimilarityScanned {
            pairs,
            early_rejects,
            words,
            words_full,
        });
    }

    /// Measures the error rate of `candidate` against the golden reference.
    pub fn measure(&self, candidate: &Network) -> f64 {
        let mark = self.telemetry.start();
        let rate = error_rate_vs_reference(&self.reference_po_words, candidate, &self.patterns);
        self.telemetry.emit(|| Event::Measured {
            error_rate: rate,
            nanos: Telemetry::nanos_since(mark),
        });
        rate
    }

    /// Simulates `candidate` (fresh signatures for its current structure).
    pub fn simulate(&self, candidate: &Network) -> SimResult {
        let mark = self.telemetry.start();
        let sim = simulate(candidate, &self.patterns);
        self.telemetry.emit(|| Event::Simulated {
            patterns: self.patterns.num_patterns() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            nodes: candidate.num_internal() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            nanos: Telemetry::nanos_since(mark),
        });
        sim
    }

    /// Builds a persistent incremental resimulation engine seeded with a
    /// full simulation of `candidate` (counted as one `Simulated` event —
    /// construction *is* a full simulation).
    pub fn incremental(&self, candidate: &Network) -> IncrementalSim {
        let mark = self.telemetry.start();
        let inc = IncrementalSim::new(candidate, &self.patterns);
        self.telemetry.emit(|| Event::Simulated {
            patterns: self.patterns.num_patterns() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            nodes: candidate.num_internal() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            nanos: Telemetry::nanos_since(mark),
        });
        inc
    }

    /// Runs one incremental dirty-set update of `inc` against the current
    /// structure of `candidate`, emitting a `Resimulated` event with the
    /// work counters.
    pub fn update_resim(
        &self,
        inc: &mut IncrementalSim,
        candidate: &Network,
        dirty: &[NodeId],
    ) -> UpdateDelta {
        let wps = inc.words_per_signal();
        self.update_resim_range(inc, candidate, dirty, 0, wps)
    }

    /// [`update_resim`](AlsContext::update_resim) restricted to the word
    /// range `[start_word, end_word)` of every recomputed signature — the
    /// adaptive-sampling probe primitive. Same structural contract as
    /// [`IncrementalSim::update_range`]: no structural edits between the
    /// ranged rounds of one span.
    fn update_resim_range(
        &self,
        inc: &mut IncrementalSim,
        candidate: &Network,
        dirty: &[NodeId],
        start_word: usize,
        end_word: usize,
    ) -> UpdateDelta {
        let mark = self.telemetry.start();
        let delta = inc.update_range(candidate, dirty, start_word, end_word);
        self.telemetry.emit(|| Event::Resimulated {
            dirty: delta.dirty,
            resim_nodes: delta.resim_nodes,
            skipped_early_exit: delta.skipped_early_exit,
            full_equivalent: delta.full_equivalent,
            words: delta.words_simulated,
            nanos: Telemetry::nanos_since(mark),
        });
        delta
    }

    /// Measures the error rate of `candidate` from already-up-to-date
    /// incremental signatures — word-identical arithmetic to
    /// [`measure`](AlsContext::measure).
    pub fn measure_view(&self, candidate: &Network, sim: SimView<'_>) -> f64 {
        let mark = self.telemetry.start();
        let rate = error_rate_from_view(&self.reference_po_words, candidate, sim);
        self.telemetry.emit(|| Event::Measured {
            error_rate: rate,
            nanos: Telemetry::nanos_since(mark),
        });
        rate
    }

    /// Measures numeric deviation statistics of `candidate` against the
    /// golden reference (POs weighted `2^i`); used when a
    /// [`MagnitudeConstraint`](crate::MagnitudeConstraint) is configured.
    pub fn measure_magnitude(&self, candidate: &Network) -> MagnitudeStats {
        magnitude_stats_vs_reference(&self.reference_po_words, candidate, &self.patterns)
    }

    /// Whether `candidate` satisfies both the error-rate threshold and (if
    /// configured) the magnitude constraint; returns the measured rate on
    /// success.
    pub fn accepts(&self, candidate: &Network, config: &crate::AlsConfig) -> Option<f64> {
        let rate = self.measure(candidate);
        if rate > config.threshold {
            return None;
        }
        if let Some(mc) = config.magnitude {
            if self.measure_magnitude(candidate).max_abs > mc.max_abs {
                return None;
            }
        }
        Some(rate)
    }

    /// [`accepts`](AlsContext::accepts) measured from already-up-to-date
    /// incremental signatures instead of a fresh simulation. Both paths
    /// share the measurement arithmetic word-for-word, so they agree
    /// bit-identically.
    pub fn accepts_view(
        &self,
        candidate: &Network,
        sim: SimView<'_>,
        config: &crate::AlsConfig,
    ) -> Option<f64> {
        let rate = self.measure_view(candidate, sim);
        if rate > config.threshold {
            return None;
        }
        if let Some(mc) = config.magnitude {
            let stats = magnitude_stats_from_view(&self.reference_po_words, candidate, sim);
            if stats.max_abs > mc.max_abs {
                return None;
            }
        }
        Some(rate)
    }

    /// Resimulates one trial change (dirty set `dirty` applied to `trial`)
    /// and decides acceptance, escalating the simulated pattern prefix
    /// adaptively when the context was built with
    /// [`PatternPolicy::Adaptive`](crate::PatternPolicy::Adaptive).
    ///
    /// Each probe round extends signature coverage to a word prefix and
    /// counts erroneous patterns over the new words only. With `e` errors
    /// over `c` covered patterns out of `N`, the final full-budget rate is
    /// provably inside the sample-sound interval `[e/N, (e + N − c)/N]`
    /// (the uncovered patterns can contribute between 0 and `N − c` further
    /// errors). The escalation rule:
    ///
    /// - interval entirely above the threshold (`e/N > t`): the full
    ///   measurement could only be larger, so the trial is rejected now,
    ///   skipping the remaining words (`sampling_escalated` event with
    ///   `early_reject: true`);
    /// - interval entirely at or below the threshold: the rate test cannot
    ///   fail, so coverage jumps straight to the full budget;
    /// - interval straddles the threshold: coverage doubles and the probe
    ///   repeats.
    ///
    /// **Measurement identity:** every *accepted* trial (and every rejection
    /// that reaches full coverage) is measured by
    /// [`accepts_view`](AlsContext::accepts_view) over the complete pattern
    /// budget — word-identical arithmetic to fixed sampling — and an early
    /// reject fires only when fixed sampling would also have rejected on the
    /// rate. Outcomes are therefore byte-identical to
    /// [`PatternPolicy::Fixed`](crate::PatternPolicy::Fixed) at the same
    /// budget; only the amount of simulation work differs.
    ///
    /// When `propagate` is set, `trial.propagate_constants()` runs after
    /// full coverage (never between probe rounds — propagation rewrites
    /// nodes outside the dirty set, which would violate
    /// [`IncrementalSim::update_range`]'s structural contract), followed by
    /// an empty-dirty reconciliation update, matching the two-phase protocol
    /// of multi-selection and SASIMI. All updates share one undo span:
    /// callers still pair this with `inc.commit()` / `inc.rollback()`.
    pub fn update_and_accept(
        &self,
        inc: &mut IncrementalSim,
        trial: &mut Network,
        dirty: &[NodeId],
        propagate: bool,
        config: &crate::AlsConfig,
    ) -> Option<f64> {
        let wps = inc.words_per_signal();
        let num_patterns = self.patterns.num_patterns();
        let start_words = self.adaptive_min_words.unwrap_or(wps).min(wps);
        if start_words >= wps {
            // Fixed sampling (or an adaptive floor at/above the budget):
            // one full-width update, exactly the pre-adaptive sequence.
            self.update_resim(inc, trial, dirty);
        } else {
            let mut covered = 0usize;
            let mut end = start_words;
            let mut errors = 0u64;
            while end < wps {
                self.update_resim_range(inc, trial, dirty, covered, end);
                errors += error_count_range_from_view(
                    &self.reference_po_words,
                    trial,
                    inc.view(),
                    covered,
                    end,
                );
                let from = covered;
                covered = end;
                // `covered < wps`, so every covered word is a full 64
                // patterns and the uncovered remainder is positive.
                let seen = covered * 64;
                let n = num_patterns as f64; // lint:allow(as-cast): counts << 2^52, exact in f64
                let bound = Interval::new(
                    errors as f64 / n, // lint:allow(as-cast): counts << 2^52, exact in f64
                    (errors + (num_patterns - seen) as u64) as f64 / n, // lint:allow(as-cast): counts << 2^52, exact in f64
                );
                if bound.lo > config.threshold {
                    self.telemetry.emit(|| Event::SamplingEscalated {
                        from_words: from as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                        to_words: covered as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                        errors,
                        early_reject: true,
                    });
                    return None;
                }
                if bound.hi <= config.threshold {
                    break;
                }
                self.telemetry.emit(|| Event::SamplingEscalated {
                    from_words: from as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                    to_words: covered as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                    errors,
                    early_reject: false,
                });
                end = (end * 2).min(wps);
            }
            if covered < wps {
                self.update_resim_range(inc, trial, dirty, covered, wps);
            }
        }
        if propagate {
            trial.propagate_constants();
            self.update_resim(inc, trial, &[]);
        }
        self.accepts_view(trial, inc.view(), config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    #[test]
    fn measure_is_zero_for_unchanged_network() {
        let mut net = Network::new("t");
        let a = net.add_pi("a");
        let y = net.add_node(
            "y",
            vec![a],
            Cover::from_cubes(1, [Cube::from_literals(&[(0, false)]).unwrap()]),
        );
        net.add_po("y", y);
        let ctx = AlsContext::new(&net, &AlsConfig::default());
        assert_eq!(ctx.measure(&net), 0.0);
        // Breaking the network is detected.
        let mut broken = net.clone();
        let d = broken.pos()[0].1;
        broken.replace_with_constant(d, true);
        assert!(ctx.measure(&broken) > 0.4); // y = a' is wrong half the time
    }
}
