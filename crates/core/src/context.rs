use crate::AlsConfig;
use als_network::{Network, NodeId};
use als_sim::{
    error_rate_from_view, error_rate_vs_reference, magnitude_stats_from_view,
    magnitude_stats_vs_reference, po_words, simulate, IncrementalSim, MagnitudeStats, PatternSet,
    SimResult, SimView, UpdateDelta,
};
use als_telemetry::{Event, Telemetry};

/// Shared plumbing for both algorithms: the frozen reference (golden PO
/// signatures of the *original* network) and the stimulus, so every
/// iteration measures the error rate against the unmodified input circuit.
#[derive(Debug)]
pub struct AlsContext {
    patterns: PatternSet,
    reference_po_words: Vec<Vec<u64>>,
    telemetry: Telemetry,
}

impl AlsContext {
    /// Simulates the original network once and freezes its PO signatures as
    /// the golden reference, drawing uniform random stimulus from the config
    /// (the paper's setting).
    pub fn new(original: &Network, config: &AlsConfig) -> Self {
        let patterns = PatternSet::random(original.num_pis(), config.num_patterns, config.seed);
        Self::with_patterns(original, patterns).with_telemetry(config.telemetry.clone())
    }

    /// Like [`AlsContext::new`] but with caller-supplied stimulus — the
    /// workload-aware mode: all error rates (hence the whole synthesis
    /// budget) are then measured under the application's input
    /// distribution.
    pub fn with_patterns(original: &Network, patterns: PatternSet) -> Self {
        let sim = simulate(original, &patterns);
        let reference_po_words = po_words(original, &sim);
        AlsContext {
            patterns,
            reference_po_words,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle; every `measure`/`simulate` call then
    /// emits one coarse event. Events carry only timings and sizes, so the
    /// measured results are identical with any sink.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The stimulus all measurements share.
    pub fn patterns(&self) -> &PatternSet {
        &self.patterns
    }

    /// Measures the error rate of `candidate` against the golden reference.
    pub fn measure(&self, candidate: &Network) -> f64 {
        let mark = self.telemetry.start();
        let rate = error_rate_vs_reference(&self.reference_po_words, candidate, &self.patterns);
        self.telemetry.emit(|| Event::Measured {
            error_rate: rate,
            nanos: Telemetry::nanos_since(mark),
        });
        rate
    }

    /// Simulates `candidate` (fresh signatures for its current structure).
    pub fn simulate(&self, candidate: &Network) -> SimResult {
        let mark = self.telemetry.start();
        let sim = simulate(candidate, &self.patterns);
        self.telemetry.emit(|| Event::Simulated {
            patterns: self.patterns.num_patterns() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            nodes: candidate.num_internal() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            nanos: Telemetry::nanos_since(mark),
        });
        sim
    }

    /// Builds a persistent incremental resimulation engine seeded with a
    /// full simulation of `candidate` (counted as one `Simulated` event —
    /// construction *is* a full simulation).
    pub fn incremental(&self, candidate: &Network) -> IncrementalSim {
        let mark = self.telemetry.start();
        let inc = IncrementalSim::new(candidate, &self.patterns);
        self.telemetry.emit(|| Event::Simulated {
            patterns: self.patterns.num_patterns() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            nodes: candidate.num_internal() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            nanos: Telemetry::nanos_since(mark),
        });
        inc
    }

    /// Runs one incremental dirty-set update of `inc` against the current
    /// structure of `candidate`, emitting a `Resimulated` event with the
    /// work counters.
    pub fn update_resim(
        &self,
        inc: &mut IncrementalSim,
        candidate: &Network,
        dirty: &[NodeId],
    ) -> UpdateDelta {
        let mark = self.telemetry.start();
        let delta = inc.update(candidate, dirty);
        self.telemetry.emit(|| Event::Resimulated {
            dirty: delta.dirty,
            resim_nodes: delta.resim_nodes,
            skipped_early_exit: delta.skipped_early_exit,
            full_equivalent: delta.full_equivalent,
            nanos: Telemetry::nanos_since(mark),
        });
        delta
    }

    /// Measures the error rate of `candidate` from already-up-to-date
    /// incremental signatures — word-identical arithmetic to
    /// [`measure`](AlsContext::measure).
    pub fn measure_view(&self, candidate: &Network, sim: SimView<'_>) -> f64 {
        let mark = self.telemetry.start();
        let rate = error_rate_from_view(&self.reference_po_words, candidate, sim);
        self.telemetry.emit(|| Event::Measured {
            error_rate: rate,
            nanos: Telemetry::nanos_since(mark),
        });
        rate
    }

    /// Measures numeric deviation statistics of `candidate` against the
    /// golden reference (POs weighted `2^i`); used when a
    /// [`MagnitudeConstraint`](crate::MagnitudeConstraint) is configured.
    pub fn measure_magnitude(&self, candidate: &Network) -> MagnitudeStats {
        magnitude_stats_vs_reference(&self.reference_po_words, candidate, &self.patterns)
    }

    /// Whether `candidate` satisfies both the error-rate threshold and (if
    /// configured) the magnitude constraint; returns the measured rate on
    /// success.
    pub fn accepts(&self, candidate: &Network, config: &crate::AlsConfig) -> Option<f64> {
        let rate = self.measure(candidate);
        if rate > config.threshold {
            return None;
        }
        if let Some(mc) = config.magnitude {
            if self.measure_magnitude(candidate).max_abs > mc.max_abs {
                return None;
            }
        }
        Some(rate)
    }

    /// [`accepts`](AlsContext::accepts) measured from already-up-to-date
    /// incremental signatures instead of a fresh simulation. Both paths
    /// share the measurement arithmetic word-for-word, so they agree
    /// bit-identically.
    pub fn accepts_view(
        &self,
        candidate: &Network,
        sim: SimView<'_>,
        config: &crate::AlsConfig,
    ) -> Option<f64> {
        let rate = self.measure_view(candidate, sim);
        if rate > config.threshold {
            return None;
        }
        if let Some(mc) = config.magnitude {
            let stats = magnitude_stats_from_view(&self.reference_po_words, candidate, sim);
            if stats.max_abs > mc.max_abs {
                return None;
            }
        }
        Some(rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    #[test]
    fn measure_is_zero_for_unchanged_network() {
        let mut net = Network::new("t");
        let a = net.add_pi("a");
        let y = net.add_node(
            "y",
            vec![a],
            Cover::from_cubes(1, [Cube::from_literals(&[(0, false)]).unwrap()]),
        );
        net.add_po("y", y);
        let ctx = AlsContext::new(&net, &AlsConfig::default());
        assert_eq!(ctx.measure(&net), 0.0);
        // Breaking the network is detected.
        let mut broken = net.clone();
        let d = broken.pos()[0].1;
        broken.replace_with_constant(d, true);
        assert!(ctx.measure(&broken) > 0.4); // y = a' is wrong half the time
    }
}
