//! SASIMI — the *substitute-and-simplify* baseline (Venkataramani et al.,
//! DATE'13), as configured in the DAC'16 paper's comparison.
//!
//! SASIMI's idea: find **signal pairs** `(target, substitute)` that agree on
//! almost all input vectors, replace the target with the substitute (possibly
//! inverted), and let the network simplify. The DAC'16 comparison disables
//! SASIMI's timing handling and gate downsizing so it optimizes area only;
//! this implementation reproduces that configuration.
//!
//! Candidate generation compares all signal pairs — quadratic in the signal
//! count, which is exactly why the paper's node-local algorithms are faster
//! (their complexity is linear in the node count).

use crate::report::{AlsOutcome, IterationRecord, SelectedChange};
use crate::{AlsConfig, AlsContext};
use als_logic::{Cover, Cube};
use als_network::{Network, NodeId};
use als_sim::SimView;
use als_telemetry::{Event, MetricsCollector, Telemetry};
use std::sync::Arc;
use std::time::Instant;

/// A candidate substitution: drive every user of `target` with `substitute`
/// (inverted when `inverted` is set).
#[derive(Clone, Copy, Debug)]
struct Candidate {
    target: NodeId,
    substitute: Option<NodeId>, // None = constant
    constant: bool,
    inverted: bool,
    difference: u64,
    score: f64,
}

/// How many top-ranked candidates are trial-applied per iteration before
/// SASIMI gives up (each trial costs a simulation).
const TRIALS_PER_ITERATION: usize = 25;

/// Runs SASIMI on `original` under the error-rate threshold in `config`.
///
/// Shared knobs (`num_patterns`, `seed`, `threshold`, `max_iterations`) are
/// honoured; the ASE- and don't-care-related options do not apply. Prefer
/// [`approximate`](crate::approximate) with
/// [`Strategy::Sasimi`](crate::Strategy::Sasimi) for the non-panicking
/// entry point.
///
/// # Panics
///
/// Panics if the input network fails its consistency check.
pub fn sasimi(original: &Network, config: &AlsConfig) -> AlsOutcome {
    original.check().expect("input network must be consistent"); // lint:allow(panic): documented panic contract; `approximate()` is the fallible entry
    let ctx = AlsContext::new(original, config);
    sasimi_with_context(original, config, ctx)
}

pub(crate) fn sasimi_with_context(
    original: &Network,
    config: &AlsConfig,
    ctx: AlsContext,
) -> AlsOutcome {
    // lint:allow(nondeterminism): feeds telemetry wall-clock only, never the synthesis outcome
    let start = Instant::now();
    original.check().expect("input network must be consistent"); // lint:allow(panic): documented panic contract; `approximate()` is the fallible entry
    let initial_literals = original.literal_count();

    // Same sink arrangement as the paper's algorithms, so the baseline's
    // runs are directly comparable in the perf records.
    let collector = Arc::new(MetricsCollector::new());
    let mut config = config.clone();
    config.telemetry = config.telemetry.clone().with(collector.clone());
    let config = &config;
    let ctx = ctx
        .with_telemetry(config.telemetry.clone())
        .with_sampling(config);

    config.telemetry.emit(|| Event::RunStart {
        algorithm: "sasimi",
        threads: 1, // the baseline's pairwise search is sequential
        num_patterns: ctx.patterns().num_patterns(),
        nodes: original.num_internal(),
        threshold: config.threshold,
        seed: config.seed,
    });

    let mut current = original.clone();
    // The persistent incremental simulation state; trial substitutions are
    // resimulated through dirty-set updates and rolled back when rejected.
    let mut inc = ctx.incremental(&current);
    inc.set_full_resim(config.resim.is_full());
    let mut error_rate = ctx.measure_view(&current, inc.view());
    let mut iterations: Vec<IterationRecord> = Vec::new();

    for iteration in 1..=config.max_iterations {
        let margin = config.threshold - error_rate;
        if margin < 0.0 {
            break;
        }
        // Cooperative cancellation: the network already satisfies the
        // threshold at every iteration boundary, so stopping here is sound.
        if config.cancel.is_cancelled() {
            break;
        }
        let iter_mark = config.telemetry.start();
        let candidates = generate_candidates(&current, inc.view(), &ctx, margin);
        let mut committed = false;
        for cand in candidates.into_iter().take(TRIALS_PER_ITERATION) {
            let mut trial = current.clone();
            // The dirty set, captured pre-apply: a constant replacement
            // rewrites the target in place; a substitution rebuilds the
            // covers of every user (the target itself is swept, and a new
            // inverter is picked up as a newly-live slot).
            let dirty: Vec<NodeId> = if cand.substitute.is_none() {
                vec![cand.target]
            } else {
                trial.fanouts()[cand.target.index()].clone()
            };
            let description = apply(&mut trial, &cand);
            // Resimulate and decide under one undo span (same protocol as
            // multi-selection): the dirty set is resimulated before constant
            // propagation, liveness reconciled on the swept structure; under
            // adaptive sampling a bad trial is rejected from a prefix.
            let Some(new_error_rate) =
                ctx.update_and_accept(&mut inc, &mut trial, &dirty, true, config)
            else {
                inc.rollback();
                continue;
            };
            let saved = current
                .literal_count()
                .saturating_sub(trial.literal_count());
            if saved == 0 {
                inc.rollback();
                continue;
            }
            inc.commit();
            error_rate = new_error_rate;
            let literals_after = trial.literal_count();
            // A substitution flips an output only on a vector where target
            // and substitute disagree, so the pairwise difference rate is
            // this change's apparent rate in the Theorem-1 sense.
            let apparent = cand.difference as f64 / ctx.patterns().num_patterns() as f64; // lint:allow(as-cast): counts << 2^52, exact in f64
            debug_assert!(
                trial.check().is_ok(),
                "network inconsistent after sasimi substitution: {:?}",
                trial.check()
            );
            config.telemetry.emit(|| Event::ChangeCommitted {
                iteration: iteration as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                node: description.clone(),
                ase: String::from("substitution"),
                literals_saved: saved as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                apparent,
                // SASIMI's pairwise search never runs the static analysis.
                static_lo: None,
                static_hi: None,
            });
            iterations.push(IterationRecord {
                iteration,
                changes: vec![SelectedChange {
                    node_name: description,
                    ase: String::from("substitution"),
                    literals_saved: saved,
                    error_estimate: apparent,
                    apparent,
                }],
                literals_after,
                error_rate_after: error_rate,
            });
            current = trial;
            committed = true;
            config.telemetry.emit(|| Event::IterationEnd {
                iteration: iteration as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                changes: 1,
                literals: literals_after as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                error_rate,
                nanos: Telemetry::nanos_since(iter_mark),
            });
            break;
        }
        if !committed {
            break;
        }
    }

    debug_assert!(current.check().is_ok());
    let final_literals = current.literal_count();
    config.telemetry.emit(|| Event::RunEnd {
        iterations: iterations.len() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
        literals: final_literals as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
        error_rate,
        nanos: start.elapsed().as_nanos() as u64, // lint:allow(as-cast): run duration << 584 years
    });
    AlsOutcome {
        final_literals,
        measured_error_rate: error_rate,
        network: current,
        iterations,
        initial_literals,
        runtime: start.elapsed(),
        metrics: collector.report(),
    }
}

/// Ranks substitution candidates by `literals-freed / error`, considering
/// every ordered signal pair (in both phases) and the two constants. Signal
/// signatures come from the caller's (incremental) view — no fresh
/// simulation.
///
/// Under [`PatternPolicy::Adaptive`](crate::PatternPolicy::Adaptive) the
/// pairwise scan — the `O(signals² × words)` bulk of SASIMI's runtime —
/// probes each pair at a word prefix and doubles coverage only while the
/// pair could still substitute in some phase
/// ([`SimView::difference_probe`]). Mismatch and match counts are monotone
/// in coverage, so a prefix-infeasible pair is exactly a full-scan-rejected
/// pair: the surviving candidate set, its exact difference counts, and
/// hence the whole run are byte-identical to fixed sampling.
fn generate_candidates(
    net: &Network,
    sim: SimView<'_>,
    ctx: &AlsContext,
    margin: f64,
) -> Vec<Candidate> {
    let num_patterns = ctx.patterns().num_patterns() as u64; // lint:allow(as-cast): usize fits u64 on all supported targets
    let allowed = (margin * num_patterns as f64).floor() as u64; // lint:allow(as-cast): margin >= 0 and the product <= num_patterns
    let wps = sim.words_per_signal();
    // Fixed sampling starts at full width: the probe then returns exact
    // counts in one round and never early-exits.
    let start_words = ctx.adaptive_min_words().unwrap_or(wps);

    let targets: Vec<NodeId> = net
        .internal_ids()
        .filter(|&id| !net.node(id).is_constant())
        .collect();
    let mut all_signals: Vec<NodeId> = net.pis().to_vec();
    all_signals.extend(targets.iter().copied());

    let mut pairs = 0u64;
    let mut early_rejects = 0u64;
    let mut words_scanned = 0u64;
    let mut out: Vec<Candidate> = Vec::new();
    for &t in &targets {
        // Deleting t frees its literals (more after simplification; this is
        // the ranking heuristic, the trial measures reality).
        let freed = net.node(t).literal_count();
        let tfo = net.tfo_mask(t);
        // Constants: cost of t being 1 with probability ~0 or ~1.
        let ones = sim.count_ones(t);
        for (constant, diff) in [(false, ones), (true, num_patterns - ones)] {
            if diff <= allowed {
                out.push(Candidate {
                    target: t,
                    substitute: None,
                    constant,
                    inverted: false,
                    difference: diff,
                    score: score(freed, diff, num_patterns),
                });
            }
        }
        for &s in &all_signals {
            if s == t || tfo[s.index()] {
                continue; // self or would create a cycle
            }
            // The inverted phase costs an extra inverter literal, so it is
            // only ever considered when freed > 1 — pairs without it can
            // early-exit on the mismatch bound alone.
            let max_matches = (freed > 1).then_some(allowed);
            let probe = sim.difference_probe(t, s, allowed, max_matches, start_words);
            pairs += 1;
            words_scanned += probe.words_scanned;
            if probe.early_exit {
                early_rejects += 1;
                continue;
            }
            let diff = probe.count;
            // Same phase.
            if diff <= allowed {
                out.push(Candidate {
                    target: t,
                    substitute: Some(s),
                    constant: false,
                    inverted: false,
                    difference: diff,
                    score: score(freed, diff, num_patterns),
                });
            }
            // Inverted phase (costs one extra inverter literal).
            let inv_diff = num_patterns - diff;
            if inv_diff <= allowed && freed > 1 {
                out.push(Candidate {
                    target: t,
                    substitute: Some(s),
                    constant: false,
                    inverted: true,
                    difference: inv_diff,
                    score: score(freed - 1, inv_diff, num_patterns),
                });
            }
        }
    }
    ctx.record_similarity_scan(
        pairs,
        early_rejects,
        words_scanned,
        pairs * wps as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
    );
    out.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.difference.cmp(&b.difference))
    });
    out
}

fn score(freed: usize, diff: u64, num_patterns: u64) -> f64 {
    let rate = diff as f64 / num_patterns as f64; // lint:allow(as-cast): counts << 2^52, exact in f64
    if rate <= 0.0 {
        f64::INFINITY
    } else {
        freed as f64 / rate // lint:allow(as-cast): counts << 2^52, exact in f64
    }
}

/// Applies a candidate to the network, returning a human-readable label.
fn apply(net: &mut Network, cand: &Candidate) -> String {
    let target_name = net.node(cand.target).name().to_string();
    match cand.substitute {
        None => {
            net.replace_with_constant(cand.target, cand.constant);
            format!("{target_name} ← const {}", u8::from(cand.constant))
        }
        Some(s) => {
            let source_name = net.node(s).name().to_string();
            if cand.inverted {
                let inv = net.add_node(
                    format!("{target_name}_inv"),
                    vec![s],
                    Cover::from_cubes(
                        1,
                        [Cube::from_literals(&[(0, false)]).expect("single negative literal")], // lint:allow(panic): cube literals are valid by construction
                    ),
                );
                net.substitute(cand.target, inv);
                format!("{target_name} ← {source_name}'")
            } else {
                net.substitute(cand.target, s);
                format!("{target_name} ← {source_name}")
            }
        }
    }
}
