//! Cooperative cancellation for synthesis runs.
//!
//! A [`CancelToken`] rides on [`AlsConfig`](crate::AlsConfig); the three
//! selection loops poll it once per iteration and stop cleanly when it has
//! been tripped. Cancellation is *cooperative* and *sound*: the loop
//! invariant (the current network always satisfies the threshold) holds at
//! every iteration boundary, so a cancelled run still returns a valid —
//! merely less optimized — [`AlsOutcome`](crate::AlsOutcome). Long-running
//! callers (the `als serve` daemon) trip the token from another thread to
//! free the worker without tearing anything down.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cheap, clonable cancellation flag.
///
/// The default token is *inert*: it carries no flag, can never be tripped,
/// and [`is_cancelled`](CancelToken::is_cancelled) costs one `Option`
/// check — so configurations that never cancel (almost all of them) pay
/// nothing. An [`armed`](CancelToken::armed) token shares one atomic flag
/// across every clone; tripping any clone cancels them all.
///
/// ```
/// use als_core::CancelToken;
///
/// let inert = CancelToken::none();
/// inert.cancel(); // no-op
/// assert!(!inert.is_cancelled());
///
/// let token = CancelToken::armed();
/// let observer = token.clone();
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Option<Arc<AtomicBool>>,
}

impl CancelToken {
    /// The inert token: never cancelled, [`cancel`](CancelToken::cancel) is
    /// a no-op. This is the [`AlsConfig`](crate::AlsConfig) default.
    #[must_use]
    pub fn none() -> CancelToken {
        CancelToken::default()
    }

    /// A live token. Clones share the flag.
    #[must_use]
    pub fn armed() -> CancelToken {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
        }
    }

    /// Requests cancellation. Idempotent; a no-op on the inert token.
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Release);
        }
    }

    /// Whether cancellation has been requested.
    #[inline]
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_token_never_cancels() {
        let token = CancelToken::none();
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(!token.is_cancelled());
    }

    #[test]
    fn armed_token_shares_the_flag_across_clones() {
        let token = CancelToken::armed();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        // Idempotent.
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn distinct_armed_tokens_are_independent() {
        let a = CancelToken::armed();
        let b = CancelToken::armed();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!b.is_cancelled());
    }
}
