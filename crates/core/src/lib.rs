//! Multi-level approximate logic synthesis under an error rate constraint.
//!
//! This crate implements the contribution of Wu & Qian, *"An Efficient Method
//! for Multi-level Approximate Logic Synthesis under Error Rate Constraint"*
//! (DAC 2016): shrinking nodes of a Boolean network by replacing their
//! factored-form expressions with **approximate simplified expressions**
//! (ASEs) obtained by deleting literals, while keeping the network's error
//! rate (fraction of PI vectors producing any wrong PO value) below a
//! threshold.
//!
//! The documented entry point is [`approximate`], which takes a [`Strategy`]:
//!
//! * [`Strategy::Single`] (paper Algorithm 1) — per iteration, picks the one
//!   node/ASE with the best score `saved literals / estimated real error
//!   rate`, where the estimate discards erroneous local input patterns that
//!   are SDCs or ODCs of the node (§3.3);
//! * [`Strategy::Multi`] (paper Algorithm 2) — per iteration, selects a
//!   *set* of nodes and ASEs by solving a **multi-state 0/1 knapsack**
//!   ([`knapsack`]) whose weights are apparent error rates (sound by the
//!   paper's Theorem 1) and whose values are saved literals;
//! * [`Strategy::Sasimi`] — the signal-substitution baseline the paper
//!   compares against.
//!
//! All three draw their candidates from the [`CandidateEngine`], which
//! memoizes per-node evaluations, re-computes them in parallel (see
//! [`AlsConfig::threads`]) and invalidates incrementally after each commit.
//! The same-support/same-signature redundancy-removal pre-process of §6 is
//! available as [`preprocess::remove_redundancies`].
//!
//! # Example
//!
//! ```
//! use als_core::{approximate, AlsConfig, Strategy};
//! use als_network::blif;
//!
//! let net = blif::parse("\
//! .model toy
//! .inputs a b c
//! .outputs y
//! .names a b t
//! 11 1
//! .names t c y
//! 1- 1
//! -1 1
//! .end
//! ")?;
//! let config = AlsConfig::builder().threshold(0.10).build()?;
//! let outcome = approximate(&net, Strategy::Single, &config)?;
//! assert!(outcome.measured_error_rate <= 0.10);
//! assert!(outcome.network.literal_count() <= net.literal_count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

mod api;
mod ase;
mod cancel;
mod config;
mod context;
mod delay_score;
mod engine;
mod error;
mod error_model;
mod multi;
mod report;
mod single;

pub mod classical;
pub mod knapsack;
pub mod preprocess;
pub mod sasimi;
pub mod sweep;

pub use api::{approximate, approximate_under, approximate_with_context, Strategy};
pub use ase::{generate_ases, Ase, AseKind};
pub use cancel::CancelToken;
pub use config::{
    AlsConfig, AlsConfigBuilder, DelayWeight, MagnitudeConstraint, PatternPolicy, PrunePolicy,
    ResimMode,
};
pub use context::AlsContext;
pub use engine::{CandidateEngine, CandidateEval, EngineStats};
pub use error::AlsError;
pub use error_model::{apparent_error_rate, estimated_real_error_rate, score, NodeErrorAnalysis};
pub use multi::{multi_selection, multi_selection_under};
pub use report::{AlsOutcome, IterationRecord, SelectedChange};
pub use single::{single_selection, single_selection_under};

/// The telemetry crate, re-exported so downstream users can attach sinks
/// without naming `als-telemetry` in their own manifests.
pub use als_telemetry as telemetry;
pub use als_telemetry::{
    Event, JsonlSink, MetricsCollector, MetricsReport, PhaseKind, Telemetry, TelemetrySink,
};

/// The convenience import surface: everything a typical caller needs to run
/// a synthesis and inspect the outcome.
///
/// ```
/// use als_core::prelude::*;
///
/// let config = AlsConfig::builder()
///     .threshold(0.05)
///     .patterns(PatternPolicy::Adaptive { min: 1024, max: 10_048 })
///     .resim(ResimMode::Incremental)
///     .build()?;
/// # let _ = (config, Strategy::Single);
/// # Ok::<(), als_core::AlsError>(())
/// ```
pub mod prelude {
    pub use crate::{
        approximate, approximate_under, AlsConfig, AlsError, AlsOutcome, CancelToken, DelayWeight,
        MagnitudeConstraint, MetricsReport, PatternPolicy, PrunePolicy, ResimMode, Strategy,
    };
}
